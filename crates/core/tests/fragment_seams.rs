//! Seam boundary correctness for fragment-parallel decode: fragments cut
//! at hostile boundaries — mid-recursion, at tail-call wrap points,
//! across re-encode generation bumps, inside degraded trap runs — must
//! decode byte-identically to the serial replay, and corrupted seam
//! seeds must be caught by the stitch pass and repaired by the serial
//! fallback, never silently trusted.

use dacce::tracker::{ThreadHandle, Tracker};
use dacce::{
    decode_parallel, decode_serial, export_tracker_state, import, verify_seams, DacceConfig,
    DecodeJournal, FaultPlan, SeedEdge, ThreadRecorder, WarmStartSeed,
};
use dacce_callgraph::{CallSiteId, Dispatch, FunctionId};

/// One scripted event of a recording scenario.
#[derive(Clone, Copy)]
enum Ev {
    Call(CallSiteId, FunctionId),
    Ret,
    /// Journal a decode point (and capture the live tracker decode of the
    /// same state, the anchor the offline stream is checked against).
    Sample,
    /// Cut a fragment here: journal a full seam seed.
    Seam,
}

/// Drives the scripted events through a registered thread while recording
/// the effect journal. Returns the journal, the live-decoded anchor lines
/// (one per sample, rendered exactly like the offline stream), and the
/// recorder's resync count.
fn record(tracker: &Tracker, th: &ThreadHandle, evs: &[Ev]) -> (DecodeJournal, Vec<String>, u64) {
    let tid = u64::from(th.id().raw());
    let mut rec = ThreadRecorder::new(tid, th.context());
    let mut guards = Vec::new();
    let mut live = Vec::new();
    let mut k = 0usize;
    for ev in evs {
        match *ev {
            Ev::Call(site, target) => {
                guards.push(th.call(site, target));
                rec.on_call(site, target, &th.state_sig(), || th.context());
            }
            Ev::Ret => {
                drop(guards.pop().expect("script is balanced"));
                rec.on_ret(&th.state_sig(), || th.context());
            }
            Ev::Sample => {
                rec.on_sample();
                let line = match tracker.decode(&th.context()) {
                    Ok(path) => format!("{tid}#{k}: {}", path.display(|f| f.to_string())),
                    Err(e) => format!("{tid}#{k}: decode-error {e}"),
                };
                live.push(line);
                k += 1;
            }
            Ev::Seam => rec.seam(|| th.context()),
        }
    }
    assert!(guards.is_empty(), "script must end balanced");
    let resyncs = rec.resyncs();
    let journal = DecodeJournal {
        threads: vec![rec.finish()],
    };
    (journal, live, resyncs)
}

/// Decodes the journal serially and in parallel at several worker counts,
/// asserting byte-identical output and fully proven seams, and returns
/// the serial stream.
fn assert_parallel_matches_serial(
    tracker: &Tracker,
    journal: &DecodeJournal,
    what: &str,
) -> dacce::DecodedStream {
    let export = export_tracker_state(tracker);
    let dec = import(&export).expect("export parses");
    let serial = decode_serial(journal, &dec).expect("journal replays");
    assert!(
        verify_seams(journal).is_empty(),
        "{what}: seam chain must verify independently"
    );
    for workers in [1, 2, 4] {
        let (par, report) = decode_parallel(journal, &dec, workers).expect("parallel replays");
        assert_eq!(
            par, serial,
            "{what}/workers={workers}: diverged from serial"
        );
        assert_eq!(report.seam_failures, 0, "{what}/workers={workers}");
        assert_eq!(report.fallback_fragments, 0, "{what}/workers={workers}");
        assert!(
            report.fragments > 1,
            "{what}: script must actually fragment"
        );
    }
    serial
}

#[test]
fn seams_cut_mid_recursion_decode_identically() {
    let tracker = Tracker::new();
    let main_fn = tracker.define_function("main");
    let f = tracker.define_function("f");
    let s0 = tracker.define_call_site();
    let s_self = tracker.define_call_site();
    let th = tracker.register_thread(main_fn);

    // Wind 30 frames of direct recursion with seams cut deep inside the
    // wind and again inside the unwind — every fragment boundary lands
    // mid-recursion, where the ccStack top is a live compressed entry.
    let mut evs = vec![Ev::Call(s0, f), Ev::Sample];
    for i in 0..30 {
        evs.push(Ev::Call(s_self, f));
        if i % 7 == 3 {
            evs.push(Ev::Sample);
            evs.push(Ev::Seam);
        }
    }
    evs.push(Ev::Sample);
    for i in 0..30 {
        evs.push(Ev::Ret);
        if i % 9 == 4 {
            evs.push(Ev::Seam);
            evs.push(Ev::Sample);
        }
    }
    evs.push(Ev::Ret);
    evs.push(Ev::Sample);

    let (journal, live, _) = record(&tracker, &th, &evs);
    assert!(journal.seams() >= 6, "seams cut mid-recursion");
    let serial = assert_parallel_matches_serial(&tracker, &journal, "mid-recursion");
    assert_eq!(
        serial.lines, live,
        "offline decode must match the live tracker decode at every sample"
    );
}

#[test]
fn seams_at_tail_call_wrap_points_decode_identically() {
    // `f` is statically tail-calling, so calls *from* `f` wrap: their
    // returns do an absolute restore (id, ccStack truncation) instead of
    // an arithmetic undo — the recorder must capture that faithfully and
    // the seam seeds around the wrap point must still prove.
    let tracker = Tracker::new();
    let main_fn = tracker.define_function("main");
    let f = tracker.define_function("f");
    let g = tracker.define_function("g");
    let s1 = tracker.define_call_site();
    let s2 = tracker.define_call_site();
    tracker.warm_start(
        main_fn,
        &WarmStartSeed {
            roots: vec![main_fn],
            edges: vec![
                SeedEdge {
                    caller: main_fn,
                    callee: f,
                    site: s1,
                    dispatch: Dispatch::Direct,
                },
                SeedEdge {
                    caller: f,
                    callee: g,
                    site: s2,
                    dispatch: Dispatch::Direct,
                },
            ],
            tail_fns: vec![f],
        },
    );
    let th = tracker.register_thread(main_fn);

    let mut evs = Vec::new();
    for i in 0..12 {
        evs.push(Ev::Call(s1, f));
        evs.push(Ev::Call(s2, g)); // wrapped: f tail-calls
        evs.push(Ev::Sample);
        if i % 3 == 1 {
            evs.push(Ev::Seam); // seam with a wrapped frame open
        }
        evs.push(Ev::Ret); // absolute restore
        if i % 3 == 2 {
            evs.push(Ev::Seam); // seam right after the restore
        }
        evs.push(Ev::Ret);
        evs.push(Ev::Sample);
    }

    let (journal, live, _) = record(&tracker, &th, &evs);
    assert!(journal.seams() >= 4);
    let serial = assert_parallel_matches_serial(&tracker, &journal, "tail-call-wrap");
    assert_eq!(serial.lines, live);
}

#[test]
fn seams_across_generation_bumps_decode_identically() {
    // Aggressive adaptation: every edge is hot immediately and the
    // re-encode backoff floor is tiny, so the run crosses many published
    // generations; seams fall on both sides of the bumps and seeds carry
    // different `ts` values along one thread's chain.
    let tracker = Tracker::with_config(DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 4,
        ..DacceConfig::default()
    });
    let main_fn = tracker.define_function("main");
    let th = tracker.register_thread(main_fn);

    let mut evs = Vec::new();
    let mut fns = Vec::new();
    for i in 0..24 {
        let callee = tracker.define_function(&format!("g{i}"));
        let site = tracker.define_call_site();
        fns.push((site, callee));
        // Revisit earlier edges so re-encoded patches are exercised, not
        // just trap-time discovery.
        for &(s, c) in fns.iter().rev().take(3) {
            evs.push(Ev::Call(s, c));
            evs.push(Ev::Sample);
            evs.push(Ev::Ret);
        }
        if i % 4 == 2 {
            evs.push(Ev::Seam);
        }
    }

    let (journal, live, _) = record(&tracker, &th, &evs);
    assert!(
        tracker.stats().reencodes > 0,
        "scenario must actually re-encode"
    );
    let entry_ts = journal.threads[0].entry.ts;
    assert!(
        journal.threads[0]
            .seams
            .iter()
            .any(|s| s.ctx.ts != entry_ts),
        "at least one seam seed must sit in a later generation"
    );
    let serial = assert_parallel_matches_serial(&tracker, &journal, "generation-bump");
    assert_eq!(serial.lines, live);
}

#[test]
fn seams_inside_degraded_trap_runs_decode_identically() {
    // max_id_cap 0 forces every dictionary into exhaustion: all discovery
    // degrades to sub-path-band records. Seams inside the degraded run
    // must still seed fragments that replay byte-identically.
    let tracker = Tracker::with_config(DacceConfig {
        fault: FaultPlan {
            max_id_cap: Some(0),
            ..FaultPlan::default()
        },
        ..DacceConfig::default()
    });
    let main_fn = tracker.define_function("main");
    let f = tracker.define_function("f");
    let g = tracker.define_function("g");
    let s1 = tracker.define_call_site();
    let s2 = tracker.define_call_site();
    let s3 = tracker.define_call_site();
    let th = tracker.register_thread(main_fn);

    let mut evs = Vec::new();
    for i in 0..10 {
        evs.push(Ev::Call(s1, f));
        evs.push(Ev::Sample);
        evs.push(Ev::Call(s2, g));
        evs.push(Ev::Call(s3, g)); // degraded direct recursion
        evs.push(Ev::Sample);
        if i % 2 == 0 {
            evs.push(Ev::Seam);
        }
        evs.push(Ev::Ret);
        evs.push(Ev::Ret);
        evs.push(Ev::Ret);
        evs.push(Ev::Sample);
    }

    let (journal, live, _) = record(&tracker, &th, &evs);
    assert!(journal.seams() >= 3);
    let serial = assert_parallel_matches_serial(&tracker, &journal, "degraded");
    assert_eq!(serial.lines, live);
}

#[test]
fn corrupted_seam_seed_falls_back_to_serial_and_stays_identical() {
    let tracker = Tracker::new();
    let main_fn = tracker.define_function("main");
    let f = tracker.define_function("f");
    let s0 = tracker.define_call_site();
    let s_self = tracker.define_call_site();
    let th = tracker.register_thread(main_fn);

    let mut evs = vec![Ev::Call(s0, f)];
    for i in 0..20 {
        evs.push(Ev::Call(s_self, f));
        evs.push(Ev::Sample);
        if i % 5 == 2 {
            evs.push(Ev::Seam);
        }
    }
    for _ in 0..21 {
        evs.push(Ev::Ret);
    }
    evs.push(Ev::Sample);

    let (mut journal, _, _) = record(&tracker, &th, &evs);
    assert!(journal.threads[0].seams.len() >= 2);

    // Corrupt one seed mid-chain. The poisoned fragment must be detected
    // by the stitch pass (seed != verified exit) and re-decoded serially
    // from the verified state — output identical, corruption reported.
    journal.threads[0].seams[1].ctx.id ^= 0xdead_beef;

    let export = export_tracker_state(&tracker);
    let dec = import(&export).expect("export parses");
    let serial = decode_serial(&journal, &dec).expect("serial ignores seeds");
    let problems = verify_seams(&journal);
    assert!(
        !problems.is_empty(),
        "independent seam verification must flag the corrupt seed"
    );
    for workers in [1, 2, 4] {
        let (par, report) = decode_parallel(&journal, &dec, workers).expect("parallel replays");
        assert_eq!(
            par, serial,
            "workers={workers}: fallback must repair output"
        );
        assert!(
            report.seam_failures > 0,
            "workers={workers}: corruption must be reported"
        );
        assert!(
            report.fallback_fragments > 0,
            "workers={workers}: poisoned fragment must fall back"
        );
    }
}
