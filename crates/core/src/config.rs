//! Runtime configuration and ablation switches.

use crate::fault::FaultPlan;

/// When recursion compression (Figure 5e of the paper) is applied to back
/// edges.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompressionMode {
    /// §4: at re-encoding time, back edges whose observed heat crosses
    /// [`DacceConfig::compression_min_heat`] get the counting
    /// instrumentation; cold back edges keep the plain push.
    Adaptive,
    /// Every back edge gets the counting instrumentation.
    Always,
    /// Back edges always use the plain push (ablation).
    Never,
}

/// Configuration of the DACCE engine. The defaults correspond to the
/// paper's described behaviour; the boolean switches exist for the ablation
/// experiments in `dacce-bench`.
#[derive(Clone, Debug)]
pub struct DacceConfig {
    /// Trigger 1 (§4): re-encode once this many new call edges accumulated.
    pub edge_threshold: usize,
    /// Minimum call events between two re-encodings (guards against
    /// thrashing during start-up bursts).
    pub min_events_between_reencodes: u64,
    /// Multiplier applied to the minimum-interval after every re-encoding:
    /// re-encoding is frequent while the call graph is young and backs off
    /// as the encoding stabilises (Figure 9: "triggered slightly more
    /// frequently at the beginning", then steady state).
    pub reencode_backoff: f64,
    /// Upper bound for the backed-off minimum interval.
    pub reencode_interval_cap: u64,
    /// Trigger 3 (§4): window length (in call events) over which the
    /// ccStack access rate is evaluated.
    pub ccstack_rate_window: u64,
    /// Trigger 3: re-encode when ccStack operations per call event within
    /// the window exceed this rate.
    pub ccstack_rate_threshold: f64,
    /// Trigger 2 (§4): every this many call events, check whether the
    /// hottest incoming edge of enough nodes changed.
    pub hot_check_every: u64,
    /// Trigger 2: number of nodes whose hottest incoming edge must differ
    /// from the current encoding order to force a re-encode.
    pub hot_change_nodes: usize,
    /// Indirect sites with at most this many known targets use an inline
    /// compare chain; beyond it, the hash-table instrumentation of Figure 4.
    pub indirect_inline_max: usize,
    /// Recursion-compression policy.
    pub compression: CompressionMode,
    /// Adaptive compression: minimum accumulated heat on a back edge for it
    /// to receive counting instrumentation at the next re-encode.
    pub compression_min_heat: u64,
    /// Master switch for adaptive re-encoding; `false` leaves every edge
    /// unencoded forever (ablation: pure ccStack operation).
    pub reencode_enabled: bool,
    /// Order incoming edges by observed heat so the hottest is encoded 0;
    /// `false` uses discovery order (ablation of the adaptive ordering).
    pub heat_ordering: bool,
    /// §5.2 tail-call handling via TcStack wrapping; `false` reproduces the
    /// encoding corruption of Figure 7a (ablation).
    pub handle_tail_calls: bool,
    /// Capacity of the recent-sample ring used to derive edge heat.
    pub sample_ring: usize,
    /// Keep every sample ever taken (needed by the figure binaries; costs
    /// memory on long runs).
    pub keep_sample_log: bool,
    /// Per-producer event-journal ring capacity (rounded up to a power of
    /// two). Only read when the `obs` feature is compiled in; the journal
    /// additionally has a runtime enable flag and starts disabled.
    pub journal_ring_capacity: usize,
    /// ccStack depth at which a new per-thread high-water mark is journaled
    /// as an overflow event (observability only; no behaviour changes).
    pub journal_overflow_watermark: u32,
    /// Continuous-profiler base sampling stride in call events (jittered
    /// per thread); 0 disables the profiler entirely. A prime default
    /// avoids phase-locking with power-of-two loop bodies.
    pub profiler_stride: u64,
    /// Seed for the per-thread sampling jitter (xorshifted with the
    /// thread id, so threads decorrelate but runs stay reproducible).
    pub profiler_seed: u64,
    /// Budget of the adaptive rate controller: max samples per
    /// 16-stride window before a thread's effective stride backs off;
    /// 0 leaves the rate fixed.
    pub profiler_budget: u64,
    /// Let re-encoding's hottest-incoming-edge ordering consume sampled
    /// hotness (weighted profiler captures) in addition to trap counts.
    /// Off by default so the paper-faithful trap-driven behaviour stays
    /// bit-identical.
    pub profiler_feedback: bool,
    /// Master switch for superop compilation: installed candidate windows
    /// are compiled into the published snapshot's superop table and the
    /// batched fast path may execute their memoized net effects. `false`
    /// keeps the per-event loop only (ablation / bench baseline).
    pub superops_enabled: bool,
    /// Longest call/return window (in events) a superop may cover;
    /// longer candidates are refused at compile time.
    pub superop_max_window: usize,
    /// Maximum number of compiled superops per snapshot; the best-ranked
    /// candidates win.
    pub superop_max_table: usize,
    /// Deterministic fault-injection plan (disarmed by default). See
    /// [`FaultPlan`] for the fault kinds and the degradation path each
    /// lands on.
    pub fault: FaultPlan,
}

impl Default for DacceConfig {
    fn default() -> Self {
        DacceConfig {
            edge_threshold: 24,
            min_events_between_reencodes: 2_000,
            reencode_backoff: 1.35,
            reencode_interval_cap: 60_000,
            ccstack_rate_window: 20_000,
            ccstack_rate_threshold: 0.05,
            hot_check_every: 50_000,
            hot_change_nodes: 3,
            indirect_inline_max: 4,
            compression: CompressionMode::Adaptive,
            compression_min_heat: 64,
            reencode_enabled: true,
            heat_ordering: true,
            handle_tail_calls: true,
            sample_ring: 256,
            keep_sample_log: false,
            journal_ring_capacity: 4096,
            journal_overflow_watermark: 48,
            profiler_stride: 509,
            profiler_seed: 0x5eed,
            profiler_budget: 64,
            profiler_feedback: false,
            superops_enabled: true,
            superop_max_window: 48,
            superop_max_table: 64,
            fault: FaultPlan::default(),
        }
    }
}

impl DacceConfig {
    /// Configuration with adaptive re-encoding disabled entirely.
    pub fn no_reencoding() -> Self {
        DacceConfig {
            reencode_enabled: false,
            ..DacceConfig::default()
        }
    }

    /// Configuration reproducing the Figure 7a tail-call bug.
    pub fn broken_tail_calls() -> Self {
        DacceConfig {
            handle_tail_calls: false,
            ..DacceConfig::default()
        }
    }

    /// The default configuration with `plan` armed.
    pub fn with_fault(plan: FaultPlan) -> Self {
        DacceConfig {
            fault: plan,
            ..DacceConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_enables_everything() {
        let c = DacceConfig::default();
        assert!(c.reencode_enabled);
        assert!(c.heat_ordering);
        assert!(c.handle_tail_calls);
        assert_eq!(c.compression, CompressionMode::Adaptive);
        assert!(c.edge_threshold > 0);
        assert!(c.sample_ring > 0);
        assert!(c.profiler_stride > 0, "profiler samples by default");
        assert!(
            !c.profiler_feedback,
            "sampled-hotness feedback is opt-in; default stays trap-driven"
        );
        assert!(c.superops_enabled, "superops compile by default");
        assert!(c.superop_max_window >= 2);
        assert!(c.superop_max_table > 0);
    }

    #[test]
    fn presets_flip_the_right_switches() {
        assert!(!DacceConfig::no_reencoding().reencode_enabled);
        assert!(!DacceConfig::broken_tail_calls().handle_tail_calls);
        assert!(DacceConfig::broken_tail_calls().reencode_enabled);
        assert!(!DacceConfig::default().fault.is_armed());
        let faulted = DacceConfig::with_fault(FaultPlan {
            max_id_cap: Some(7),
            ..FaultPlan::default()
        });
        assert!(faulted.fault.is_armed());
        assert!(faulted.reencode_enabled);
    }
}
