//! Per-thread instrumentation execution — the lock-free fast path.
//!
//! Everything here operates on one thread's [`ThreadCtx`] plus a read-only
//! [`EncodingView`]: no shared mutable state, no locks. The
//! [`crate::engine::DacceEngine`] calls these functions with `&SharedState`
//! as the view (it owns everything under one `&mut self`); the concurrent
//! [`crate::tracker::Tracker`] calls them with a published
//! [`EncodingSnapshot`], which is what makes call/return over
//! already-encoded edges execute entirely on thread-local state.

use dacce_callgraph::{CallSiteId, DecodeDict, FunctionId};
use dacce_program::{ContextPath, CostModel};

use crate::decode::{decode_thread, DecodeError};
use crate::patch::EdgeAction;
use crate::shared::{EncodingSnapshot, ResolvedSite, SharedState};
use crate::thread::{ShadowFrame, ThreadCtx};

/// Read-only encoding state a thread needs to execute instrumentation.
pub(crate) trait EncodingView {
    /// Resolves `(site, callee)` in one patch-table probe: action,
    /// dispatch cost and TcStack wrapping. `None` traps.
    fn resolve(&self, site: CallSiteId, callee: FunctionId) -> Option<ResolvedSite>;
    /// `maxID` of the current encoding.
    fn max_id(&self) -> u64;
    /// The cost model instrumentation is charged under.
    fn cost(&self) -> &CostModel;
    /// Whether tail-call handling is enabled.
    fn handle_tail_calls(&self) -> bool;
}

impl EncodingView for SharedState {
    fn resolve(&self, site: CallSiteId, callee: FunctionId) -> Option<ResolvedSite> {
        self.lookup_action(site, callee)
    }
    fn max_id(&self) -> u64 {
        self.max_id
    }
    fn cost(&self) -> &CostModel {
        &self.cost
    }
    fn handle_tail_calls(&self) -> bool {
        self.config.handle_tail_calls
    }
}

impl EncodingView for EncodingSnapshot {
    fn resolve(&self, site: CallSiteId, callee: FunctionId) -> Option<ResolvedSite> {
        EncodingSnapshot::resolve(self, site, callee)
    }
    fn max_id(&self) -> u64 {
        self.max_id
    }
    fn cost(&self) -> &CostModel {
        &self.cost
    }
    fn handle_tail_calls(&self) -> bool {
        self.handle_tail_calls
    }
}

/// What one before-call execution did, for the caller's accounting.
pub(crate) struct CallEffect {
    /// Cost units the instrumentation spent (excluding dispatch/trap).
    pub(crate) cost: u64,
    /// A compressed push hit the top entry (bump `compress_hits`).
    pub(crate) compress_hit: bool,
}

/// Executes the before-call instrumentation of `site` on `ctx` for an
/// already-resolved `action` (`site_wraps` is the site's TcStack flag from
/// the same probe). Pure thread-local state mutation.
pub(crate) fn exec_call(
    view: &impl EncodingView,
    ctx: &mut ThreadCtx,
    site: CallSiteId,
    callee: FunctionId,
    action: EdgeAction,
    site_wraps: bool,
    tail: bool,
) -> CallEffect {
    let mut cost = 0u64;
    let mut compress_hit = false;
    let wrapped = !tail && view.handle_tail_calls() && site_wraps;

    let saved_id = ctx.id;
    let saved_cc_len = ctx.cc.depth();
    let saved_top_count = ctx.cc.top().map_or(0, |e| e.count);
    if wrapped {
        ctx.tc_ops += 1;
        cost += view.cost().tcstack_op;
    }

    match action {
        EdgeAction::Encoded { delta } => {
            if delta != 0 {
                ctx.id = ctx.id.wrapping_add(delta);
                cost += view.cost().id_arith;
            }
        }
        EdgeAction::Unencoded => {
            ctx.cc.push(ctx.id, site, callee);
            ctx.id = view.max_id() + 1;
            cost += view.cost().ccstack_op + view.cost().id_arith;
        }
        EdgeAction::UnencodedCompressed => {
            if ctx.cc.push_compressed(ctx.id, site, callee) {
                compress_hit = true;
            }
            ctx.id = view.max_id() + 1;
            cost += view.cost().compare + view.cost().ccstack_op + view.cost().id_arith;
        }
    }

    if !tail {
        ctx.shadow.push(ShadowFrame {
            site,
            callee,
            saved_id,
            saved_cc_len,
            saved_top_count,
            wrapped,
        });
    }
    ctx.current = callee;

    CallEffect { cost, compress_hit }
}

/// Executes the after-call instrumentation when control returns to the
/// frame that called through `site`, for an already-resolved `action`
/// (callers resolve it — or reuse the one cached at call time when the
/// encoding generation has not moved). Returns the cost units spent.
pub(crate) fn exec_ret(
    view: &impl EncodingView,
    ctx: &mut ThreadCtx,
    site: CallSiteId,
    caller: FunctionId,
    action: EdgeAction,
) -> u64 {
    let mut cost = 0u64;

    let frame = ctx.shadow.pop().expect("balanced call/return events");
    debug_assert_eq!(frame.site, site, "return does not match shadow frame");

    if frame.wrapped {
        // §5.2: absolute restore via TcStack — immune to tail calls in
        // the callee. Restores the length *and* the top entry's
        // repetition count (a compressed push that hit changed only
        // the count).
        ctx.id = frame.saved_id;
        ctx.cc.truncate(frame.saved_cc_len);
        ctx.cc.restore_top_count(frame.saved_top_count);
        ctx.tc_ops += 1;
        cost += view.cost().tcstack_op;
    } else {
        match action {
            EdgeAction::Encoded { delta } => {
                if delta != 0 {
                    ctx.id = ctx.id.wrapping_sub(delta);
                    cost += view.cost().id_arith;
                }
            }
            EdgeAction::Unencoded => {
                ctx.id = ctx.cc.pop();
                cost += view.cost().ccstack_op;
            }
            EdgeAction::UnencodedCompressed => {
                ctx.id = ctx.cc.pop_compressed();
                cost += view.cost().ccstack_op;
            }
        }
    }
    ctx.current = caller;
    cost
}

/// Rebuilds one thread's encoding state by replaying its decoded path
/// under `view`'s patch states. Physical frames are recognised by matching
/// the old shadow stack (tail steps are never physical; a call site is
/// statically either a tail call or not, so the match is unambiguous).
pub(crate) fn replay(view: &impl EncodingView, ctx: &mut ThreadCtx, path: &ContextPath) {
    let old_shadow: Vec<ShadowFrame> = std::mem::take(&mut ctx.shadow);
    ctx.id = 0;
    ctx.cc.clear();

    let mut k = 0usize;
    for step in path.0.iter().skip(1) {
        let site = step.site.expect("non-root steps carry their site");
        let func = step.func;
        let physical =
            k < old_shadow.len() && old_shadow[k].site == site && old_shadow[k].callee == func;
        let saved_id = ctx.id;
        let saved_cc_len = ctx.cc.depth();
        let saved_top_count = ctx.cc.top().map_or(0, |e| e.count);
        let resolved = view.resolve(site, func);
        let action = resolved.map_or(EdgeAction::Unencoded, |r| r.action);
        match action {
            EdgeAction::Encoded { delta } => {
                ctx.id = ctx.id.wrapping_add(delta);
            }
            EdgeAction::Unencoded => {
                ctx.cc.push(ctx.id, site, func);
                ctx.id = view.max_id() + 1;
            }
            EdgeAction::UnencodedCompressed => {
                ctx.cc.push_compressed(ctx.id, site, func);
                ctx.id = view.max_id() + 1;
            }
        }
        if physical {
            let wrapped = view.handle_tail_calls() && resolved.is_some_and(|r| r.tc_wrap);
            ctx.shadow.push(ShadowFrame {
                site,
                callee: func,
                saved_id,
                saved_cc_len,
                saved_top_count,
                wrapped,
            });
            k += 1;
        }
        ctx.current = func;
    }
    debug_assert!(
        k == old_shadow.len() || !view.handle_tail_calls(),
        "replay must reconstruct every physical frame"
    );
    // With a corrupted encoding (broken-tail-call ablation) the decoded
    // path can disagree with the physical frames; keep the unmatched
    // frames so call/return bookkeeping stays balanced — the contexts
    // are wrong either way, which is what the ablation demonstrates.
    for frame in old_shadow.into_iter().skip(k) {
        ctx.shadow.push(frame);
    }
}

/// Lazily migrates one thread's context from the encoding it was built
/// under (`old_dict`) to the encoding `view` describes: decode under the
/// old dictionary, replay under the new patches. Fully thread-local — this
/// is the rendezvous that replaces in-place cross-thread regeneration.
///
/// # Errors
///
/// Propagates the decode error (an engine bug); the context is left
/// untouched in that case.
pub(crate) fn migrate(
    view: &impl EncodingView,
    ctx: &mut ThreadCtx,
    old_dict: &DecodeDict,
    owner: &std::collections::HashMap<CallSiteId, FunctionId>,
) -> Result<(), DecodeError> {
    let path = decode_thread(
        old_dict,
        ctx.id,
        ctx.current,
        ctx.root,
        ctx.cc.entries(),
        owner,
    )?;
    replay(view, ctx, &path);
    Ok(())
}
