//! [`ContextRuntime`] adapter: drives a [`DacceEngine`] from the
//! interpreter's call/return events.

use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::{CallEvent, ContextRuntime, ReturnEvent, SampleResult};
use dacce_program::{CostModel, OracleStack, Program, ThreadId};

use crate::config::DacceConfig;
use crate::engine::DacceEngine;
use crate::lineage::EncodingLineage;
use crate::stats::DacceStats;
use crate::warm::{WarmStartReport, WarmStartSeed};

/// The DACCE context runtime (the paper's `dacce.so`).
#[derive(Debug)]
pub struct DacceRuntime {
    engine: DacceEngine,
    /// Seed applied at attach time, if warm starting.
    warm: Option<WarmStartSeed>,
    /// What the warm start loaded (populated at attach).
    warm_report: Option<WarmStartReport>,
    /// Lineage adopted at attach time, if joining a shared encoding.
    lineage: Option<EncodingLineage>,
}

impl DacceRuntime {
    /// Creates a runtime with the given configuration and cost model.
    pub fn new(config: DacceConfig, cost: CostModel) -> Self {
        DacceRuntime {
            engine: DacceEngine::new(config, cost),
            warm: None,
            warm_report: None,
            lineage: None,
        }
    }

    /// A runtime with default configuration and costs.
    pub fn with_defaults() -> Self {
        Self::new(DacceConfig::default(), CostModel::default())
    }

    /// A runtime that warm-starts the engine from `seed` when the program
    /// is attached (see [`crate::warm`]).
    pub fn with_warm_start(config: DacceConfig, cost: CostModel, seed: WarmStartSeed) -> Self {
        DacceRuntime {
            engine: DacceEngine::new(config, cost),
            warm: Some(seed),
            warm_report: None,
            lineage: None,
        }
    }

    /// A runtime that attaches to a shared encoding lineage when the
    /// program is attached, adopting the latest generation instead of
    /// rebuilding it (zero cold-start traps for every edge the lineage
    /// already encodes).
    pub fn with_lineage(config: DacceConfig, cost: CostModel, lineage: EncodingLineage) -> Self {
        DacceRuntime {
            engine: DacceEngine::new(config, cost),
            warm: None,
            warm_report: None,
            lineage: Some(lineage),
        }
    }

    /// What the warm start loaded; `None` for cold runs (or before attach).
    pub fn warm_report(&self) -> Option<&WarmStartReport> {
        self.warm_report.as_ref()
    }

    /// Accesses the underlying engine (for experiment harnesses).
    pub fn engine(&self) -> &DacceEngine {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut DacceEngine {
        &mut self.engine
    }

    /// Convenience: the engine statistics.
    pub fn stats(&self) -> DacceStats {
        self.engine.stats()
    }

    /// The observability handle (event journal + metrics registry). With
    /// the `obs` feature disabled this is an inert placeholder.
    pub fn observability(&self) -> &crate::observe::Observability {
        self.engine.observability()
    }

    /// A point-in-time snapshot of every runtime metric (counters,
    /// histograms, per-generation dictionary table, id headroom).
    #[cfg(feature = "obs")]
    pub fn observe(&self) -> dacce_obs::MetricsSnapshot {
        self.engine.observability().snapshot()
    }
}

impl ContextRuntime for DacceRuntime {
    fn name(&self) -> &'static str {
        "dacce"
    }

    fn attach(&mut self, program: &Program) {
        if let Some(lineage) = self.lineage.take() {
            self.engine.attach_lineage(&lineage);
            // The lineage's root set already contains the founder's main;
            // registering again is an idempotent safety net in case the
            // attaching program's entry differs.
            self.engine.register_root(program.main);
        } else {
            self.engine.attach_main(program.main);
        }
        if let Some(seed) = self.warm.take() {
            self.warm_report = Some(self.engine.warm_start(&seed));
        }
    }

    fn on_thread_start(
        &mut self,
        tid: ThreadId,
        root: FunctionId,
        parent: Option<(ThreadId, CallSiteId)>,
    ) {
        self.engine.thread_start(tid, root, parent);
    }

    fn on_call(&mut self, ev: &CallEvent, _stack: &OracleStack) -> u64 {
        self.engine
            .call(ev.tid, ev.site, ev.caller, ev.callee, ev.dispatch, ev.tail)
    }

    fn on_return(&mut self, ev: &ReturnEvent, _stack: &OracleStack) -> u64 {
        self.engine.ret(ev.tid, ev.site, ev.caller, ev.callee)
    }

    fn on_thread_exit(&mut self, tid: ThreadId) {
        self.engine.thread_exit(tid);
    }

    fn on_root_reset(&mut self, tid: ThreadId) {
        self.engine.thread_reset(tid);
    }

    fn sample(&mut self, tid: ThreadId, _events: u64) -> (SampleResult, u64) {
        let (snap, cost) = self.engine.sample(tid);
        match self.engine.decode_counted(&snap) {
            Ok(path) => (SampleResult::Path(path), cost),
            Err(_) => (SampleResult::Unsupported, cost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_program::builder::ProgramBuilder;
    use dacce_program::interp::{InterpConfig, Interpreter};
    use dacce_program::model::TargetChoice;

    /// End-to-end: a program exercising every call kind runs under DACCE
    /// with every sample validating against the oracle.
    #[test]
    fn full_program_validates_all_samples() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let a = b.function("a");
        let bb = b.function("b");
        let rec = b.function("rec");
        let t1 = b.function("t1");
        let t2 = b.function("t2");
        let tail_target = b.function("tail_target");
        let lib = b.library("libz");
        let zfn = b.lib_function(lib, "compress");
        let table = b.table(vec![t1, t2]);
        b.body(main)
            .work(5)
            .call(a)
            .call_p(bb, [0.7, 0.3])
            .indirect(table, TargetChoice::Skewed { hot: 0.8 }, [0.9, 0.9], 2)
            .plt(zfn, [0.5, 0.5], 1)
            .done();
        b.body(a).work(2).call_p(rec, [0.8, 0.8]).done();
        b.body(bb).work(2).tail(tail_target, [0.6, 0.6]).done();
        b.body(rec).work(1).call_p(rec, [0.6, 0.6]).done();
        b.body(t1).work(1).done();
        b.body(t2).work(1).call_p(a, [0.3, 0.3]).done();
        b.body(tail_target).work(1).done();
        b.body(zfn).work(1).done();
        let p = b.build(main);

        let mut rt = DacceRuntime::with_defaults();
        let cfg = InterpConfig {
            budget_calls: 50_000,
            sample_every: 97,
            max_depth: 64,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);

        assert_eq!(report.mismatches, 0, "{:?}", report.mismatch_examples);
        assert_eq!(report.unsupported, 0, "every sample must decode");
        assert!(report.validated > 400);
        let stats = rt.stats();
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.unbalanced_resets, 0);
        assert!(stats.reencodes > 0, "adaptivity must kick in");
        // This micro-program does ~2 work units per call, so instrumentation
        // cost dominates; the realistic overhead numbers come from the
        // workload suite where call density matches the benchmarks.
        assert!(report.overhead() < 6.0, "overhead {}", report.overhead());
    }

    /// Multi-threaded end-to-end with spawned workers.
    #[test]
    fn multithreaded_program_validates() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let worker = b.function("worker");
        let task = b.function("task");
        let leaf = b.function("leaf");
        b.body(main)
            .spawn(worker, [0.3, 0.3])
            .work(5)
            .call(task)
            .done();
        b.body(worker).work(3).call_rep(task, [1.0, 1.0], 8).done();
        b.body(task).work(2).call_p(leaf, [0.9, 0.9]).done();
        b.body(leaf).work(1).done();
        let p = b.build(main);

        let mut rt = DacceRuntime::with_defaults();
        let cfg = InterpConfig {
            budget_calls: 30_000,
            sample_every: 53,
            max_threads: 6,
            ..InterpConfig::default()
        };
        let report = Interpreter::new(&p, cfg).run(&mut rt);
        assert!(report.threads_spawned > 1);
        assert_eq!(report.mismatches, 0, "{:?}", report.mismatch_examples);
        assert_eq!(report.unsupported, 0);
        assert_eq!(rt.stats().decode_errors, 0);
    }

    /// The broken-tail-call ablation must corrupt encodings (Figure 7a).
    #[test]
    fn broken_tail_handling_corrupts_contexts() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        let c = b.function("c");
        let d = b.function("d");
        let e = b.function("e");
        // Two callers of d so its incoming edges get distinct encodings,
        // making the missing decrement observable (as in Figure 7a).
        b.body(main).call(c).call(e).done();
        b.body(c).work(1).tail(d, [1.0, 1.0]).done();
        b.body(e).work(1).call(d).done();
        b.body(d).work(1).done();
        let p = b.build(main);

        let run = |config| {
            let mut rt = DacceRuntime::new(config, CostModel::default());
            let cfg = InterpConfig {
                budget_calls: 20_000,
                sample_every: 7,
                ..InterpConfig::default()
            };
            let report = Interpreter::new(&p, cfg).run(&mut rt);
            (report, rt.stats())
        };

        let (good_report, good_stats) = run(DacceConfig::default());
        assert_eq!(
            good_report.mismatches, 0,
            "{:?}",
            good_report.mismatch_examples
        );
        assert_eq!(good_stats.unbalanced_resets, 0);

        let (bad_report, bad_stats) = run(DacceConfig::broken_tail_calls());
        assert!(
            bad_report.mismatches + bad_report.unsupported + bad_stats.unbalanced_resets > 0,
            "disabling §5.2 must corrupt the encoding"
        );
    }
}
