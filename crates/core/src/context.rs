//! Encoded context snapshots.
//!
//! A sample records everything Algorithm 1 needs to decode the calling
//! context later: the timestamp selecting the decode dictionary, the current
//! id, the current function, the `ccStack` content, and — for child threads —
//! the encoded context of the spawning thread at creation time (§5.3).

use dacce_callgraph::{CallSiteId, FunctionId, TimeStamp};

use crate::ccstack::CcEntry;

/// The thread-creation link of an encoded context: the spawn call site in
/// the parent and the parent's own encoded context at spawn time (which may
/// itself carry a spawn link, recursively).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpawnLink {
    /// The spawn call site in the parent thread.
    pub site: CallSiteId,
    /// The parent's encoded context when the thread was created.
    pub parent: Box<EncodedContext>,
}

/// A self-contained encoded calling context.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EncodedContext {
    /// Timestamp selecting the decode dictionary.
    pub ts: TimeStamp,
    /// The context identifier at capture time.
    pub id: u64,
    /// The function executing at capture time (`ifun` in Algorithm 1).
    pub leaf: FunctionId,
    /// The thread's root function (where decoding stops).
    pub root: FunctionId,
    /// `ccStack` content, bottom to top.
    pub cc: Vec<CcEntry>,
    /// Thread-creation context, `None` for the initial thread.
    pub spawn: Option<SpawnLink>,
}

impl EncodedContext {
    /// Number of ccStack entries captured (physical depth).
    pub fn cc_depth(&self) -> usize {
        self.cc.len()
    }

    /// Space the sample occupies, in entries, following the paper's framing
    /// of context-logging cost: one slot for the id plus one per ccStack
    /// entry, plus the spawn chain.
    pub fn space(&self) -> usize {
        1 + self.cc.len() + self.spawn.as_ref().map_or(0, |s| s.parent.space())
    }

    /// Depth of the spawn chain (0 for the initial thread).
    pub fn spawn_depth(&self) -> usize {
        self.spawn
            .as_ref()
            .map_or(0, |s| 1 + s.parent.spawn_depth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(leaf: u32) -> EncodedContext {
        EncodedContext {
            ts: TimeStamp::ZERO,
            id: 0,
            leaf: FunctionId::new(leaf),
            root: FunctionId::new(0),
            cc: Vec::new(),
            spawn: None,
        }
    }

    #[test]
    fn space_counts_id_and_entries() {
        let mut c = ctx(1);
        assert_eq!(c.space(), 1);
        c.cc.push(CcEntry {
            id: 0,
            site: CallSiteId::new(0),
            target: FunctionId::new(1),
            count: 0,
        });
        assert_eq!(c.space(), 2);
        assert_eq!(c.cc_depth(), 1);
    }

    #[test]
    fn spawn_chain_depth_and_space() {
        let parent = ctx(1);
        let mut child = ctx(2);
        child.spawn = Some(SpawnLink {
            site: CallSiteId::new(9),
            parent: Box::new(parent),
        });
        assert_eq!(child.spawn_depth(), 1);
        assert_eq!(child.space(), 2);
        assert_eq!(ctx(0).spawn_depth(), 0);
    }
}
