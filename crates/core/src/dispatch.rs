//! Dense, slot-indexed dispatch tables — the flattened fast path.
//!
//! The logical patch table ([`crate::patch::PatchTable`]) hashes
//! `CallSiteId -> SiteState`, which means every already-encoded call pays a
//! SipHash probe. This module compiles that table into flat vectors so the
//! steady-state `resolve()` is two bounds-checked array indexes:
//!
//! * `slots[site.index()]` maps the (dense) call-site id space to compact
//!   `u32` slots. A slot is allocated the first time a site is compiled
//!   (trap-time discovery or a re-encoding rebuild) and is **stable across
//!   generations** — re-encodings recompile the records in place, so
//!   per-thread structures keyed by slot (the indirect-call inline cache)
//!   stay meaningful.
//! * `sites[slot]` holds one [`CompiledSite`] record: the dispatch kind,
//!   the resolved action for monomorphic sites, and the TcStack-wrap flag,
//!   packed into one cache-friendly record.
//! * `poly[index]` stores the compare chain / hash table of polymorphic
//!   (indirect) sites out of line, so the common monomorphic record stays
//!   small.
//!
//! Like the patch table, the compiled table is copy-on-write `Arc`s: the
//! slow path recompiles affected records under the shared lock (cloning a
//! vector only when a published snapshot still shares it) and snapshots
//! hand read-only clones to reader threads in O(1).

use std::sync::Arc;

use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::CostModel;

use crate::patch::{EdgeAction, IndirectPatch, PatchTable, SitePatch, SiteState};
use crate::shared::ResolvedSite;

/// Sentinel for an unallocated slot. `NO_SLOT as usize` is far beyond any
/// real `sites` length, so `resolve` needs no explicit sentinel branch —
/// the bounds check rejects it.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Dispatch kind of one compiled site record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CompiledDispatch {
    /// The site still traps (slot allocated, nothing compiled yet).
    Trap,
    /// Monomorphic: a single known target and its action, resolved with one
    /// compare.
    Mono {
        /// The only known callee.
        target: FunctionId,
        /// The action the generated code executes for it.
        action: EdgeAction,
    },
    /// Polymorphic (indirect site): targets dispatch through
    /// `poly[index]`'s compare chain / hash table.
    Poly {
        /// Index into the out-of-line polymorphic table.
        index: u32,
    },
}

/// One site's compiled record: everything `resolve` needs in one read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct CompiledSite {
    /// How the site dispatches.
    pub(crate) dispatch: CompiledDispatch,
    /// §5.2: the site wraps its frames with a TcStack save/restore.
    pub(crate) tc_wrap: bool,
}

impl CompiledSite {
    /// The state of a freshly allocated slot.
    pub(crate) const TRAP: CompiledSite = CompiledSite {
        dispatch: CompiledDispatch::Trap,
        tc_wrap: false,
    };
}

/// The compiled, slot-indexed view of the patch table.
#[derive(Clone, Debug, Default)]
pub(crate) struct DispatchTable {
    /// `site.index() -> slot` ([`NO_SLOT`] when unallocated).
    slots: Arc<Vec<u32>>,
    /// `slot -> compiled record`.
    sites: Arc<Vec<CompiledSite>>,
    /// Out-of-line dispatch state of polymorphic sites.
    poly: Arc<Vec<IndirectPatch>>,
    /// Injected slot-allocation cap (fault injection); `None` = unbounded.
    slot_cap: Option<u32>,
    /// Allocation requests the cap refused. A refused site stays
    /// un-compiled and traps on every call — sound, just slow.
    slot_failures: u64,
}

impl DispatchTable {
    /// Creates an empty table.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Arms the injected slot-allocation cap.
    pub(crate) fn set_slot_cap(&mut self, cap: Option<u32>) {
        self.slot_cap = cap;
    }

    /// Allocation requests refused by the injected cap so far.
    pub(crate) fn slot_failures(&self) -> u64 {
        self.slot_failures
    }

    /// The slot assigned to `site`, allocating one on first touch. Clones
    /// the underlying vectors iff a snapshot still shares them. `None`
    /// when the injected cap refused the allocation — the site then has
    /// no compiled record and keeps trapping.
    fn ensure_slot(&mut self, site: CallSiteId) -> Option<u32> {
        let idx = site.index();
        if self.slots.get(idx).copied().unwrap_or(NO_SLOT) == NO_SLOT {
            if let Some(cap) = self.slot_cap {
                if self.sites.len() as u64 >= u64::from(cap) {
                    self.slot_failures += 1;
                    return None;
                }
            }
        }
        let slots = Arc::make_mut(&mut self.slots);
        if idx >= slots.len() {
            slots.resize(idx + 1, NO_SLOT);
        }
        if slots[idx] == NO_SLOT {
            let sites = Arc::make_mut(&mut self.sites);
            let slot = u32::try_from(sites.len()).expect("slot count fits in u32");
            sites.push(CompiledSite::TRAP);
            slots[idx] = slot;
        }
        Some(slots[idx])
    }

    /// Recompiles one site's record from its logical patch state. Called
    /// from the trap slow path after the patch table changed; keeps the
    /// compiled table in lock step without a full rebuild. Returns
    /// `false` when the injected slot cap refused the site a record.
    pub(crate) fn sync_site(&mut self, site: CallSiteId, state: &SiteState) -> bool {
        let Some(slot) = self.ensure_slot(site) else {
            return false;
        };
        let slot = slot as usize;
        let dispatch = match &state.patch {
            SitePatch::Trap => CompiledDispatch::Trap,
            SitePatch::Direct(target, action) => CompiledDispatch::Mono {
                target: *target,
                action: *action,
            },
            SitePatch::Indirect(p) => {
                // Reuse the slot's existing poly entry when it has one; a
                // site flipping from Mono to Poly allocates a fresh one
                // (any orphan is reclaimed by the next full rebuild).
                let index = match self.sites[slot].dispatch {
                    CompiledDispatch::Poly { index } => {
                        Arc::make_mut(&mut self.poly)[index as usize] = p.clone();
                        index
                    }
                    _ => {
                        let poly = Arc::make_mut(&mut self.poly);
                        let index = u32::try_from(poly.len()).expect("poly count fits in u32");
                        poly.push(p.clone());
                        index
                    }
                };
                CompiledDispatch::Poly { index }
            }
        };
        Arc::make_mut(&mut self.sites)[slot] = CompiledSite {
            dispatch,
            tc_wrap: state.tc_wrap,
        };
        true
    }

    /// Recompiles the whole table from the logical patch table (after a
    /// re-encoding or warm start regenerated every site). Existing slot
    /// assignments are preserved — slots are stable across generations —
    /// and orphaned poly entries are dropped.
    pub(crate) fn rebuild(&mut self, patches: &PatchTable) {
        let mut slots: Vec<u32> = self.slots.as_ref().clone();
        let mut sites: Vec<CompiledSite> = vec![CompiledSite::TRAP; self.sites.len()];
        let mut poly: Vec<IndirectPatch> = Vec::new();
        for (&site, state) in patches.iter() {
            let idx = site.index();
            if idx >= slots.len() {
                slots.resize(idx + 1, NO_SLOT);
            }
            if slots[idx] == NO_SLOT {
                if let Some(cap) = self.slot_cap {
                    if sites.len() as u64 >= u64::from(cap) {
                        self.slot_failures += 1;
                        continue;
                    }
                }
                slots[idx] = u32::try_from(sites.len()).expect("slot count fits in u32");
                sites.push(CompiledSite::TRAP);
            }
            let slot = slots[idx] as usize;
            let dispatch = match &state.patch {
                SitePatch::Trap => CompiledDispatch::Trap,
                SitePatch::Direct(target, action) => CompiledDispatch::Mono {
                    target: *target,
                    action: *action,
                },
                SitePatch::Indirect(p) => {
                    let index = u32::try_from(poly.len()).expect("poly count fits in u32");
                    poly.push(p.clone());
                    CompiledDispatch::Poly { index }
                }
            };
            sites[slot] = CompiledSite {
                dispatch,
                tc_wrap: state.tc_wrap,
            };
        }
        self.slots = Arc::new(slots);
        self.sites = Arc::new(sites);
        self.poly = Arc::new(poly);
    }

    /// The compiled record of `site` plus its slot, or `None` when the
    /// site never compiled. This is the first half of [`Self::resolve`],
    /// split out so callers with a per-thread inline cache can intercept
    /// the polymorphic case.
    #[inline]
    pub(crate) fn entry(&self, site: CallSiteId) -> Option<(u32, CompiledSite)> {
        let slot = *self.slots.get(site.index())?;
        let cs = *self.sites.get(slot as usize)?;
        Some((slot, cs))
    }

    /// Resolves a known target of polymorphic record `index` through its
    /// compare chain / hash table, charging the modelled dispatch cost.
    #[inline]
    pub(crate) fn poly_resolve(
        &self,
        index: u32,
        callee: FunctionId,
        cost: &CostModel,
        tc_wrap: bool,
    ) -> Option<ResolvedSite> {
        let (action, cmps, hashed) = self.poly[index as usize].lookup(callee)?;
        let dispatch_cost = if hashed {
            cost.hash_lookup
        } else {
            u64::from(cmps) * cost.compare
        };
        Some(ResolvedSite {
            action,
            dispatch_cost,
            tc_wrap,
        })
    }

    /// Resolves `(site, callee)`: two bounds-checked array indexes plus one
    /// compare for monomorphic sites; the poly fallback for indirect ones.
    /// `None` means the site (or this target) traps.
    #[inline]
    pub(crate) fn resolve(
        &self,
        site: CallSiteId,
        callee: FunctionId,
        cost: &CostModel,
    ) -> Option<ResolvedSite> {
        let slot = *self.slots.get(site.index())?;
        let cs = self.sites.get(slot as usize)?;
        match cs.dispatch {
            CompiledDispatch::Trap => None,
            CompiledDispatch::Mono { target, action } => {
                (target == callee).then_some(ResolvedSite {
                    action,
                    dispatch_cost: 0,
                    tc_wrap: cs.tc_wrap,
                })
            }
            CompiledDispatch::Poly { index } => self.poly_resolve(index, callee, cost, cs.tc_wrap),
        }
    }

    /// `(allocated slots, site-id span)`: how many compiled records exist
    /// versus the dense index space the slot vector covers. The ratio is
    /// the dispatch-table occupancy surfaced through the obs layer.
    pub(crate) fn occupancy(&self) -> (u64, u64) {
        (self.sites.len() as u64, self.slots.len() as u64)
    }

    /// Iterates every allocated `(site, slot, record)` in site order.
    pub(crate) fn iter_compiled(
        &self,
    ) -> impl Iterator<Item = (CallSiteId, u32, &CompiledSite)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(idx, &slot)| {
                if slot == NO_SLOT {
                    return None;
                }
                let cs = &self.sites[slot as usize];
                Some((CallSiteId::new(idx as u32), slot, cs))
            })
    }

    /// The out-of-line state of polymorphic record `index`.
    pub(crate) fn poly_patch(&self, index: u32) -> &IndirectPatch {
        &self.poly[index as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }
    fn cost() -> CostModel {
        CostModel::default()
    }

    fn direct_state(target: FunctionId, action: EdgeAction) -> SiteState {
        SiteState {
            tc_wrap: false,
            patch: SitePatch::Direct(target, action),
        }
    }

    #[test]
    fn unknown_sites_resolve_to_none() {
        let t = DispatchTable::new();
        assert!(t.resolve(s(3), f(1), &cost()).is_none());
        assert!(t.entry(s(3)).is_none());
        assert_eq!(t.occupancy(), (0, 0));
    }

    #[test]
    fn mono_site_resolves_with_zero_dispatch_cost() {
        let mut t = DispatchTable::new();
        t.sync_site(s(5), &direct_state(f(2), EdgeAction::Encoded { delta: 7 }));
        let r = t.resolve(s(5), f(2), &cost()).unwrap();
        assert_eq!(r.action, EdgeAction::Encoded { delta: 7 });
        assert_eq!(r.dispatch_cost, 0);
        assert!(!r.tc_wrap);
        assert!(
            t.resolve(s(5), f(3), &cost()).is_none(),
            "wrong target traps"
        );
        assert_eq!(t.occupancy(), (1, 6), "one slot over a span of 6 ids");
    }

    #[test]
    fn slots_are_stable_across_rebuilds() {
        let mut t = DispatchTable::new();
        t.sync_site(s(9), &direct_state(f(1), EdgeAction::Unencoded));
        t.sync_site(s(2), &direct_state(f(4), EdgeAction::Unencoded));
        let slot9 = t.entry(s(9)).unwrap().0;
        let slot2 = t.entry(s(2)).unwrap().0;
        assert_ne!(slot9, slot2);

        let mut patches = PatchTable::new();
        patches.site_mut(s(9)).patch = SitePatch::Direct(f(1), EdgeAction::Encoded { delta: 3 });
        patches.site_mut(s(2)).patch = SitePatch::Direct(f(4), EdgeAction::Encoded { delta: 1 });
        t.rebuild(&patches);
        assert_eq!(t.entry(s(9)).unwrap().0, slot9, "slot survives rebuild");
        assert_eq!(t.entry(s(2)).unwrap().0, slot2);
        let r = t.resolve(s(9), f(1), &cost()).unwrap();
        assert_eq!(r.action, EdgeAction::Encoded { delta: 3 });
    }

    #[test]
    fn poly_sites_charge_chain_and_hash_costs() {
        let mut p = IndirectPatch::default();
        p.add_target(f(1), EdgeAction::Encoded { delta: 0 }, 4);
        p.add_target(f(2), EdgeAction::Encoded { delta: 5 }, 4);
        let state = SiteState {
            tc_wrap: true,
            patch: SitePatch::Indirect(p),
        };
        let mut t = DispatchTable::new();
        t.sync_site(s(0), &state);
        let r = t.resolve(s(0), f(2), &cost()).unwrap();
        assert_eq!(r.action, EdgeAction::Encoded { delta: 5 });
        assert_eq!(r.dispatch_cost, 2 * cost().compare);
        assert!(r.tc_wrap);
        assert!(
            t.resolve(s(0), f(9), &cost()).is_none(),
            "unknown target traps"
        );

        // Past the inline threshold the chain converts to a hash.
        let mut p = IndirectPatch::default();
        for i in 0..5 {
            p.add_target(f(i), EdgeAction::Unencoded, 3);
        }
        t.sync_site(
            s(0),
            &SiteState {
                tc_wrap: false,
                patch: SitePatch::Indirect(p),
            },
        );
        let r = t.resolve(s(0), f(4), &cost()).unwrap();
        assert_eq!(r.dispatch_cost, cost().hash_lookup);
    }

    #[test]
    fn sync_reuses_poly_entry_and_rebuild_drops_orphans() {
        let mut p = IndirectPatch::default();
        p.add_target(f(1), EdgeAction::Unencoded, 4);
        let mut t = DispatchTable::new();
        t.sync_site(
            s(0),
            &SiteState {
                tc_wrap: false,
                patch: SitePatch::Indirect(p.clone()),
            },
        );
        let (_, cs) = t.entry(s(0)).unwrap();
        let CompiledDispatch::Poly { index } = cs.dispatch else {
            panic!("expected poly record");
        };
        // A second sync with more targets reuses the same entry.
        p.add_target(f(2), EdgeAction::Unencoded, 4);
        t.sync_site(
            s(0),
            &SiteState {
                tc_wrap: false,
                patch: SitePatch::Indirect(p),
            },
        );
        let (_, cs) = t.entry(s(0)).unwrap();
        assert_eq!(cs.dispatch, CompiledDispatch::Poly { index });
        assert_eq!(t.poly_patch(index).target_count(), 2);

        // Flipping to direct leaves an orphan; a rebuild reclaims it.
        t.sync_site(s(0), &direct_state(f(1), EdgeAction::Unencoded));
        let mut patches = PatchTable::new();
        patches.site_mut(s(0)).patch = SitePatch::Direct(f(1), EdgeAction::Unencoded);
        t.rebuild(&patches);
        assert_eq!(t.poly.len(), 0, "rebuild drops orphaned poly entries");
    }

    #[test]
    fn copy_on_write_isolates_snapshots() {
        let mut t = DispatchTable::new();
        t.sync_site(s(1), &direct_state(f(1), EdgeAction::Encoded { delta: 2 }));
        let snapshot = t.clone();
        t.sync_site(s(1), &direct_state(f(1), EdgeAction::Encoded { delta: 9 }));
        t.sync_site(s(7), &direct_state(f(3), EdgeAction::Unencoded));
        let r = snapshot.resolve(s(1), f(1), &cost()).unwrap();
        assert_eq!(r.action, EdgeAction::Encoded { delta: 2 });
        assert!(snapshot.entry(s(7)).is_none());
    }

    #[test]
    fn slot_cap_starves_late_sites_but_keeps_early_ones() {
        let mut t = DispatchTable::new();
        t.set_slot_cap(Some(2));
        assert!(t.sync_site(s(0), &direct_state(f(1), EdgeAction::Unencoded)));
        assert!(t.sync_site(s(1), &direct_state(f(2), EdgeAction::Unencoded)));
        // Third distinct site is refused a slot; re-syncing an existing
        // site still works.
        assert!(!t.sync_site(s(2), &direct_state(f(3), EdgeAction::Unencoded)));
        assert!(t.sync_site(s(0), &direct_state(f(1), EdgeAction::Encoded { delta: 4 })));
        assert_eq!(t.slot_failures(), 1);
        assert!(t.entry(s(2)).is_none(), "starved site has no record");
        assert!(t.resolve(s(2), f(3), &cost()).is_none(), "starved = trap");
        let r = t.resolve(s(0), f(1), &cost()).unwrap();
        assert_eq!(r.action, EdgeAction::Encoded { delta: 4 });

        // A rebuild preserves the starvation and counts refusals.
        let mut patches = PatchTable::new();
        patches.site_mut(s(0)).patch = SitePatch::Direct(f(1), EdgeAction::Encoded { delta: 9 });
        patches.site_mut(s(1)).patch = SitePatch::Direct(f(2), EdgeAction::Unencoded);
        patches.site_mut(s(2)).patch = SitePatch::Direct(f(3), EdgeAction::Unencoded);
        t.rebuild(&patches);
        assert!(t.entry(s(2)).is_none());
        assert_eq!(t.slot_failures(), 2);
        assert_eq!(t.occupancy().0, 2);
    }

    #[test]
    fn iter_compiled_walks_sites_in_order() {
        let mut t = DispatchTable::new();
        t.sync_site(s(4), &direct_state(f(1), EdgeAction::Unencoded));
        t.sync_site(s(1), &direct_state(f(2), EdgeAction::Unencoded));
        let sites: Vec<CallSiteId> = t.iter_compiled().map(|(site, _, _)| site).collect();
        assert_eq!(sites, vec![s(1), s(4)]);
    }
}
