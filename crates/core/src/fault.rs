//! Deterministic fault injection.
//!
//! A [`FaultPlan`] arms the runtime's failure paths from configuration
//! alone — every trigger is keyed off deterministic state (generation
//! numbers, slot counts, depths, slow-path acquisition order), never
//! wall-clock time or ambient randomness, so a faulted run is exactly
//! reproducible from its arguments. Each armed fault lands on a graceful
//! degradation path (see `DESIGN.md`, "Failure model & degraded modes")
//! and is counted in [`crate::stats::DegradedState`]:
//!
//! | fault                    | degradation path                           |
//! |--------------------------|--------------------------------------------|
//! | `max_id_cap`             | re-encode aborts as id-space exhaustion; after the retry budget, permanent trap-everything degraded mode |
//! | `cc_spill_limit`         | ccStack sheds its bottom region to the heap spill at a watermark instead of growing unboundedly |
//! | `abort_generations`      | generation rollback + capped exponential backoff retry |
//! | `dispatch_slot_cap`      | site stays un-compiled: permanent (still sound) trap dispatch |
//! | `poison_slow_locks`      | poison cleared, snapshot revalidated, acquisition retried |
//! | `force_reencode_every`   | §4 triggers forced to fire on a fixed event cadence: a re-encode storm of generation bumps and lazy migrations |

/// A deterministic fault-injection plan. The default plan arms nothing;
/// the runtime behaves exactly as without the fault layer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Treat a re-encoding whose `maxID` would exceed this cap as 64-bit
    /// id-space exhaustion (forces the overflow/abort path without
    /// needing astronomically many edges).
    pub max_id_cap: Option<u64>,
    /// Force the ccStack overflow path once the resident (unspilled)
    /// depth exceeds this limit: the stack sheds its bottom entries to
    /// the heap spill region down to a watermark of half the limit.
    pub cc_spill_limit: Option<usize>,
    /// Abort the re-encoding that would produce these generations
    /// (`gTimeStamp` values), even if the encoding would fit. Each abort
    /// rolls the generation back and re-arms the trigger with extra
    /// backoff.
    pub abort_generations: Vec<u32>,
    /// Refuse dispatch-table slot allocation beyond this many slots.
    /// Sites that lose the race stay un-compiled and trap on every call
    /// (sound, just slower).
    pub dispatch_slot_cap: Option<u32>,
    /// Poison the tracker's shared slow-path lock on exactly these
    /// acquisitions (0-based, in global acquisition order). The holder
    /// clears the poison, revalidates the published snapshot and
    /// proceeds — the simulated analogue of `PoisonError::into_inner`.
    pub poison_slow_locks: Vec<u64>,
    /// Force the §4 re-encoding triggers to fire whenever this many
    /// events have elapsed since the last re-encoding (still subject to
    /// the configured `min_events_between_reencodes` backoff floor). A
    /// small value produces a *re-encode storm*: maximal generation
    /// churn, snapshot republishes and lazy context migrations.
    pub force_reencode_every: Option<u64>,
    /// Seed recorded alongside the plan. Workload generators fold it into
    /// their own PRNG seed so the *trace* driven under the plan is part
    /// of the plan's identity; the runtime itself never draws randomness.
    pub seed: u64,
}

impl FaultPlan {
    /// True when at least one fault is armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.max_id_cap.is_some()
            || self.cc_spill_limit.is_some()
            || !self.abort_generations.is_empty()
            || self.dispatch_slot_cap.is_some()
            || !self.poison_slow_locks.is_empty()
            || self.force_reencode_every.is_some()
    }

    /// True when re-encoding to generation `ts` must abort.
    #[must_use]
    pub fn aborts_generation(&self, ts: u32) -> bool {
        self.abort_generations.contains(&ts)
    }

    /// True when the `n`-th slow-path lock acquisition is poisoned.
    #[must_use]
    pub fn poisons_acquisition(&self, n: u64) -> bool {
        self.poison_slow_locks.contains(&n)
    }

    /// The named fault-plan presets the CI fault matrix runs, most
    /// specific first. Every preset is deterministic and every one must
    /// complete the chaos harness with a decode identical to the
    /// fault-free run.
    #[must_use]
    pub fn presets() -> Vec<(&'static str, FaultPlan)> {
        vec![
            (
                "maxid-exhaustion",
                FaultPlan {
                    max_id_cap: Some(40),
                    ..FaultPlan::default()
                },
            ),
            (
                "cc-overflow",
                FaultPlan {
                    cc_spill_limit: Some(6),
                    ..FaultPlan::default()
                },
            ),
            (
                "reencode-abort",
                FaultPlan {
                    abort_generations: vec![1, 2, 4],
                    ..FaultPlan::default()
                },
            ),
            (
                "slot-starvation",
                FaultPlan {
                    dispatch_slot_cap: Some(6),
                    ..FaultPlan::default()
                },
            ),
            (
                "poisoned-locks",
                FaultPlan {
                    poison_slow_locks: vec![0, 1, 3, 7, 15, 31],
                    ..FaultPlan::default()
                },
            ),
            (
                "reencode-storm",
                FaultPlan {
                    force_reencode_every: Some(24),
                    ..FaultPlan::default()
                },
            ),
            (
                "everything",
                FaultPlan {
                    max_id_cap: Some(64),
                    cc_spill_limit: Some(8),
                    abort_generations: vec![2, 3],
                    dispatch_slot_cap: Some(12),
                    poison_slow_locks: vec![0, 2, 4, 8, 16],
                    ..FaultPlan::default()
                },
            ),
        ]
    }

    /// Looks up a preset by name.
    #[must_use]
    pub fn preset(name: &str) -> Option<FaultPlan> {
        Self::presets()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disarmed() {
        let p = FaultPlan::default();
        assert!(!p.is_armed());
        assert!(!p.aborts_generation(1));
        assert!(!p.poisons_acquisition(0));
    }

    #[test]
    fn every_preset_is_armed_and_named_uniquely() {
        let presets = FaultPlan::presets();
        assert!(presets.len() >= 5);
        let mut names: Vec<_> = presets.iter().map(|(n, _)| *n).collect();
        for (name, plan) in &presets {
            assert!(plan.is_armed(), "preset {name} arms nothing");
            assert_eq!(FaultPlan::preset(name).as_ref(), Some(plan));
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), presets.len());
    }

    #[test]
    fn unknown_preset_is_none() {
        assert!(FaultPlan::preset("no-such-plan").is_none());
    }

    #[test]
    fn triggers_match_armed_values() {
        let p = FaultPlan {
            abort_generations: vec![2, 5],
            poison_slow_locks: vec![3],
            ..FaultPlan::default()
        };
        assert!(p.aborts_generation(2));
        assert!(p.aborts_generation(5));
        assert!(!p.aborts_generation(3));
        assert!(p.poisons_acquisition(3));
        assert!(!p.poisons_acquisition(4));
    }
}
