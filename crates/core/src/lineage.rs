//! Shared encoding lineages: content-addressed, refcounted encoding state
//! shared by every runtime instance executing the same program.
//!
//! A fleet of tenants running identical programs should not each pay for
//! graph discovery and re-encoding. An [`EncodingLineage`] owns one
//! complete encodable state — graph, dictionaries, patches, compiled
//! dispatch table — outside any single engine, keyed by a content hash
//! over the program's function/edge definition stream. Tenants *attach*
//! (adopting the state wholesale, O(1) thanks to `Arc`-backed innards),
//! *adopt* newer generations published by whichever attached tenant
//! re-encoded first, and *diverge* (copy-on-write) the moment their own
//! dynamic discovery grows an edge the lineage does not have.
//!
//! Linearisation: all publishes and adoptions happen under the lineage's
//! state lock, and the generation counter is bumped inside that critical
//! section — so the dictionary history observed along one lineage is a
//! single linear chain and lazily migrating tenants can always decode
//! old samples against the shared [`DictStore`]. Lock order is
//! tenant-shared-state before lineage-state; the lineage lock never
//! wraps a tenant lock.
//!
//! Degraded tenants never publish: only a [`ReencodeOutcome::Applied`]
//! re-encode writes into the lineage, so injected faults (id-space caps,
//! generation aborts) stay contained to the tenant that hit them.
//!
//! [`ReencodeOutcome::Applied`]: crate::shared::ReencodeOutcome

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::sync::{protocol, AtomicU64, Mutex, MutexGuard, Ordering};

use dacce_callgraph::{CallGraph, CallSiteId, DictStore, FunctionId, TimeStamp};

use crate::dispatch::DispatchTable;
use crate::patch::PatchTable;
use crate::warm::WarmStartReport;

/// The complete encodable state of one lineage generation: everything an
/// attaching tenant copies out (and a publishing tenant writes back in).
/// Per-instance trigger state, statistics and observability stay with the
/// tenant — a lineage carries only what the *encoding* is made of. Cloning
/// is cheap: graph, dictionaries, patches and dispatch are `Arc`-backed.
#[derive(Clone, Debug)]
pub(crate) struct LineageState {
    pub(crate) graph: Arc<CallGraph>,
    pub(crate) dicts: DictStore,
    pub(crate) ts: TimeStamp,
    pub(crate) max_id: u64,
    pub(crate) patches: PatchTable,
    pub(crate) dispatch: DispatchTable,
    pub(crate) site_owner: Arc<HashMap<CallSiteId, FunctionId>>,
    pub(crate) tail_fns: HashSet<FunctionId>,
    pub(crate) roots: Vec<FunctionId>,
    /// Fingerprint and report of the founding warm start, if any. Adopted
    /// by attaching tenants so a repeated identical `warm_start` on them
    /// is recognised as idempotent instead of double-seeding.
    pub(crate) warm: Option<(u64, WarmStartReport)>,
    /// Generation of this state; kept in lock step with the owner's
    /// atomic mirror *inside* the state critical section so readers
    /// always observe a consistent `(state, generation)` pair.
    pub(crate) generation: u64,
}

#[derive(Debug)]
struct LineageInner {
    hash: u64,
    /// Lock-free mirror of `state.generation` for cheap staleness checks
    /// on tenant fast paths (one Acquire load; the authoritative value
    /// lives inside the state lock).
    generation: AtomicU64,
    /// Registry-managed refcount of attached tenants.
    attached: AtomicU64,
    /// Tenants that split off this lineage (copy-on-write divergence).
    divergences: AtomicU64,
    state: Mutex<LineageState>,
}

/// A shared, refcounted, content-addressed encoding lineage. Clones share
/// the same underlying lineage (`Arc` semantics).
#[derive(Clone, Debug)]
pub struct EncodingLineage {
    inner: Arc<LineageInner>,
}

impl EncodingLineage {
    /// Founds a lineage at generation 0 from a tenant's exported state.
    pub(crate) fn found(hash: u64, mut state: LineageState) -> Self {
        state.generation = 0;
        EncodingLineage {
            inner: Arc::new(LineageInner {
                hash,
                generation: AtomicU64::new(0),
                attached: AtomicU64::new(0),
                divergences: AtomicU64::new(0),
                state: Mutex::new(state),
            }),
        }
    }

    /// The content hash this lineage is addressed by.
    pub fn content_hash(&self) -> u64 {
        self.inner.hash
    }

    /// The latest published generation (0 is the founding state).
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(protocol::LINEAGE_GEN_CHECK)
    }

    /// Number of tenants currently attached (registry-managed refcount).
    pub fn attached(&self) -> u64 {
        self.inner.attached.load(Ordering::Relaxed)
    }

    /// Number of tenants that diverged (copy-on-write) off this lineage.
    pub fn divergences(&self) -> u64 {
        self.inner.divergences.load(Ordering::Relaxed)
    }

    /// Increments the attached-tenant refcount.
    pub fn attach(&self) {
        self.inner.attached.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements the attached-tenant refcount; returns the count of
    /// tenants still attached so a registry can drop the lineage at zero.
    pub fn detach(&self) -> u64 {
        let prev = self.inner.attached.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "detach without a matching attach");
        prev.saturating_sub(1)
    }

    pub(crate) fn note_divergence(&self) {
        self.inner.divergences.fetch_add(1, Ordering::Relaxed);
    }

    /// Locks the lineage state. The shim mutex has no poisoning (the
    /// state is only ever replaced wholesale, never left half-written, so
    /// a panicking holder cannot leave it inconsistent).
    pub(crate) fn lock_state(&self) -> MutexGuard<'_, LineageState> {
        self.inner.state.lock()
    }

    /// A consistent `(state, generation)` copy of the latest generation.
    pub(crate) fn current(&self) -> LineageState {
        self.lock_state().clone()
    }

    /// Publishes `state` as the next generation. The caller must hold the
    /// state lock (`guard`) across its decision to publish so generations
    /// form one linear chain. Returns the new generation.
    pub(crate) fn publish_into(&self, guard: &mut LineageState, mut state: LineageState) -> u64 {
        let generation = guard.generation + 1;
        state.generation = generation;
        *guard = state;
        self.inner
            .generation
            .store(generation, protocol::LINEAGE_GEN_PUBLISH);
        generation
    }
}
