//! Fragment-parallel offline decode.
//!
//! A [`DecodeJournal`] is a per-thread stream of *state effects* recorded
//! from a live [`crate::tracker::Tracker`] run: every call/return event is
//! journaled as the delta it applied to the thread's encoding state
//! (`id` arithmetic, ccStack push/pop, compressed-recursion count bump),
//! and anything the delta grammar cannot express — a lazy migration after
//! a re-encode generation bump, a TcStack absolute restore — is journaled
//! as a full-state [`JournalOp::Resync`] record. The recorder verifies
//! every derived effect against the live thread state *at record time*
//! (see [`ThreadRecorder`]), so replaying the journal from the entry state
//! reproduces the runtime's encoding states exactly, op for op.
//!
//! That exactness is what makes the journal splittable. At balanced-frame
//! boundaries the recorder emits [`SeamSeed`]s — the complete encoding
//! state (generation timestamp, `id`, ccStack, leaf, spawn link) at that
//! op index. [`decode_parallel`] cuts the stream at the seams, replays
//! the fragments concurrently on a worker pool, each from its own seed,
//! and then runs an explicit seam-verification pass: a fragment's seed is
//! *proven* iff it equals the verified exit state of the previous
//! fragment (the entry state proves fragment 0 by definition). A fragment
//! whose seed cannot be proven — a corrupted seam record, a fragment that
//! failed mid-replay — is re-decoded serially from the last verified
//! state, so the parallel output is byte-identical to [`decode_serial`]
//! in every case; the fallback only costs throughput. The proof chain
//! crosses re-encode generation bumps and degraded/sub-path-band records
//! unchanged, because seeds are complete states, not deltas.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use dacce_callgraph::{CallSiteId, FunctionId, TimeStamp};

use crate::ccstack::CcEntry;
use crate::context::EncodedContext;
use crate::export::{parse_ctx, write_ctx, ImportError, OfflineDecoder};

/// The effect one before-call instrumentation execution had on the
/// thread's encoding state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallEffect {
    /// An encoded edge: `id` moved by `delta` (wrapping).
    Arith {
        /// Wrapping increment applied to `id`.
        delta: u64,
    },
    /// An unencoded edge: the pre-call `id` was pushed with the site and
    /// target, and `id` became `id` (the sub-path band start, `maxID+1`
    /// of the generation that executed the call).
    Push {
        /// The `id` value after the push.
        id: u64,
    },
    /// A compressed-recursion hit: the top entry's repetition count was
    /// bumped instead of pushing a duplicate.
    Compress {
        /// The `id` value after the compressed push.
        id: u64,
    },
}

/// The effect one after-return instrumentation execution had.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetEffect {
    /// An encoded edge: `id` moved back by `delta` (wrapping).
    Arith {
        /// Wrapping decrement applied to `id`.
        delta: u64,
    },
    /// An unencoded edge: the top ccStack entry was popped and its saved
    /// `id` restored.
    Pop,
    /// A compressed-recursion unwind: the top entry's repetition count
    /// was decremented (staying on the same entry).
    Uncompress,
}

/// One journaled event of a thread.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalOp {
    /// A call event and its verified state effect.
    Call {
        /// The call site.
        site: CallSiteId,
        /// The callee.
        target: FunctionId,
        /// The state effect the instrumentation applied.
        effect: CallEffect,
    },
    /// A return event and its verified state effect.
    Ret {
        /// The function control returned to.
        caller: FunctionId,
        /// The state effect the instrumentation applied.
        effect: RetEffect,
    },
    /// A decode point: the replayed state is decoded and emitted here.
    Sample,
    /// A full-state resynchronisation: the live state stopped being
    /// expressible as a delta (lazy migration after a re-encode, TcStack
    /// absolute restore, ...). Replay adopts the recorded state verbatim.
    Resync(EncodedContext),
}

/// A fragment boundary seed: the complete encoding state before op `at`.
#[derive(Clone, Debug, PartialEq)]
pub struct SeamSeed {
    /// Op index the seed applies before (`0 < at <= ops.len()`).
    pub at: usize,
    /// The complete encoding state at the seam.
    pub ctx: EncodedContext,
}

/// One thread's journal: entry state, effect ops and seam seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalThread {
    /// The recorded thread's identifier (journal-local).
    pub tid: u64,
    /// The complete encoding state when recording began (carries the
    /// spawn link for threads registered as spawned).
    pub entry: EncodedContext,
    /// The effect stream.
    pub ops: Vec<JournalOp>,
    /// Seam seeds, strictly increasing in `at`.
    pub seams: Vec<SeamSeed>,
}

/// A recorded multi-thread decode journal (`dacce-journal v1`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecodeJournal {
    /// Per-thread journals, in recording order.
    pub threads: Vec<JournalThread>,
}

/// An O(1) probe of the state components a single call/return event can
/// change: generation, `id`, ccStack depth and top entry, and the leaf
/// (current) function. Interior ccStack entries never change without the
/// depth or the generation changing, so matching a signature after
/// applying a candidate effect proves the full state.
#[derive(Clone, Debug, PartialEq)]
pub struct StateSig {
    /// Published generation timestamp the state decodes against.
    pub ts: TimeStamp,
    /// The context id.
    pub id: u64,
    /// ccStack depth.
    pub depth: usize,
    /// The top ccStack entry, if any.
    pub top: Option<CcEntry>,
    /// The currently executing function.
    pub leaf: FunctionId,
}

/// The signature of a full state.
#[must_use]
pub fn sig_of(ctx: &EncodedContext) -> StateSig {
    StateSig {
        ts: ctx.ts,
        id: ctx.id,
        depth: ctx.cc.len(),
        top: ctx.cc.last().copied(),
        leaf: ctx.leaf,
    }
}

fn sig_matches(st: &EncodedContext, sig: &StateSig) -> bool {
    st.ts == sig.ts
        && st.id == sig.id
        && st.cc.len() == sig.depth
        && st.cc.last() == sig.top.as_ref()
        && st.leaf == sig.leaf
}

/// A replay error: the journal is internally inconsistent (an effect does
/// not apply to the state it was recorded against).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragmentError {
    /// The thread the error occurred in.
    pub tid: u64,
    /// The op index that failed to apply.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for FragmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread {} op {}: {}", self.tid, self.at, self.msg)
    }
}

impl std::error::Error for FragmentError {}

/// Applies one journaled op to a replayed state.
///
/// # Errors
///
/// Fails when the effect is inconsistent with the state (corrupt or
/// mis-recorded journal) — e.g. a `Pop` on an empty ccStack or a
/// `Compress` whose top entry does not match the recorded edge.
pub fn apply_op(st: &mut EncodedContext, op: &JournalOp) -> Result<(), String> {
    match op {
        JournalOp::Call {
            site,
            target,
            effect,
        } => {
            match *effect {
                CallEffect::Arith { delta } => st.id = st.id.wrapping_add(delta),
                CallEffect::Push { id } => {
                    st.cc.push(CcEntry {
                        id: st.id,
                        site: *site,
                        target: *target,
                        count: 0,
                    });
                    st.id = id;
                }
                CallEffect::Compress { id } => {
                    let prev_id = st.id;
                    let top = st
                        .cc
                        .last_mut()
                        .ok_or_else(|| "compress on empty ccStack".to_string())?;
                    if top.site != *site || top.target != *target || top.id != prev_id {
                        return Err(format!(
                            "compress does not match top entry {}:{}:{}",
                            top.id, top.site, top.target
                        ));
                    }
                    top.count += 1;
                    st.id = id;
                }
            }
            st.leaf = *target;
        }
        JournalOp::Ret { caller, effect } => {
            match effect {
                RetEffect::Arith { delta } => st.id = st.id.wrapping_sub(*delta),
                RetEffect::Pop => {
                    let e = st
                        .cc
                        .pop()
                        .ok_or_else(|| "pop on empty ccStack".to_string())?;
                    st.id = e.id;
                }
                RetEffect::Uncompress => {
                    let top = st
                        .cc
                        .last_mut()
                        .ok_or_else(|| "uncompress on empty ccStack".to_string())?;
                    if top.count == 0 {
                        return Err("uncompress on uncompressed entry".to_string());
                    }
                    top.count -= 1;
                    st.id = top.id;
                }
            }
            st.leaf = *caller;
        }
        JournalOp::Sample => {}
        JournalOp::Resync(ctx) => *st = ctx.clone(),
    }
    Ok(())
}

/// Records one thread's effect journal against its live tracker state.
///
/// The caller drives the tracker (guards, batches are not supported — the
/// recorder needs per-op state signatures) and reports each event together
/// with the post-op [`StateSig`] and a lazy full-state capture. The
/// recorder derives the candidate effect from its replayed state, applies
/// it and verifies the signature; on any mismatch (migration, TcStack
/// restore, anything unforeseen) it falls back to a [`JournalOp::Resync`]
/// with the full captured state. The journal is therefore *verified at
/// record time*: serial replay reproduces the live states exactly.
#[derive(Debug)]
pub struct ThreadRecorder {
    tid: u64,
    entry: EncodedContext,
    sim: EncodedContext,
    ops: Vec<JournalOp>,
    seams: Vec<SeamSeed>,
    resyncs: u64,
}

impl ThreadRecorder {
    /// Starts recording a thread whose current (entry) state is `entry`.
    #[must_use]
    pub fn new(tid: u64, entry: EncodedContext) -> Self {
        ThreadRecorder {
            tid,
            sim: entry.clone(),
            entry,
            ops: Vec::new(),
            seams: Vec::new(),
            resyncs: 0,
        }
    }

    /// The replayed (simulated) state after the last recorded op.
    #[must_use]
    pub fn state(&self) -> &EncodedContext {
        &self.sim
    }

    /// Full-state resyncs recorded so far.
    #[must_use]
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    fn resync(&mut self, full: impl FnOnce() -> EncodedContext) {
        let ctx = full();
        self.sim = ctx.clone();
        self.ops.push(JournalOp::Resync(ctx));
        self.resyncs += 1;
    }

    /// Records a call event. `after` is the thread's state signature
    /// *after* the call executed; `full` captures the complete state and
    /// is only invoked when the effect cannot be expressed as a delta.
    pub fn on_call(
        &mut self,
        site: CallSiteId,
        target: FunctionId,
        after: &StateSig,
        full: impl FnOnce() -> EncodedContext,
    ) {
        let effect = if after.depth == self.sim.cc.len() {
            if after.top.as_ref() == self.sim.cc.last() {
                CallEffect::Arith {
                    delta: after.id.wrapping_sub(self.sim.id),
                }
            } else {
                CallEffect::Compress { id: after.id }
            }
        } else {
            CallEffect::Push { id: after.id }
        };
        let op = JournalOp::Call {
            site,
            target,
            effect,
        };
        if apply_op(&mut self.sim, &op).is_ok() && sig_matches(&self.sim, after) {
            self.ops.push(op);
        } else {
            self.resync(full);
        }
    }

    /// Records a return event. The caller function is taken from the
    /// post-op signature's leaf.
    pub fn on_ret(&mut self, after: &StateSig, full: impl FnOnce() -> EncodedContext) {
        let effect = if after.depth == self.sim.cc.len() {
            if after.top.as_ref() == self.sim.cc.last() {
                RetEffect::Arith {
                    delta: self.sim.id.wrapping_sub(after.id),
                }
            } else {
                RetEffect::Uncompress
            }
        } else {
            RetEffect::Pop
        };
        let op = JournalOp::Ret {
            caller: after.leaf,
            effect,
        };
        if apply_op(&mut self.sim, &op).is_ok() && sig_matches(&self.sim, after) {
            self.ops.push(op);
        } else {
            self.resync(full);
        }
    }

    /// Records a decode point: replaying the journal decodes the state
    /// reached here.
    pub fn on_sample(&mut self) {
        self.ops.push(JournalOp::Sample);
    }

    /// Emits a seam seed at the current op index. The full state is
    /// captured and cross-checked against the replayed state; a mismatch
    /// (which the signature verification should have made impossible) is
    /// self-healed with a [`JournalOp::Resync`] so the seed is correct by
    /// construction either way.
    pub fn seam(&mut self, full: impl FnOnce() -> EncodedContext) {
        let ctx = full();
        if ctx != self.sim {
            self.sim = ctx.clone();
            self.ops.push(JournalOp::Resync(ctx.clone()));
            self.resyncs += 1;
        }
        if self.ops.is_empty() {
            return; // the entry state already seeds op 0
        }
        let at = self.ops.len();
        if self.seams.last().is_some_and(|s| s.at == at) {
            return;
        }
        self.seams.push(SeamSeed { at, ctx });
    }

    /// Finishes recording and returns the thread journal.
    #[must_use]
    pub fn finish(self) -> JournalThread {
        JournalThread {
            tid: self.tid,
            entry: self.entry,
            ops: self.ops,
            seams: self.seams,
        }
    }
}

impl DecodeJournal {
    /// Total ops across all threads.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.threads.iter().map(|t| t.ops.len()).sum()
    }

    /// Total decode points across all threads.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.threads
            .iter()
            .flat_map(|t| &t.ops)
            .filter(|op| matches!(op, JournalOp::Sample))
            .count()
    }

    /// Total seam seeds across all threads.
    #[must_use]
    pub fn seams(&self) -> usize {
        self.threads.iter().map(|t| t.seams.len()).sum()
    }

    /// Serialises the journal as `dacce-journal v1` text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("dacce-journal v1\n");
        for t in &self.threads {
            let _ = write!(out, "thread {} ", t.tid);
            write_ctx(&mut out, &t.entry);
            out.push('\n');
            for s in &t.seams {
                let _ = write!(out, "seam {} ", s.at);
                write_ctx(&mut out, &s.ctx);
                out.push('\n');
            }
            for op in &t.ops {
                match op {
                    JournalOp::Call {
                        site,
                        target,
                        effect,
                    } => {
                        let _ = write!(out, "op c {} {} ", site.raw(), target.raw());
                        match effect {
                            CallEffect::Arith { delta } => {
                                let _ = write!(out, "a{delta}");
                            }
                            CallEffect::Push { id } => {
                                let _ = write!(out, "p{id}");
                            }
                            CallEffect::Compress { id } => {
                                let _ = write!(out, "k{id}");
                            }
                        }
                        out.push('\n');
                    }
                    JournalOp::Ret { caller, effect } => {
                        let _ = write!(out, "op r {} ", caller.raw());
                        match effect {
                            RetEffect::Arith { delta } => {
                                let _ = write!(out, "a{delta}");
                            }
                            RetEffect::Pop => out.push('o'),
                            RetEffect::Uncompress => out.push('u'),
                        }
                        out.push('\n');
                    }
                    JournalOp::Sample => out.push_str("op s\n"),
                    JournalOp::Resync(ctx) => {
                        out.push_str("op g ");
                        write_ctx(&mut out, ctx);
                        out.push('\n');
                    }
                }
            }
            out.push_str("end\n");
        }
        out
    }

    /// Parses `dacce-journal v1` text.
    ///
    /// # Errors
    ///
    /// Returns [`ImportError`] on malformed input.
    pub fn parse(text: &str) -> Result<DecodeJournal, ImportError> {
        let mut lines = text.lines().enumerate();
        let bad = |n: usize, msg: &str| ImportError::BadLine(n + 1, msg.to_string());
        match lines.next() {
            Some((_, "dacce-journal v1")) => {}
            _ => return Err(bad(0, "missing dacce-journal v1 header")),
        }
        let mut journal = DecodeJournal::default();
        let mut cur: Option<JournalThread> = None;
        for (n, line) in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let mut tokens = line.split_whitespace().peekable();
            let kw = tokens.next().expect("non-empty line");
            match kw {
                "thread" => {
                    if cur.is_some() {
                        return Err(bad(n, "thread inside open thread section"));
                    }
                    let tid = tokens
                        .next()
                        .and_then(|t| t.parse::<u64>().ok())
                        .ok_or_else(|| bad(n, "bad thread id"))?;
                    let entry = parse_ctx(&mut tokens, n + 1)?;
                    cur = Some(JournalThread {
                        tid,
                        entry,
                        ops: Vec::new(),
                        seams: Vec::new(),
                    });
                }
                "seam" => {
                    let t = cur.as_mut().ok_or_else(|| bad(n, "seam outside thread"))?;
                    let at = tokens
                        .next()
                        .and_then(|x| x.parse::<usize>().ok())
                        .ok_or_else(|| bad(n, "bad seam index"))?;
                    let ctx = parse_ctx(&mut tokens, n + 1)?;
                    if t.seams.last().is_some_and(|s| s.at >= at) || at == 0 {
                        return Err(bad(n, "seam indices must be strictly increasing"));
                    }
                    t.seams.push(SeamSeed { at, ctx });
                }
                "op" => {
                    let t = cur.as_mut().ok_or_else(|| bad(n, "op outside thread"))?;
                    let kind = tokens.next().ok_or_else(|| bad(n, "missing op kind"))?;
                    match kind {
                        "c" => {
                            let site = tokens
                                .next()
                                .and_then(|x| x.parse::<u32>().ok())
                                .map(CallSiteId::new)
                                .ok_or_else(|| bad(n, "bad call site"))?;
                            let target = tokens
                                .next()
                                .and_then(|x| x.parse::<u32>().ok())
                                .map(FunctionId::new)
                                .ok_or_else(|| bad(n, "bad call target"))?;
                            let eff = tokens.next().ok_or_else(|| bad(n, "missing effect"))?;
                            let num = |s: &str| s[1..].parse::<u64>().ok();
                            let effect = match (eff.as_bytes().first(), num(eff)) {
                                (Some(b'a'), Some(delta)) => CallEffect::Arith { delta },
                                (Some(b'p'), Some(id)) => CallEffect::Push { id },
                                (Some(b'k'), Some(id)) => CallEffect::Compress { id },
                                _ => return Err(bad(n, "bad call effect")),
                            };
                            t.ops.push(JournalOp::Call {
                                site,
                                target,
                                effect,
                            });
                        }
                        "r" => {
                            let caller = tokens
                                .next()
                                .and_then(|x| x.parse::<u32>().ok())
                                .map(FunctionId::new)
                                .ok_or_else(|| bad(n, "bad ret caller"))?;
                            let eff = tokens.next().ok_or_else(|| bad(n, "missing effect"))?;
                            let effect = match eff.as_bytes().first() {
                                Some(b'a') => RetEffect::Arith {
                                    delta: eff[1..]
                                        .parse::<u64>()
                                        .map_err(|_| bad(n, "bad ret delta"))?,
                                },
                                Some(b'o') => RetEffect::Pop,
                                Some(b'u') => RetEffect::Uncompress,
                                _ => return Err(bad(n, "bad ret effect")),
                            };
                            t.ops.push(JournalOp::Ret { caller, effect });
                        }
                        "s" => t.ops.push(JournalOp::Sample),
                        "g" => {
                            let ctx = parse_ctx(&mut tokens, n + 1)?;
                            t.ops.push(JournalOp::Resync(ctx));
                        }
                        _ => return Err(bad(n, "unknown op kind")),
                    }
                }
                "end" => {
                    let t = cur.take().ok_or_else(|| bad(n, "end outside thread"))?;
                    if t.seams.last().is_some_and(|s| s.at > t.ops.len()) {
                        return Err(bad(n, "seam index past end of ops"));
                    }
                    journal.threads.push(t);
                }
                _ => return Err(bad(n, "unknown journal line")),
            }
        }
        if cur.is_some() {
            return Err(ImportError::BadLine(
                0,
                "unterminated thread section".into(),
            ));
        }
        Ok(journal)
    }
}

/// The decoded context stream of a journal: one line per decode point, in
/// deterministic thread-major, op-ordered order. Serial and parallel
/// decode produce byte-identical streams.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecodedStream {
    /// `"<tid>#<k>: <path>"` lines (`decode-error <e>` for contexts the
    /// dictionaries cannot decode — recorded faithfully, not dropped).
    pub lines: Vec<String>,
}

fn render_sample(tid: u64, k: usize, st: &EncodedContext, dec: &OfflineDecoder) -> String {
    match dec.decode(st) {
        Ok(path) => format!("{tid}#{k}: {}", path.display(|f| f.to_string())),
        Err(e) => format!("{tid}#{k}: decode-error {e}"),
    }
}

/// Replays and decodes the whole journal on the calling thread.
///
/// # Errors
///
/// Fails only on an internally inconsistent journal (an effect that does
/// not apply); sample contexts the dictionaries cannot decode are emitted
/// as `decode-error` lines instead.
pub fn decode_serial(
    journal: &DecodeJournal,
    dec: &OfflineDecoder,
) -> Result<DecodedStream, FragmentError> {
    let mut lines = Vec::new();
    for t in &journal.threads {
        let mut st = t.entry.clone();
        let mut k = 0usize;
        for (i, op) in t.ops.iter().enumerate() {
            apply_op(&mut st, op).map_err(|msg| FragmentError {
                tid: t.tid,
                at: i,
                msg,
            })?;
            if matches!(op, JournalOp::Sample) {
                lines.push(render_sample(t.tid, k, &st, dec));
                k += 1;
            }
        }
    }
    Ok(DecodedStream { lines })
}

/// What one parallel decode did: fragment, seam-proof and fallback
/// accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelDecodeReport {
    /// Worker threads used.
    pub workers: usize,
    /// Fragments the journal was cut into.
    pub fragments: usize,
    /// Seams whose seed matched the verified exit state of the previous
    /// fragment.
    pub seams_verified: usize,
    /// Seams whose seed could not be proven (seed mismatch).
    pub seam_failures: usize,
    /// Fragments re-decoded serially (unproven seed or fragment replay
    /// error).
    pub fallback_fragments: usize,
    /// Decode points emitted.
    pub samples: usize,
    /// Ops replayed.
    pub ops: usize,
}

struct Fragment<'a> {
    thread: usize,
    start: usize,
    end: usize,
    seed: &'a EncodedContext,
    /// Decode points preceding this fragment in its thread (fixes the
    /// sample ordinals without cross-fragment communication).
    first_sample: usize,
}

struct FragOut {
    lines: Vec<String>,
    exit: EncodedContext,
    err: Option<FragmentError>,
}

fn replay_fragment(
    tid: u64,
    ops: &[JournalOp],
    start: usize,
    seed: EncodedContext,
    mut k: usize,
    dec: &OfflineDecoder,
) -> FragOut {
    let mut st = seed;
    let mut lines = Vec::new();
    for (off, op) in ops.iter().enumerate() {
        if let Err(msg) = apply_op(&mut st, op) {
            return FragOut {
                lines,
                exit: st,
                err: Some(FragmentError {
                    tid,
                    at: start + off,
                    msg,
                }),
            };
        }
        if matches!(op, JournalOp::Sample) {
            lines.push(render_sample(tid, k, &st, dec));
            k += 1;
        }
    }
    FragOut {
        lines,
        exit: st,
        err: None,
    }
}

/// Replays and decodes the journal on `workers` threads, cutting each
/// thread's op stream at its seam seeds and stitching the fragments back
/// together under the seam-verification pass described in the module
/// docs.
///
/// # Errors
///
/// Fails only when a fragment fails to replay *and* its serial fallback
/// (from the verified state) fails too — i.e. the journal itself is
/// inconsistent, exactly when [`decode_serial`] fails.
pub fn decode_parallel(
    journal: &DecodeJournal,
    dec: &OfflineDecoder,
    workers: usize,
) -> Result<(DecodedStream, ParallelDecodeReport), FragmentError> {
    let workers = workers.max(1);

    // Cut every thread at its seams.
    let mut fragments: Vec<Fragment<'_>> = Vec::new();
    for (ti, t) in journal.threads.iter().enumerate() {
        let mut start = 0usize;
        let mut seed = &t.entry;
        let mut first_sample = 0usize;
        for s in &t.seams {
            let at = s.at.min(t.ops.len());
            if at > start {
                fragments.push(Fragment {
                    thread: ti,
                    start,
                    end: at,
                    seed,
                    first_sample,
                });
                first_sample += t.ops[start..at]
                    .iter()
                    .filter(|op| matches!(op, JournalOp::Sample))
                    .count();
                start = at;
            }
            seed = &s.ctx;
        }
        if start < t.ops.len() || t.ops.is_empty() {
            fragments.push(Fragment {
                thread: ti,
                start,
                end: t.ops.len(),
                seed,
                first_sample,
            });
        }
    }

    // Replay fragments concurrently; a shared atomic index is the queue.
    let n = fragments.len();
    let next = AtomicUsize::new(0);
    let mut outs: Vec<Option<FragOut>> = Vec::with_capacity(n);
    outs.resize_with(n, || None);
    std::thread::scope(|scope| {
        let fragments = &fragments;
        let next = &next;
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let f = &fragments[i];
                    let t = &journal.threads[f.thread];
                    mine.push((
                        i,
                        replay_fragment(
                            t.tid,
                            &t.ops[f.start..f.end],
                            f.start,
                            f.seed.clone(),
                            f.first_sample,
                            dec,
                        ),
                    ));
                }
                mine
            }));
        }
        for h in handles {
            for (i, out) in h.join().expect("decode worker panicked") {
                outs[i] = Some(out);
            }
        }
    });

    // Stitch: walk each thread's fragments in order, proving every seed
    // against the verified exit state of the previous fragment and
    // falling back to serial replay from the verified state otherwise.
    let mut report = ParallelDecodeReport {
        workers,
        fragments: n,
        ops: journal.ops(),
        ..ParallelDecodeReport::default()
    };
    let mut lines = Vec::new();
    let mut thread_state: Vec<Option<EncodedContext>> = journal
        .threads
        .iter()
        .map(|t| Some(t.entry.clone()))
        .collect();
    for (i, f) in fragments.iter().enumerate() {
        let t = &journal.threads[f.thread];
        let verified = thread_state[f.thread].take().expect("state threaded");
        let out = outs[i].take().expect("fragment replayed");
        let proven = *f.seed == verified;
        if f.start > 0 {
            if proven {
                report.seams_verified += 1;
            } else {
                report.seam_failures += 1;
            }
        }
        let exit = if proven && out.err.is_none() {
            lines.extend(out.lines);
            out.exit
        } else {
            report.fallback_fragments += 1;
            let fb = replay_fragment(
                t.tid,
                &t.ops[f.start..f.end],
                f.start,
                verified,
                f.first_sample,
                dec,
            );
            if let Some(err) = fb.err {
                return Err(err);
            }
            lines.extend(fb.lines);
            fb.exit
        };
        thread_state[f.thread] = Some(exit);
    }
    report.samples = lines.len();
    Ok((DecodedStream { lines }, report))
}

/// Independently verifies a journal's seam chain against an export: every
/// fragment is replayed from its seed and its exit state compared with the
/// next seed. Returns one message per violation (empty = all seams
/// proven). Replay errors inside a fragment are reported on the seam they
/// invalidate.
#[must_use]
pub fn verify_seams(journal: &DecodeJournal) -> Vec<String> {
    let mut problems = Vec::new();
    for t in &journal.threads {
        let mut st = t.entry.clone();
        let mut from = 0usize;
        for (si, s) in t.seams.iter().enumerate() {
            let at = s.at.min(t.ops.len());
            let mut broken = None;
            for (off, op) in t.ops[from..at].iter().enumerate() {
                if let Err(msg) = apply_op(&mut st, op) {
                    broken = Some(format!("op {} failed: {msg}", from + off));
                    break;
                }
            }
            if let Some(msg) = broken {
                problems.push(format!(
                    "thread {} seam {si} (op {at}): fragment replay broke before the seam: {msg}",
                    t.tid
                ));
                st = s.ctx.clone(); // resume the chain from the seed
            } else if st != s.ctx {
                problems.push(format!(
                    "thread {} seam {si} (op {at}): exit state does not match the seam seed \
                     (exit ts {} id {} depth {}, seed ts {} id {} depth {})",
                    t.tid,
                    st.ts.raw(),
                    st.id,
                    st.cc.len(),
                    s.ctx.ts.raw(),
                    s.ctx.id,
                    s.ctx.cc.len(),
                ));
                st = s.ctx.clone();
            }
            from = at;
        }
        for (off, op) in t.ops[from..].iter().enumerate() {
            if let Err(msg) = apply_op(&mut st, op) {
                problems.push(format!(
                    "thread {} tail fragment: op {} failed: {msg}",
                    t.tid,
                    from + off
                ));
                break;
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SpawnLink;

    fn ctx(ts: u32, id: u64, leaf: u32, cc: &[(u64, u32, u32, u64)]) -> EncodedContext {
        EncodedContext {
            ts: TimeStamp::new(ts),
            id,
            leaf: FunctionId::new(leaf),
            root: FunctionId::new(0),
            cc: cc
                .iter()
                .map(|&(id, s, t, n)| CcEntry {
                    id,
                    site: CallSiteId::new(s),
                    target: FunctionId::new(t),
                    count: n,
                })
                .collect(),
            spawn: None,
        }
    }

    #[test]
    fn text_round_trip_preserves_everything() {
        let mut parent = ctx(0, 3, 1, &[]);
        parent.spawn = None;
        let mut entry = ctx(1, 7, 2, &[(3, 1, 2, 0), (9, 4, 5, 2)]);
        entry.spawn = Some(SpawnLink {
            site: CallSiteId::new(8),
            parent: Box::new(parent),
        });
        let journal = DecodeJournal {
            threads: vec![JournalThread {
                tid: 4,
                entry,
                ops: vec![
                    JournalOp::Call {
                        site: CallSiteId::new(1),
                        target: FunctionId::new(3),
                        effect: CallEffect::Arith { delta: 2 },
                    },
                    JournalOp::Sample,
                    JournalOp::Call {
                        site: CallSiteId::new(2),
                        target: FunctionId::new(4),
                        effect: CallEffect::Push { id: 11 },
                    },
                    JournalOp::Call {
                        site: CallSiteId::new(2),
                        target: FunctionId::new(4),
                        effect: CallEffect::Compress { id: 11 },
                    },
                    JournalOp::Ret {
                        caller: FunctionId::new(4),
                        effect: RetEffect::Uncompress,
                    },
                    JournalOp::Ret {
                        caller: FunctionId::new(3),
                        effect: RetEffect::Pop,
                    },
                    JournalOp::Resync(ctx(2, 1, 3, &[(5, 6, 7, 0)])),
                    JournalOp::Ret {
                        caller: FunctionId::new(0),
                        effect: RetEffect::Arith { delta: 1 },
                    },
                ],
                seams: vec![SeamSeed {
                    at: 2,
                    ctx: ctx(1, 9, 3, &[(3, 1, 2, 0)]),
                }],
            }],
        };
        let text = journal.to_text();
        let back = DecodeJournal::parse(&text).expect("parses");
        assert_eq!(back, journal);
    }

    #[test]
    fn parse_rejects_malformed_journals() {
        assert!(DecodeJournal::parse("nope").is_err());
        assert!(DecodeJournal::parse("dacce-journal v1\nop s\n").is_err());
        assert!(DecodeJournal::parse("dacce-journal v1\nthread 0 0 0 0 0\n").is_err());
        assert!(
            DecodeJournal::parse("dacce-journal v1\nthread 0 0 0 0 0\nop c 1 2 z9\nend\n").is_err()
        );
        assert!(
            DecodeJournal::parse("dacce-journal v1\nthread 0 0 0 0 0\nseam 0 0 0 0 0\nend\n")
                .is_err()
        );
    }

    #[test]
    fn effects_apply_and_reject_inconsistency() {
        let mut st = ctx(0, 5, 1, &[]);
        let push = JournalOp::Call {
            site: CallSiteId::new(1),
            target: FunctionId::new(2),
            effect: CallEffect::Push { id: 9 },
        };
        apply_op(&mut st, &push).unwrap();
        assert_eq!(st.id, 9);
        assert_eq!(st.cc.len(), 1);
        assert_eq!(st.cc[0].id, 5);
        // compress must match the top edge and the saved id
        let bad = JournalOp::Call {
            site: CallSiteId::new(3),
            target: FunctionId::new(2),
            effect: CallEffect::Compress { id: 9 },
        };
        assert!(apply_op(&mut st, &bad).is_err());
        let pop = JournalOp::Ret {
            caller: FunctionId::new(1),
            effect: RetEffect::Pop,
        };
        apply_op(&mut st, &pop).unwrap();
        assert_eq!(st.id, 5);
        assert!(apply_op(&mut st, &pop).is_err());
        let un = JournalOp::Ret {
            caller: FunctionId::new(1),
            effect: RetEffect::Uncompress,
        };
        assert!(apply_op(&mut st, &un).is_err());
    }

    #[test]
    fn recorder_falls_back_to_resync_on_unexplained_state() {
        let entry = ctx(0, 0, 0, &[]);
        let mut rec = ThreadRecorder::new(0, entry);
        // A state whose generation moved: no delta explains it.
        let after = ctx(1, 4, 2, &[]);
        rec.on_call(
            CallSiteId::new(0),
            FunctionId::new(2),
            &sig_of(&after),
            || after.clone(),
        );
        assert_eq!(rec.resyncs(), 1);
        let t = rec.finish();
        assert_eq!(t.ops, vec![JournalOp::Resync(after)]);
    }

    #[test]
    fn seam_verification_flags_a_tampered_seed() {
        let entry = ctx(0, 0, 0, &[]);
        let mut rec = ThreadRecorder::new(0, entry);
        let a = ctx(0, 2, 1, &[]);
        rec.on_call(CallSiteId::new(0), FunctionId::new(1), &sig_of(&a), || {
            a.clone()
        });
        rec.seam(|| a.clone());
        let b = ctx(0, 0, 0, &[]);
        rec.on_ret(&sig_of(&b), || b.clone());
        let mut t = rec.finish();
        assert!(verify_seams(&DecodeJournal {
            threads: vec![t.clone()]
        })
        .is_empty());
        t.seams[0].ctx.id = 99;
        let problems = verify_seams(&DecodeJournal { threads: vec![t] });
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("does not match"), "{problems:?}");
    }
}
