//! Adaptive re-encoding (§4 of the paper).
//!
//! Re-encoding is triggered when (1) enough new call edges accumulated,
//! (2) the frequently invoked call paths changed, or (3) the `ccStack` is
//! accessed too frequently. The procedure suspends the program (atomic
//! between events in the simulation), derives edge heat from the recently
//! collected samples, re-classifies back edges, re-encodes the whole graph
//! with the hottest incoming edge of every node at encoding 0, freezes a new
//! decode dictionary under an incremented `gTimeStamp`, re-patches every
//! site, and regenerates the live encoding state of every thread so that it
//! looks as if the new instrumentation had been in place from the start
//! (the paper rewrites return addresses on the machine stacks; we decode the
//! old state and replay it under the new patches — see `DESIGN.md`).

use std::collections::HashMap;

use dacce_callgraph::encode::{encode_graph, EncodeOptions, Encoding};
use dacce_callgraph::{
    analysis::classify_back_edges, CallSiteId, DecodeDict, Dispatch, EdgeId, FunctionId,
};
use dacce_program::{ContextPath, ThreadId};

use crate::config::CompressionMode;
use crate::decode::decode_thread;
use crate::engine::DacceEngine;
use crate::patch::{EdgeAction, IndirectPatch, SitePatch, SiteState};
use crate::stats::ProgressPoint;
use crate::thread::ShadowFrame;

/// Minimum heat for an edge to participate in the hot-path-change check;
/// filters sampling noise.
const HOT_FLOOR: u64 = 16;

impl DacceEngine {
    /// Checks the three §4 triggers and re-encodes when one fires. Returns
    /// the cost charged (0 when nothing happened).
    pub(crate) fn maybe_reencode(&mut self) -> u64 {
        if !self.config.reencode_enabled || self.reencode_overflowed {
            return 0;
        }
        if self.events_since_reencode < self.cur_min_events {
            return 0;
        }
        let mut fire = false;

        // Trigger 1: the number of identified call edges reached a threshold.
        if self.new_edges >= self.config.edge_threshold {
            fire = true;
        }

        // Trigger 3: the ccStack is frequently accessed.
        if self.events - self.window_start_events >= self.config.ccstack_rate_window {
            let ccops_now = self.live_ccstack_ops();
            let devents = self.events - self.window_start_events;
            let dops = ccops_now.saturating_sub(self.window_start_ccops);
            let rate = dops as f64 / devents as f64;
            self.window_start_events = self.events;
            self.window_start_ccops = ccops_now;
            if rate > self.config.ccstack_rate_threshold && self.has_unencoded_hot_state() {
                fire = true;
            }
        }

        // Trigger 2: the frequently invoked call paths have changed.
        if self.events >= self.next_hot_check {
            self.next_hot_check = self.events + self.config.hot_check_every;
            if self.hot_choices_changed() >= self.config.hot_change_nodes {
                fire = true;
            }
        }

        if fire {
            self.reencode()
        } else {
            0
        }
    }

    /// Total ccStack operations so far (exited + live threads).
    pub(crate) fn live_ccstack_ops(&self) -> u64 {
        self.stats.ccstack_ops
            + self
                .threads
                .values()
                .map(|c| c.cc.ops())
                .sum::<u64>()
    }

    /// True when re-encoding could plausibly reduce ccStack traffic: there
    /// are unencoded non-back edges, or hot back edges still lacking
    /// compression.
    fn has_unencoded_hot_state(&self) -> bool {
        if self.new_edges > 0 {
            return true;
        }
        if self.config.compression == CompressionMode::Adaptive {
            for (eid, e) in self.graph.edges() {
                if !e.back {
                    continue;
                }
                let heat = self.edge_heat.get(&eid).copied().unwrap_or(0);
                if heat < self.config.compression_min_heat {
                    continue;
                }
                if let Some(state) = self.sites.get(&e.site) {
                    let action = match &state.patch {
                        SitePatch::Direct(t, a) if *t == e.callee => Some(*a),
                        SitePatch::Indirect(p) => p.lookup(e.callee).map(|(a, _, _)| a),
                        _ => None,
                    };
                    if action == Some(EdgeAction::Unencoded) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Counts nodes whose hottest incoming edge differs from the one chosen
    /// at the last encoding.
    fn hot_choices_changed(&self) -> usize {
        let mut changed = 0;
        for &node in self.graph.nodes() {
            let mut best: Option<(u64, EdgeId)> = None;
            for &eid in self.graph.incoming(node) {
                if self.graph.edge(eid).back {
                    continue;
                }
                let heat = self.edge_heat.get(&eid).copied().unwrap_or(0);
                if heat < HOT_FLOOR {
                    continue;
                }
                if best.map_or(true, |(h, e)| heat > h || (heat == h && eid < e)) {
                    best = Some((heat, eid));
                }
            }
            if let (Some((_, best_eid)), Some(&prev)) = (best, self.last_hot_choice.get(&node)) {
                if best_eid != prev {
                    changed += 1;
                }
            }
        }
        changed
    }

    /// The re-encoding procedure. Returns the cost charged.
    pub(crate) fn reencode(&mut self) -> u64 {
        let cost = self.graph.edge_count() as u64 * self.cost.reencode_per_edge;
        self.stats.reencodes += 1;
        self.stats.reencode_cost += cost;

        // Decode the collected contexts and mark the frequently invoked
        // edges (§4, first bullet).
        let ring = std::mem::take(&mut self.ring);
        for samp in &ring {
            if let Ok(path) = crate::decode::decode_full(samp, &self.dicts, &self.site_owner) {
                for w in path.0.windows(2) {
                    if let Some(site) = w[1].site {
                        if let Some(eid) = self.graph.edge_id(site, w[1].func) {
                            *self.edge_heat.entry(eid).or_insert(0) += 4;
                        }
                    }
                }
            } else {
                self.stats.decode_errors += 1;
            }
        }
        self.ring = ring;

        // Decode every live thread's state under the *old* dictionary
        // before anything changes.
        let old_dict = self
            .dicts
            .get(self.ts)
            .expect("current dictionary recorded")
            .clone();
        let mut decoded: Vec<(ThreadId, ContextPath)> = Vec::new();
        let tids: Vec<ThreadId> = {
            let mut v: Vec<ThreadId> = self.threads.keys().copied().collect();
            v.sort_unstable();
            v
        };
        for tid in tids {
            let ctx = &self.threads[&tid];
            match decode_thread(
                &old_dict,
                ctx.id,
                ctx.current,
                ctx.root,
                ctx.cc.entries(),
                &self.site_owner,
            ) {
                Ok(path) => decoded.push((tid, path)),
                Err(_) => {
                    // Engine bug; keep the stale state and surface it.
                    self.stats.decode_errors += 1;
                }
            }
        }

        // Re-classify and re-encode the grown graph.
        classify_back_edges(&mut self.graph, &self.roots);
        let opts = if self.config.heat_ordering {
            EncodeOptions::with_heat(self.edge_heat.clone())
        } else {
            EncodeOptions::default()
        };
        let enc = encode_graph(&self.graph, &self.roots, &opts);
        if enc.overflow {
            // A 64-bit-overflowing dynamic graph cannot be re-encoded; keep
            // the old encoding and stop trying (Table 1 reports this for
            // PCCE; DACCE graphs stay far below the budget).
            self.reencode_overflowed = true;
            self.stats.overflow_aborts += 1;
            self.reset_triggers();
            return cost;
        }

        let new_ts = self.ts.next();
        let dict = DecodeDict::from_encoding(&self.graph, &enc, new_ts)
            .expect("overflow checked above");
        self.dicts.push(dict);
        self.ts = new_ts;
        self.max_id = enc.max_id;
        self.stats.max_max_id = self.stats.max_max_id.max(self.max_id);

        self.rebuild_sites(&enc);

        // Regenerate every thread's id/ccStack/shadow under the new
        // encodings.
        for (tid, path) in decoded {
            self.replay_thread(tid, &path);
        }

        // Remember the per-node hot choice this encoding was built with.
        self.last_hot_choice.clear();
        for &node in self.graph.nodes() {
            let mut best: Option<(u64, EdgeId)> = None;
            for &eid in self.graph.incoming(node) {
                if self.graph.edge(eid).back {
                    continue;
                }
                let heat = self.edge_heat.get(&eid).copied().unwrap_or(0);
                if heat < HOT_FLOOR {
                    continue;
                }
                if best.map_or(true, |(h, e)| heat > h || (heat == h && eid < e)) {
                    best = Some((heat, eid));
                }
            }
            if let Some((_, eid)) = best {
                self.last_hot_choice.insert(node, eid);
            }
        }

        self.stats.progress.push(ProgressPoint {
            calls: self.stats.calls,
            nodes: self.graph.node_count(),
            edges: self.graph.edge_count(),
            max_id: self.max_id,
        });

        // Decay heat *after* it drove this encoding, so the next
        // re-encoding weighs recent behaviour over old phases.
        for h in self.edge_heat.values_mut() {
            *h /= 2;
        }

        self.reset_triggers();
        cost
    }

    fn reset_triggers(&mut self) {
        self.new_edges = 0;
        self.events_since_reencode = 0;
        self.window_start_events = self.events;
        self.window_start_ccops = self.live_ccstack_ops();
        // Back off: re-encoding is cheap to trigger early (small graph,
        // everything to gain) and increasingly rare once stable.
        let next = (self.cur_min_events as f64 * self.config.reencode_backoff) as u64;
        self.cur_min_events = next.min(self.config.reencode_interval_cap);
    }

    /// The action the new encoding assigns to one graph edge.
    fn action_for_edge(&self, eid: EdgeId, back: bool, enc: &Encoding) -> EdgeAction {
        if back {
            let compress = match self.config.compression {
                CompressionMode::Always => true,
                CompressionMode::Never => false,
                CompressionMode::Adaptive => {
                    self.edge_heat.get(&eid).copied().unwrap_or(0)
                        >= self.config.compression_min_heat
                }
            };
            if compress {
                EdgeAction::UnencodedCompressed
            } else {
                EdgeAction::Unencoded
            }
        } else {
            EdgeAction::Encoded {
                delta: enc.encoding_u64(eid).expect("non-overflowing encoding"),
            }
        }
    }

    /// Regenerates all site patch states from the new encoding.
    fn rebuild_sites(&mut self, enc: &Encoding) {
        // Group edges per site.
        let mut by_site: HashMap<CallSiteId, Vec<EdgeId>> = HashMap::new();
        for (eid, e) in self.graph.edges() {
            by_site.entry(e.site).or_default().push(eid);
        }

        for (site, eids) in by_site {
            let indirect = eids
                .iter()
                .any(|&eid| self.graph.edge(eid).dispatch == Dispatch::Indirect);
            let tc_wrap = self.config.handle_tail_calls
                && eids
                    .iter()
                    .any(|&eid| self.tail_fns.contains(&self.graph.edge(eid).callee));

            let patch = if indirect {
                // Order known targets hottest-first for the compare chain.
                let mut ordered: Vec<(u64, EdgeId)> = eids
                    .iter()
                    .map(|&eid| (self.edge_heat.get(&eid).copied().unwrap_or(0), eid))
                    .collect();
                ordered.sort_by_key(|&(h, eid)| (std::cmp::Reverse(h), eid.index()));
                let mut p = IndirectPatch::default();
                for &(_, eid) in &ordered {
                    let e = self.graph.edge(eid);
                    let action = self.action_for_edge(eid, e.back, enc);
                    p.add_target(e.callee, action, self.config.indirect_inline_max);
                }
                if p.hashed.is_some() {
                    // Conversion accounting only when the site was inline
                    // before (or new).
                    let was_hashed = matches!(
                        self.sites.get(&site).map(|s| &s.patch),
                        Some(SitePatch::Indirect(old)) if old.hashed.is_some()
                    );
                    if !was_hashed {
                        self.stats.hash_conversions += 1;
                    }
                }
                SitePatch::Indirect(p)
            } else {
                let eid = eids[0];
                let e = self.graph.edge(eid);
                let action = self.action_for_edge(eid, e.back, enc);
                SitePatch::Direct(e.callee, action)
            };

            self.sites.insert(site, SiteState { tc_wrap, patch });
        }
    }

    /// Rebuilds one thread's encoding state by replaying its decoded path
    /// under the new patch states. Physical frames are recognised by
    /// matching the old shadow stack (tail steps are never physical; a call
    /// site is statically either a tail call or not, so the match is
    /// unambiguous).
    fn replay_thread(&mut self, tid: ThreadId, path: &ContextPath) {
        let mut ctx = match self.threads.remove(&tid) {
            Some(c) => c,
            None => return,
        };
        let old_shadow: Vec<ShadowFrame> = std::mem::take(&mut ctx.shadow);
        ctx.id = 0;
        ctx.cc.clear();

        let mut k = 0usize;
        for step in path.0.iter().skip(1) {
            let site = step.site.expect("non-root steps carry their site");
            let func = step.func;
            let physical = k < old_shadow.len()
                && old_shadow[k].site == site
                && old_shadow[k].callee == func;
            let saved_id = ctx.id;
            let saved_cc_len = ctx.cc.depth();
            let saved_top_count = ctx.cc.top().map(|e| e.count).unwrap_or(0);
            let action = self.action_of(site, func);
            match action {
                EdgeAction::Encoded { delta } => {
                    ctx.id = ctx.id.wrapping_add(delta);
                }
                EdgeAction::Unencoded => {
                    ctx.cc.push(ctx.id, site, func);
                    ctx.id = self.max_id + 1;
                }
                EdgeAction::UnencodedCompressed => {
                    ctx.cc.push_compressed(ctx.id, site, func);
                    ctx.id = self.max_id + 1;
                }
            }
            if physical {
                let wrapped = self.config.handle_tail_calls
                    && self.sites.get(&site).map(|s| s.tc_wrap).unwrap_or(false);
                ctx.shadow.push(ShadowFrame {
                    site,
                    callee: func,
                    saved_id,
                    saved_cc_len,
                    saved_top_count,
                    wrapped,
                });
                k += 1;
            }
            ctx.current = func;
        }
        debug_assert!(
            k == old_shadow.len() || !self.config.handle_tail_calls,
            "replay must reconstruct every physical frame"
        );
        // With a corrupted encoding (broken-tail-call ablation) the decoded
        // path can disagree with the physical frames; keep the unmatched
        // frames so call/return bookkeeping stays balanced — the contexts
        // are wrong either way, which is what the ablation demonstrates.
        for frame in old_shadow.into_iter().skip(k) {
            ctx.shadow.push(frame);
        }
        self.threads.insert(tid, ctx);
    }

    /// Current action for `(site, callee)`; defensively unencoded when the
    /// lookup fails (cannot happen for edges already in the graph).
    fn action_of(&self, site: CallSiteId, callee: FunctionId) -> EdgeAction {
        match self.sites.get(&site).map(|s| &s.patch) {
            Some(SitePatch::Direct(t, a)) if *t == callee => *a,
            Some(SitePatch::Indirect(p)) => p
                .lookup(callee)
                .map(|(a, _, _)| a)
                .unwrap_or(EdgeAction::Unencoded),
            _ => EdgeAction::Unencoded,
        }
    }
}

#[cfg(test)]
mod tests {
    use dacce_program::runtime::CallDispatch;
    use dacce_program::{CostModel, ThreadId};

    use dacce_callgraph::{CallSiteId, FunctionId};

    use crate::config::DacceConfig;
    use crate::engine::DacceEngine;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    /// An engine that re-encodes eagerly (tiny thresholds, no cool-down).
    fn eager_engine() -> DacceEngine {
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        e
    }

    #[test]
    fn edge_threshold_triggers_reencode() {
        let mut e = eager_engine();
        let _ = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
        assert_eq!(e.stats().reencodes, 0);
        let _ = e.call(ThreadId::MAIN, s(1), f(1), f(2), CallDispatch::Direct, false);
        assert_eq!(e.stats().reencodes, 1, "second new edge fires trigger 1");
        assert_eq!(e.timestamp().raw(), 1);
        assert_eq!(e.dicts().len(), 2);
    }

    #[test]
    fn reencode_regenerates_live_thread_state() {
        let mut e = eager_engine();
        let _ = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
        let _ = e.call(ThreadId::MAIN, s(1), f(1), f(2), CallDispatch::Direct, false);
        // Re-encoding happened with two active frames; both edges are now
        // encoded with delta 0 (single incoming each), so the regenerated
        // state is id = 0 with an empty ccStack.
        let (snap, _) = e.sample(ThreadId::MAIN);
        assert_eq!(snap.id, 0);
        assert_eq!(snap.cc_depth(), 0);
        // And it still decodes to the true path.
        let path = e.decode(&snap).unwrap();
        let funcs: Vec<FunctionId> = path.0.iter().map(|p| p.func).collect();
        assert_eq!(funcs, vec![f(0), f(1), f(2)]);
        // Unwinding restores the clean state under the new encoding.
        let _ = e.ret(ThreadId::MAIN, s(1), f(1), f(2));
        let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        let (snap, _) = e.sample(ThreadId::MAIN);
        assert_eq!(snap.id, 0);
        assert_eq!(snap.cc_depth(), 0);
    }

    #[test]
    fn samples_recorded_before_reencode_still_decode() {
        let mut e = eager_engine();
        let _ = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
        let (old_snap, _) = e.sample(ThreadId::MAIN);
        assert_eq!(old_snap.ts.raw(), 0);
        // Trigger a re-encode.
        let _ = e.call(ThreadId::MAIN, s(1), f(1), f(2), CallDispatch::Direct, false);
        assert_eq!(e.timestamp().raw(), 1);
        // The old sample decodes against dictionary 0.
        let path = e.decode(&old_snap).unwrap();
        let funcs: Vec<FunctionId> = path.0.iter().map(|p| p.func).collect();
        assert_eq!(funcs, vec![f(0), f(1)]);
    }

    #[test]
    fn no_reencoding_config_never_reencodes() {
        let mut e = DacceEngine::new(DacceConfig::no_reencoding(), CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        for i in 1..40u32 {
            let _ = e.call(ThreadId::MAIN, s(i), f(i - 1), f(i), CallDispatch::Direct, false);
        }
        assert_eq!(e.stats().reencodes, 0);
        assert_eq!(e.timestamp().raw(), 0);
        // Everything is on the ccStack.
        let (snap, _) = e.sample(ThreadId::MAIN);
        assert_eq!(snap.cc_depth(), 39);
        let path = e.decode(&snap).unwrap();
        assert_eq!(path.depth(), 40);
    }

    #[test]
    fn recursion_gets_compressed_after_reencode() {
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            compression_min_heat: 1,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        // Build recursion: main -> rec -> rec -> ... The self edge is
        // discovered, re-encoding classifies it as a back edge, and (heat
        // permitting) compresses it.
        let _ = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
        for _ in 0..40 {
            let _ = e.call(ThreadId::MAIN, s(1), f(1), f(1), CallDispatch::Direct, false);
        }
        assert!(e.stats().reencodes >= 1);
        let (snap, _) = e.sample(ThreadId::MAIN);
        // Deep self-recursion with identical state compresses into very few
        // physical entries.
        assert!(
            snap.cc_depth() <= 3,
            "compressed depth {} too large",
            snap.cc_depth()
        );
        let path = e.decode(&snap).unwrap();
        assert_eq!(path.depth(), 42, "logical depth preserved");
        // Unwind everything; state must return to clean.
        for _ in 0..40 {
            let _ = e.ret(ThreadId::MAIN, s(1), f(1), f(1));
        }
        let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        let (snap, _) = e.sample(ThreadId::MAIN);
        assert_eq!(snap.id, 0);
        assert_eq!(snap.cc_depth(), 0);
    }

    #[test]
    fn hot_edge_gets_encoding_zero_after_reencode() {
        // Disable automatic triggers; this test drives re-encoding manually
        // to control exactly what heat it sees.
        let cfg = DacceConfig {
            edge_threshold: usize::MAX,
            min_events_between_reencodes: u64::MAX,
            sample_ring: 64,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        // Two callers of f3: site 1 (from f1, hot) and site 2 (from f2).
        // Cold path once.
        let _ = e.call(ThreadId::MAIN, s(3), f(0), f(2), CallDispatch::Direct, false);
        let _ = e.call(ThreadId::MAIN, s(2), f(2), f(3), CallDispatch::Direct, false);
        let _ = e.ret(ThreadId::MAIN, s(2), f(2), f(3));
        let _ = e.ret(ThreadId::MAIN, s(3), f(0), f(2));
        // Hot path f0 -> f1 -> f3, exercised and sampled many times.
        for _ in 0..30 {
            let _ = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
            let _ = e.call(ThreadId::MAIN, s(1), f(1), f(3), CallDispatch::Direct, false);
            let _ = e.sample(ThreadId::MAIN);
            let _ = e.ret(ThreadId::MAIN, s(1), f(1), f(3));
            let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        }
        let _ = e.reencode();
        assert_eq!(e.stats().reencodes, 1);
        // After re-encoding with heat ordering, the hot edge f1->f3 must be
        // encoded 0 and the cold edge f2->f3 must be encoded 1.
        let dict = e.dicts().latest().unwrap();
        let hot = dict.get_edge(s(1), f(3)).unwrap();
        let cold = dict.get_edge(s(2), f(3)).unwrap();
        assert_eq!(hot.encoding, 0, "hot edge must be free");
        assert_eq!(cold.encoding, 1, "cold edge pays");
    }
}
