//! Adaptive re-encoding (§4 of the paper) — engine orchestration.
//!
//! Re-encoding is triggered when (1) enough new call edges accumulated,
//! (2) the frequently invoked call paths changed, or (3) the `ccStack` is
//! accessed too frequently. The trigger evaluation and the graph-side core
//! (heat derivation, back-edge re-classification, encoding, dictionary
//! freeze under an incremented `gTimeStamp`, site re-patching) live in
//! [`crate::shared::SharedState`]; this module adds the *thread-state*
//! half on top for the engine, which owns every context: decode each live
//! thread under the old dictionary, run the shared core, then replay each
//! decoded path under the new patches so the state looks as if the new
//! instrumentation had been in place from the start (the paper rewrites
//! return addresses on the machine stacks — see `DESIGN.md`). The
//! concurrent [`crate::Tracker`] runs the same shared core but regenerates
//! thread states lazily, each thread migrating itself at its next epoch
//! check.

use dacce_program::{ContextPath, ThreadId};

use crate::decode::decode_thread;
use crate::engine::DacceEngine;
use crate::fastpath;
use crate::shared::{LineageReencode, ReencodeOutcome};

impl DacceEngine {
    /// Checks the three §4 triggers and re-encodes when one fires. Returns
    /// the cost charged (0 when nothing happened).
    pub(crate) fn maybe_reencode(&mut self) -> u64 {
        if !self.shared.reencode_check_due() {
            return 0;
        }
        let (shared, threads) = (&mut self.shared, &self.threads);
        let live = || threads.values().map(|c| c.cc.ops()).sum::<u64>();
        if shared.should_reencode(&live) {
            self.reencode()
        } else {
            0
        }
    }

    /// The re-encoding procedure. Returns the cost charged.
    ///
    /// Attached (non-diverged) instances route through the shared lineage:
    /// if another tenant already published a newer generation it is
    /// adopted instead of re-encoding locally, and a locally applied
    /// re-encode is published for every other attached tenant.
    pub(crate) fn reencode(&mut self) -> u64 {
        // Decode every live thread's state under the *old* dictionary
        // before anything changes.
        let decoded = self.decode_live_threads();
        let old_ts = self.shared.ts.raw();
        let (applied, cost) = match self.shared.reencode_via_lineage() {
            LineageReencode::Adopted => (true, 0),
            LineageReencode::Local(ReencodeOutcome::Applied, cost) => (true, cost),
            LineageReencode::Local(ReencodeOutcome::Overflowed, cost) => (false, cost),
        };

        if applied {
            self.replay_live_threads(decoded, old_ts);
        }

        let live = self.live_thread_ccops();
        self.shared.reset_triggers(live);
        cost
    }

    /// Adopts a newer generation published into this engine's shared
    /// lineage, if one exists, migrating every live thread eagerly (the
    /// engine has no lazy snapshot path). Returns `true` on adoption.
    pub fn poll_lineage(&mut self) -> bool {
        let stale =
            self.shared.lineage.as_ref().is_some_and(|l| {
                !self.shared.diverged && l.generation() != self.shared.lineage_gen
            });
        if !stale {
            return false;
        }
        let decoded = self.decode_live_threads();
        let old_ts = self.shared.ts.raw();
        if !self.shared.adopt_pending_lineage() {
            return false;
        }
        self.replay_live_threads(decoded, old_ts);
        true
    }

    /// Decodes every live thread's state under the current (pre-change)
    /// dictionary, in deterministic thread order.
    fn decode_live_threads(&mut self) -> Vec<(ThreadId, ContextPath)> {
        let old_dict = self
            .shared
            .dicts
            .get_arc(self.shared.ts)
            .expect("current dictionary recorded");
        let mut decoded: Vec<(ThreadId, ContextPath)> = Vec::new();
        let tids: Vec<ThreadId> = {
            let mut v: Vec<ThreadId> = self.threads.keys().copied().collect();
            v.sort_unstable();
            v
        };
        for tid in tids {
            let ctx = &self.threads[&tid];
            match decode_thread(
                &old_dict,
                ctx.id,
                ctx.current,
                ctx.root,
                ctx.cc.entries(),
                &self.shared.site_owner,
            ) {
                Ok(path) => decoded.push((tid, path)),
                Err(_) => {
                    // Engine bug; keep the stale state and surface it.
                    self.shared.stats.decode_errors += 1;
                }
            }
        }
        decoded
    }

    /// Regenerates every thread's id/ccStack/shadow under the new
    /// encodings after an applied re-encode or a lineage adoption.
    fn replay_live_threads(&mut self, decoded: Vec<(ThreadId, ContextPath)>, old_ts: u32) {
        let new_ts = self.shared.ts.raw();
        for (tid, path) in decoded {
            if let Some(ctx) = self.threads.get_mut(&tid) {
                fastpath::replay(&self.shared, ctx, &path);
                self.shared.obs.on_migration();
                if self.shared.obs_writer.enabled() {
                    self.shared.obs_writer.migration(tid.raw(), old_ts, new_ts);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use dacce_program::runtime::CallDispatch;
    use dacce_program::{CostModel, ThreadId};

    use dacce_callgraph::{CallSiteId, FunctionId};

    use crate::config::DacceConfig;
    use crate::engine::DacceEngine;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    /// An engine that re-encodes eagerly (tiny thresholds, no cool-down).
    fn eager_engine() -> DacceEngine {
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        e
    }

    #[test]
    fn edge_threshold_triggers_reencode() {
        let mut e = eager_engine();
        let _ = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        assert_eq!(e.stats().reencodes, 0);
        let _ = e.call(
            ThreadId::MAIN,
            s(1),
            f(1),
            f(2),
            CallDispatch::Direct,
            false,
        );
        assert_eq!(e.stats().reencodes, 1, "second new edge fires trigger 1");
        assert_eq!(e.timestamp().raw(), 1);
        assert_eq!(e.dicts().len(), 2);
    }

    #[test]
    fn reencode_regenerates_live_thread_state() {
        let mut e = eager_engine();
        let _ = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        let _ = e.call(
            ThreadId::MAIN,
            s(1),
            f(1),
            f(2),
            CallDispatch::Direct,
            false,
        );
        // Re-encoding happened with two active frames; both edges are now
        // encoded with delta 0 (single incoming each), so the regenerated
        // state is id = 0 with an empty ccStack.
        let (snap, _) = e.sample(ThreadId::MAIN);
        assert_eq!(snap.id, 0);
        assert_eq!(snap.cc_depth(), 0);
        // And it still decodes to the true path.
        let path = e.decode(&snap).unwrap();
        let funcs: Vec<FunctionId> = path.0.iter().map(|p| p.func).collect();
        assert_eq!(funcs, vec![f(0), f(1), f(2)]);
        // Unwinding restores the clean state under the new encoding.
        let _ = e.ret(ThreadId::MAIN, s(1), f(1), f(2));
        let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        let (snap, _) = e.sample(ThreadId::MAIN);
        assert_eq!(snap.id, 0);
        assert_eq!(snap.cc_depth(), 0);
    }

    #[test]
    fn samples_recorded_before_reencode_still_decode() {
        let mut e = eager_engine();
        let _ = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        let (old_snap, _) = e.sample(ThreadId::MAIN);
        assert_eq!(old_snap.ts.raw(), 0);
        // Trigger a re-encode.
        let _ = e.call(
            ThreadId::MAIN,
            s(1),
            f(1),
            f(2),
            CallDispatch::Direct,
            false,
        );
        assert_eq!(e.timestamp().raw(), 1);
        // The old sample decodes against dictionary 0.
        let path = e.decode(&old_snap).unwrap();
        let funcs: Vec<FunctionId> = path.0.iter().map(|p| p.func).collect();
        assert_eq!(funcs, vec![f(0), f(1)]);
    }

    #[test]
    fn no_reencoding_config_never_reencodes() {
        let mut e = DacceEngine::new(DacceConfig::no_reencoding(), CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        for i in 1..40u32 {
            let _ = e.call(
                ThreadId::MAIN,
                s(i),
                f(i - 1),
                f(i),
                CallDispatch::Direct,
                false,
            );
        }
        assert_eq!(e.stats().reencodes, 0);
        assert_eq!(e.timestamp().raw(), 0);
        // Everything is on the ccStack.
        let (snap, _) = e.sample(ThreadId::MAIN);
        assert_eq!(snap.cc_depth(), 39);
        let path = e.decode(&snap).unwrap();
        assert_eq!(path.depth(), 40);
    }

    #[test]
    fn recursion_gets_compressed_after_reencode() {
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            compression_min_heat: 1,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        // Build recursion: main -> rec -> rec -> ... The self edge is
        // discovered, re-encoding classifies it as a back edge, and (heat
        // permitting) compresses it.
        let _ = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        for _ in 0..40 {
            let _ = e.call(
                ThreadId::MAIN,
                s(1),
                f(1),
                f(1),
                CallDispatch::Direct,
                false,
            );
        }
        assert!(e.stats().reencodes >= 1);
        let (snap, _) = e.sample(ThreadId::MAIN);
        // Deep self-recursion with identical state compresses into very few
        // physical entries.
        assert!(
            snap.cc_depth() <= 3,
            "compressed depth {} too large",
            snap.cc_depth()
        );
        let path = e.decode(&snap).unwrap();
        assert_eq!(path.depth(), 42, "logical depth preserved");
        // Unwind everything; state must return to clean.
        for _ in 0..40 {
            let _ = e.ret(ThreadId::MAIN, s(1), f(1), f(1));
        }
        let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        let (snap, _) = e.sample(ThreadId::MAIN);
        assert_eq!(snap.id, 0);
        assert_eq!(snap.cc_depth(), 0);
    }

    #[test]
    fn hot_edge_gets_encoding_zero_after_reencode() {
        // Disable automatic triggers; this test drives re-encoding manually
        // to control exactly what heat it sees.
        let cfg = DacceConfig {
            edge_threshold: usize::MAX,
            min_events_between_reencodes: u64::MAX,
            sample_ring: 64,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        // Two callers of f3: site 1 (from f1, hot) and site 2 (from f2).
        // Cold path once.
        let _ = e.call(
            ThreadId::MAIN,
            s(3),
            f(0),
            f(2),
            CallDispatch::Direct,
            false,
        );
        let _ = e.call(
            ThreadId::MAIN,
            s(2),
            f(2),
            f(3),
            CallDispatch::Direct,
            false,
        );
        let _ = e.ret(ThreadId::MAIN, s(2), f(2), f(3));
        let _ = e.ret(ThreadId::MAIN, s(3), f(0), f(2));
        // Hot path f0 -> f1 -> f3, exercised and sampled many times.
        for _ in 0..30 {
            let _ = e.call(
                ThreadId::MAIN,
                s(0),
                f(0),
                f(1),
                CallDispatch::Direct,
                false,
            );
            let _ = e.call(
                ThreadId::MAIN,
                s(1),
                f(1),
                f(3),
                CallDispatch::Direct,
                false,
            );
            let _ = e.sample(ThreadId::MAIN);
            let _ = e.ret(ThreadId::MAIN, s(1), f(1), f(3));
            let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        }
        let _ = e.reencode();
        assert_eq!(e.stats().reencodes, 1);
        // After re-encoding with heat ordering, the hot edge f1->f3 must be
        // encoded 0 and the cold edge f2->f3 must be encoded 1.
        let dict = e.dicts().latest().unwrap();
        let hot = dict.get_edge(s(1), f(3)).unwrap();
        let cold = dict.get_edge(s(2), f(3)).unwrap();
        assert_eq!(hot.encoding, 0, "hot edge must be free");
        assert_eq!(cold.encoding, 1, "cold edge pays");
    }
}
