//! Engine statistics backing Table 1 and Figures 9/10 of the paper.

/// One point of the Figure 9 time series: graph size and `maxID` right
/// after a re-encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgressPoint {
    /// Call events executed when the snapshot was taken.
    pub calls: u64,
    /// Encoded nodes.
    pub nodes: usize,
    /// Encoded edges.
    pub edges: usize,
    /// `maxID` of the new encoding.
    pub max_id: u64,
}

/// Counters accumulated by the DACCE engine over one run.
#[derive(Clone, Debug, Default)]
pub struct DacceStats {
    /// Dynamic call events processed.
    pub calls: u64,
    /// Runtime-handler traps (first invocations).
    pub traps: u64,
    /// Re-encoding processes triggered (`gTS` column of Table 1).
    pub reencodes: u64,
    /// Total cost units spent re-encoding (`costs` column of Table 1).
    pub reencode_cost: u64,
    /// ccStack operations across all threads (`ccStack/s` numerator).
    pub ccstack_ops: u64,
    /// `TcStack` operations across all threads.
    pub tcstack_ops: u64,
    /// Samples recorded.
    pub samples: u64,
    /// ccStack depth observed at each sample (Figure 10 raw data).
    pub cc_depths: Vec<u32>,
    /// Figure 9 time series (one point per re-encode, plus the initial one).
    pub progress: Vec<ProgressPoint>,
    /// Largest `maxID` over all encodings of the run (Table 1's MaxID).
    pub max_max_id: u64,
    /// Compressed-recursion hits (top-entry counter increments).
    pub compress_hits: u64,
    /// Indirect chains converted to hash tables (§3.2, Figure 4).
    pub hash_conversions: u64,
    /// Samples whose decode failed (must stay 0; anything else is a bug).
    pub decode_errors: u64,
    /// Main-loop restarts that found a dirty encoding state (only possible
    /// with broken-tail-call ablation; must stay 0 otherwise).
    pub unbalanced_resets: u64,
    /// Re-encoding aborted because the encoding would overflow 64 bits.
    pub overflow_aborts: u64,
}

impl DacceStats {
    /// Mean ccStack depth over all samples (Table 1's `depth` column).
    pub fn mean_cc_depth(&self) -> f64 {
        if self.cc_depths.is_empty() {
            return 0.0;
        }
        self.cc_depths.iter().map(|&d| d as f64).sum::<f64>() / self.cc_depths.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_cc_depth_of_no_samples_is_zero() {
        assert_eq!(DacceStats::default().mean_cc_depth(), 0.0);
    }

    #[test]
    fn mean_cc_depth_averages() {
        let mut s = DacceStats::default();
        s.cc_depths = vec![0, 2, 4];
        assert!((s.mean_cc_depth() - 2.0).abs() < 1e-12);
    }
}
