//! Engine statistics backing Table 1 and Figures 9/10 of the paper.

/// One point of the Figure 9 time series: graph size and `maxID` right
/// after a re-encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgressPoint {
    /// Call events executed when the snapshot was taken.
    pub calls: u64,
    /// Encoded nodes.
    pub nodes: usize,
    /// Encoded edges.
    pub edges: usize,
    /// `maxID` of the new encoding.
    pub max_id: u64,
}

/// Degradation bookkeeping: which graceful-degradation paths the run
/// took and how often. All-zero (and `active == false`) on a healthy
/// run; the fault-injection layer ([`crate::fault::FaultPlan`]) forces
/// each path deterministically so CI can prove the counters move and the
/// run stays sound.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradedState {
    /// True once the engine gave up re-encoding for good (retry budget
    /// exhausted or genuine id-space exhaustion) and runs the affected
    /// subgraph in trap-everything mode.
    pub active: bool,
    /// Functions demoted to trap-everything: callees of edges discovered
    /// after degradation activated (sorted, deduplicated raw ids). They
    /// stay decodable through the sub-path `[maxID+1, 2*maxID+1]`
    /// mechanism — only ever pushed, never encoded.
    pub trap_nodes: Vec<u32>,
    /// Traps taken on degraded edges after degradation activated.
    pub degraded_traps: u64,
    /// Re-encode attempts re-armed after an abort (generation rollback +
    /// extra backoff).
    pub reencode_retries: u64,
    /// ccStack watermark-shedding events across all threads.
    pub cc_spill_events: u64,
    /// Greatest number of ccStack entries resident in any thread's heap
    /// spill region.
    pub cc_spilled_peak: u64,
    /// Slow-path lock acquisitions that found the lock poisoned and
    /// recovered (poison cleared, snapshot revalidated).
    pub lock_poisonings: u64,
    /// Dispatch-table slot allocations refused by the injected cap; each
    /// leaves a site permanently on the trap path.
    pub slot_failures: u64,
    /// Malformed (unbalanced) `run_batch` windows degraded to partial
    /// progress instead of a thread abort.
    pub batch_errors: u64,
}

impl DegradedState {
    /// True when any degradation path was taken at least once.
    #[must_use]
    pub fn any(&self) -> bool {
        self.active
            || !self.trap_nodes.is_empty()
            || self.degraded_traps > 0
            || self.reencode_retries > 0
            || self.cc_spill_events > 0
            || self.lock_poisonings > 0
            || self.slot_failures > 0
            || self.batch_errors > 0
    }

    /// Records `node` as demoted to trap-everything (keeps the list
    /// sorted and deduplicated).
    pub fn note_trap_node(&mut self, node: u32) {
        if let Err(pos) = self.trap_nodes.binary_search(&node) {
            self.trap_nodes.insert(pos, node);
        }
    }
}

/// Counters accumulated by the DACCE engine over one run.
#[derive(Clone, Debug, Default)]
pub struct DacceStats {
    /// Dynamic call events processed.
    pub calls: u64,
    /// Runtime-handler traps (first invocations).
    pub traps: u64,
    /// Re-encoding processes triggered (`gTS` column of Table 1).
    pub reencodes: u64,
    /// Total cost units spent re-encoding (`costs` column of Table 1).
    pub reencode_cost: u64,
    /// ccStack operations across all threads (`ccStack/s` numerator).
    pub ccstack_ops: u64,
    /// `TcStack` operations across all threads.
    pub tcstack_ops: u64,
    /// Samples recorded.
    pub samples: u64,
    /// Continuous-profiler samples captured (deterministic stride).
    pub profiler_samples: u64,
    /// Total weight of profiler samples — the call events they stand for.
    pub profiler_sample_weight: u64,
    /// ccStack depth observed at each sample (Figure 10 raw data).
    pub cc_depths: Vec<u32>,
    /// Figure 9 time series (one point per re-encode, plus the initial one).
    pub progress: Vec<ProgressPoint>,
    /// Largest `maxID` over all encodings of the run (Table 1's MaxID).
    pub max_max_id: u64,
    /// Compressed-recursion hits (top-entry counter increments).
    pub compress_hits: u64,
    /// Indirect chains converted to hash tables (§3.2, Figure 4).
    pub hash_conversions: u64,
    /// Samples whose decode failed (must stay 0; anything else is a bug).
    pub decode_errors: u64,
    /// Main-loop restarts that found a dirty encoding state (only possible
    /// with broken-tail-call ablation; must stay 0 otherwise).
    pub unbalanced_resets: u64,
    /// Re-encoding aborted because the encoding would overflow 64 bits.
    pub overflow_aborts: u64,
    /// Indirect-call inline-cache hits (tracker fast path only).
    pub icache_hits: u64,
    /// Indirect-call inline-cache misses (tracker fast path only).
    pub icache_misses: u64,
    /// Superop windows executed as memoized net effects (batched fast
    /// path only).
    pub superop_hits: u64,
    /// Superop probes that found candidates for a site but fell back to
    /// the per-event loop (trace mismatch or a runtime guard).
    pub superop_misses: u64,
    /// Call/return events covered by superop hits (the events the
    /// per-event loop never had to execute).
    pub superop_events: u64,
    /// Superops compiled into the latest published snapshot (gauge).
    pub superop_compiled: u64,
    /// Compiled superops dropped because the dispatch state moved (the
    /// epoch-invalidation rule; each recompile counts the table it
    /// replaced).
    pub superop_invalidations: u64,
    /// Snapshot publications (the denominator of
    /// invalidations-per-republish).
    pub superop_republishes: u64,
    /// Shared-lineage generations adopted instead of re-encoding locally
    /// (fleet tenants attached to a shared encoding).
    pub lineage_adoptions: u64,
    /// Locally applied re-encodings published into the shared lineage.
    pub lineage_publishes: u64,
    /// 1 once this instance diverged (copy-on-write) off its lineage.
    pub lineage_divergences: u64,
    /// Degradation bookkeeping (all-zero on a healthy run).
    pub degraded: DegradedState,
}

impl DacceStats {
    /// Mean ccStack depth over all samples (Table 1's `depth` column).
    pub fn mean_cc_depth(&self) -> f64 {
        if self.cc_depths.is_empty() {
            return 0.0;
        }
        self.cc_depths.iter().map(|&d| f64::from(d)).sum::<f64>() / self.cc_depths.len() as f64
    }

    /// Folds one thread's shard into the aggregate (stats drain).
    pub fn absorb_shard(&mut self, shard: &StatsShard) {
        self.calls += shard.calls;
        self.samples += shard.samples;
        self.profiler_samples += shard.profiler_samples;
        self.profiler_sample_weight += shard.profiler_sample_weight;
        self.compress_hits += shard.compress_hits;
        self.decode_errors += shard.decode_errors;
        self.icache_hits += shard.icache_hits;
        self.icache_misses += shard.icache_misses;
        self.superop_hits += shard.superop_hits;
        self.superop_misses += shard.superop_misses;
        self.superop_events += shard.superop_events;
        self.degraded.batch_errors += shard.batch_errors;
        self.cc_depths.extend_from_slice(&shard.cc_depths);
    }
}

/// Per-thread statistics shard.
///
/// The concurrent tracker's fast paths never touch shared counters: each
/// thread accumulates into its own shard (behind its own uncontended slot
/// lock) and the aggregate is assembled only when someone drains stats,
/// via [`DacceStats::absorb_shard`].
#[derive(Clone, Debug, Default)]
pub struct StatsShard {
    /// Dynamic call events executed by this thread.
    pub calls: u64,
    /// Samples this thread recorded.
    pub samples: u64,
    /// Continuous-profiler samples this thread captured.
    pub profiler_samples: u64,
    /// Total weight of this thread's profiler samples.
    pub profiler_sample_weight: u64,
    /// Compressed-recursion hits on this thread's ccStack.
    pub compress_hits: u64,
    /// Lazy-migration decodes that failed (must stay 0).
    pub decode_errors: u64,
    /// Indirect-call inline-cache hits on this thread.
    pub icache_hits: u64,
    /// Indirect-call inline-cache misses on this thread.
    pub icache_misses: u64,
    /// Superop windows this thread executed as memoized net effects.
    pub superop_hits: u64,
    /// Superop probes this thread fell back to the per-event loop on.
    pub superop_misses: u64,
    /// Events covered by this thread's superop hits.
    pub superop_events: u64,
    /// Unbalanced `run_batch` windows this thread degraded gracefully.
    pub batch_errors: u64,
    /// ccStack depth at each of this thread's samples.
    pub cc_depths: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_cc_depth_of_no_samples_is_zero() {
        assert_eq!(DacceStats::default().mean_cc_depth(), 0.0);
    }

    #[test]
    fn mean_cc_depth_averages() {
        let s = DacceStats {
            cc_depths: vec![0, 2, 4],
            ..DacceStats::default()
        };
        assert!((s.mean_cc_depth() - 2.0).abs() < 1e-12);
    }
}
