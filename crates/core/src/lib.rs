//! # DACCE — Dynamic and Adaptive Calling Context Encoding
//!
//! A from-scratch reproduction of Li, Wang, Wu, Hsu and Xu, *Dynamic and
//! Adaptive Calling Context Encoding* (CGO 2014). DACCE encodes the calling
//! context of every thread into a single integer `id` plus a small auxiliary
//! stack, by instrumenting call sites with add/subtract operations — and,
//! unlike static encoders such as PCCE, it discovers the call graph at
//! runtime, works on incomplete graphs, and adapts its encodings to the
//! program's observed behaviour.
//!
//! ## Architecture
//!
//! * [`engine::DacceEngine`] — the core: dynamic call graph, per-site patch
//!   states (the "generated code"), per-thread contexts, versioned decode
//!   dictionaries, the runtime handler (§3) and adaptive re-encoding (§4).
//! * [`decode`] — Algorithm 1, including compressed-recursion expansion and
//!   thread-spawn chaining.
//! * [`runtime::DacceRuntime`] — adapter driving the engine from the
//!   `dacce-program` interpreter (the evaluation vehicle).
//! * [`tracker::Tracker`] — an embeddable API for instrumenting real Rust
//!   programs: RAII call guards, thread-local contexts, sampling and
//!   decoding (the analog of preloading `dacce.so`).
//!
//! ## Quick example
//!
//! ```
//! use dacce::tracker::Tracker;
//!
//! let tracker = Tracker::new();
//! let main_fn = tracker.define_function("main");
//! let work_fn = tracker.define_function("work");
//! let site = tracker.define_call_site();
//!
//! let thread = tracker.register_thread(main_fn);
//! {
//!     let _guard = thread.call(site, work_fn);
//!     let ctx = thread.sample();
//!     let path = tracker.decode(&ctx).expect("decodes");
//!     assert_eq!(tracker.format_path(&path), "main -> work");
//! }
//! ```

pub mod ccstack;
pub mod config;
pub mod context;
pub mod decode;
pub(crate) mod dispatch;
pub mod engine;
pub mod export;
pub(crate) mod fastpath;
pub mod fault;
pub mod fragment;
pub mod lineage;
pub mod observe;
pub mod patch;
pub mod profile;
pub mod reencode;
pub mod runtime;
pub(crate) mod shared;
pub mod stats;
pub mod superop;
pub mod sync;
pub mod thread;
pub mod tracker;
pub mod verify;
pub mod warm;

pub use ccstack::{CcEntry, CcStack};
pub use config::{CompressionMode, DacceConfig};
pub use context::{EncodedContext, SpawnLink};
pub use decode::{decode_full, decode_thread, DecodeError};
pub use engine::DacceEngine;
pub use export::{
    export_samples, export_state, export_tracker_state, import, DispatchKind, DispatchRecord,
    ImportError, OfflineDecoder, SuperOpRecord,
};
pub use fault::FaultPlan;
pub use fragment::{
    decode_parallel, decode_serial, verify_seams, CallEffect, DecodeJournal, DecodedStream,
    FragmentError, JournalOp, JournalThread, ParallelDecodeReport, RetEffect, SeamSeed, StateSig,
    ThreadRecorder,
};
pub use lineage::EncodingLineage;
pub use observe::Observability;
pub use profile::HotContextProfile;
pub use runtime::DacceRuntime;
pub use stats::{DacceStats, DegradedState, ProgressPoint};
pub use superop::WindowOp;
pub use tracker::{BatchError, BatchErrorKind, BatchOp, TaskContext, Tracker};
pub use warm::{SeedEdge, WarmStartReport, WarmStartSeed};
