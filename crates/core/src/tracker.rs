//! Embeddable calling-context tracker for real Rust programs.
//!
//! The paper ships DACCE as a preloadable shared library that instruments
//! binaries. The equivalent for a Rust library is an explicit API: the
//! application declares its functions and call sites once, registers each
//! thread, and brackets instrumented calls with RAII guards.
//!
//! Unlike the single-lock seed implementation, the tracker is built on the
//! shared-state / per-thread split (see `DESIGN.md`, "Concurrency
//! architecture"): every thread owns its encoding context in a
//! [`ThreadHandle`] slot and executes call/return instrumentation over
//! already-encoded edges against a cached, immutable [`EncodingSnapshot`] —
//! no shared lock is touched on that path. The global [`SharedState`] lock
//! is taken only when a call site traps (new edge), when a re-encoding is
//! evaluated or applied, on thread registration, and when statistics are
//! drained. Re-encoded state reaches the other threads lazily: each one
//! notices the bumped publication epoch at its next event, decodes its own
//! context under its *old* snapshot's dictionary and replays it under the
//! new one (the rendezvous of §4, done thread-locally).
//!
//! ```
//! use dacce::tracker::Tracker;
//!
//! let tracker = Tracker::new();
//! let main_fn = tracker.define_function("main");
//! let handler = tracker.define_function("handle_request");
//! let site = tracker.define_call_site();
//!
//! let thread = tracker.register_thread(main_fn);
//! let _guard = thread.call(site, handler);
//! let ctx = thread.sample();
//! assert_eq!(tracker.format_path(&tracker.decode(&ctx)?), "main -> handle_request");
//! # Ok::<(), dacce::DecodeError>(())
//! ```

use std::fmt;
use std::sync::Arc;

use crate::sync::{protocol, AtomicU32, AtomicU64, Mutex, Ordering};

use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::CallDispatch;
use dacce_program::{ContextPath, CostModel, ThreadId};

use crate::config::DacceConfig;
use crate::context::{EncodedContext, SpawnLink};
use crate::decode::{decode_thread, DecodeError};
use crate::dispatch::CompiledDispatch;
use crate::fastpath;
use crate::lineage::EncodingLineage;
use crate::observe::{ObsWriter, Observability, Sampler};
use crate::patch::EdgeAction;
use crate::profile::HotContextProfile;
use crate::shared::{
    EncodingSnapshot, LineageReencode, ReencodeOutcome, ResolvedSite, SharedState,
};
use crate::stats::{DacceStats, StatsShard};
use crate::superop::{SuperOpProbe, WindowOp};
use crate::thread::ThreadCtx;
use crate::verify::{check_shared, check_thread};
use crate::warm::{WarmStartReport, WarmStartSeed};

/// Events a thread accumulates locally before flushing them to the shared
/// trigger counters. Bounds how stale the §4 event counts can be.
const EVENT_BATCH: u64 = 64;

/// Per-thread sample backlog capacity (circular; feeds the shared heat
/// ring from the slow path).
const SAMPLE_BACKLOG: usize = 64;

/// The encoding state one thread owns: its context, the snapshot it is
/// consistent with, and locally accumulated statistics.
#[derive(Debug)]
struct ThreadState {
    ctx: ThreadCtx,
    /// The published snapshot this context's encoding matches. `ctx` always
    /// decodes against `snap.ts`'s dictionary.
    snap: Arc<EncodingSnapshot>,
    /// Locally accumulated statistics, merged on [`Tracker::stats`].
    shard: StatsShard,
    /// Events not yet flushed to the shared trigger counters.
    batch_events: u64,
    /// `ctx.cc.ops()` value already published to `ccops_total`.
    flushed_cc_ops: u64,
    /// Inline-cache hit/miss totals already published to the obs metrics.
    flushed_icache_hits: u64,
    flushed_icache_misses: u64,
    /// Superop hit/miss totals already published to the obs metrics.
    flushed_superop_hits: u64,
    flushed_superop_misses: u64,
    /// `ctx.cc.spill_events()` value already folded into the shared
    /// degraded-state counters.
    flushed_spill_events: u64,
    /// Recent samples awaiting a slow-path flush into the shared heat ring.
    pending_samples: Vec<EncodedContext>,
    pending_pos: usize,
    /// This thread's continuous-profiler sampler (deterministic stride
    /// with per-thread jitter phase; see [`crate::observe::Sampler`]).
    sampler: Sampler,
    /// Weighted profiler samples awaiting a slow-path flush into the
    /// shared profiler ring (circular, like `pending_samples`).
    pending_profiler: Vec<(EncodedContext, u64)>,
    pending_profiler_pos: usize,
    /// This thread's journal writer (its own event ring; lock-free).
    writer: ObsWriter,
}

/// One registered thread's slot. The mutex is per-thread: uncontended in
/// correct use (only the owning thread's guards lock it on the hot path;
/// cross-thread access happens on spawn snapshots and stats drains).
#[derive(Debug)]
struct ThreadSlot {
    tid: ThreadId,
    state: Mutex<ThreadState>,
}

#[derive(Debug)]
struct TrackerInner {
    /// The shared half: call graph, patch states, dictionaries, triggers.
    /// Locked only on trap, re-encode evaluation, registration and drains.
    shared: Mutex<SharedState>,
    /// The latest published snapshot. Readers reach for it only when the
    /// epoch check fails, so this lock is uncontended in steady state.
    published: Mutex<Arc<EncodingSnapshot>>,
    /// Publication epoch; fast paths revalidate their cached snapshot with
    /// one `Acquire` load of this per event.
    epoch: AtomicU64,
    /// Events flushed by threads, not yet absorbed into `shared`.
    pending_events: AtomicU64,
    /// Monotone flushed ccStack-operation total across all threads (the
    /// "live thread ccops" input of the §4 rate trigger).
    ccops_total: AtomicU64,
    /// `pending_events` level at which a flush should bother taking the
    /// shared lock to evaluate triggers; `u64::MAX` when re-encoding is off.
    trigger_check_at: AtomicU64,
    /// Times a call/return event acquired the shared lock (trap slow paths
    /// and batched trigger evaluations). The encoded-edge steady state
    /// keeps this flat — see [`Tracker::slow_path_locks`].
    slow_locks: AtomicU64,
    names: Mutex<Vec<String>>,
    next_site: AtomicU32,
    next_tid: AtomicU32,
    attached: AtomicU32,
    registry: Mutex<Vec<Arc<ThreadSlot>>>,
    /// Observability handle shared with `shared` (same journal + metrics);
    /// kept outside the mutex so thread registration and metric hooks on
    /// the fast path never take the shared lock for it.
    obs: Observability,
}

// Lock order (outer to inner): slot -> shared -> published/registry/names.
// `published` and `registry` are leaves: no other lock is ever acquired
// while holding them.

impl TrackerInner {
    /// Publishes the current shared encoding under a bumped epoch and
    /// returns the fresh snapshot. Caller holds the shared lock.
    fn republish(&self, sh: &mut SharedState) -> Arc<EncodingSnapshot> {
        sh.epoch += 1;
        let snap = Arc::new(sh.snapshot());
        *self.published.lock() = Arc::clone(&snap);
        self.epoch.store(sh.epoch, protocol::EPOCH_PUBLISH);
        snap
    }

    /// Moves flushed event counts into the shared trigger state.
    fn absorb_pending(&self, sh: &mut SharedState) {
        let e = self.pending_events.swap(0, Ordering::Relaxed);
        if e > 0 {
            sh.note_events(e);
        }
    }

    /// Re-arms the flush threshold: how many more events must flow before a
    /// §4 trigger could possibly fire. Until then, no thread bothers taking
    /// the shared lock from the batched fast path. Trigger 1 (new edges)
    /// only changes state on a trap, and the trap slow path evaluates the
    /// triggers itself — so between traps, only the re-encoding gate and
    /// the trigger 2/3 *window boundaries* can newly open.
    fn update_trigger_mark(&self, sh: &SharedState) {
        let mark = if sh.config.reencode_enabled && !sh.reencode_overflowed {
            let gate = sh.cur_min_events.saturating_sub(sh.events_since_reencode);
            if sh.new_edges >= sh.config.edge_threshold {
                // Trigger 1 is already pending; fire as soon as the gate
                // opens.
                gate.max(EVENT_BATCH)
            } else {
                let next_boundary = sh
                    .window_start_events
                    .saturating_add(sh.config.ccstack_rate_window)
                    .min(sh.next_hot_check)
                    .saturating_sub(sh.events);
                gate.max(next_boundary).max(EVENT_BATCH)
            }
        } else {
            u64::MAX
        };
        self.trigger_check_at.store(mark, Ordering::Relaxed);
    }

    /// Counts one slow-path lock acquisition and — when the fault plan
    /// names this acquisition — simulates a *poisoned* lock. The vendored
    /// mutex has no real poisoning (it cannot observe a panicking holder),
    /// so the fault is injected at the acquisition counter: the current
    /// holder finds the lock poisoned, records the event, and recovers by
    /// clearing the poison and republishing the encoding so every thread
    /// revalidates its cached snapshot against state of unknown freshness.
    /// Returns whether the caller must republish to complete recovery.
    fn note_slow_lock(&self, sh: &mut SharedState) -> bool {
        let n = self.slow_locks.fetch_add(1, Ordering::Relaxed);
        if sh.config.fault.poisons_acquisition(n) {
            sh.stats.degraded.lock_poisonings += 1;
            sh.obs.on_lock_poison();
            true
        } else {
            false
        }
    }
}

/// A process-wide calling-context tracker. Cheap to clone handles out of.
/// The call graph, patch states and dictionaries are shared; per-thread
/// encoding state lives in the [`ThreadHandle`]s, and call/return over
/// already-encoded edges never touches the shared lock.
#[derive(Clone, Debug)]
pub struct Tracker {
    inner: Arc<TrackerInner>,
}

impl Default for Tracker {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracker {
    /// A tracker with default configuration.
    pub fn new() -> Self {
        Self::with_config(DacceConfig::default())
    }

    /// A tracker with explicit engine configuration.
    pub fn with_config(config: DacceConfig) -> Self {
        let initial_mark = if config.reencode_enabled {
            config.min_events_between_reencodes.max(EVENT_BATCH)
        } else {
            u64::MAX
        };
        let mut shared = SharedState::new(config, CostModel::default());
        let snap = Arc::new(shared.snapshot());
        let obs = shared.obs.clone();
        Tracker {
            inner: Arc::new(TrackerInner {
                shared: Mutex::new(shared),
                published: Mutex::new(snap),
                epoch: AtomicU64::new(0),
                pending_events: AtomicU64::new(0),
                ccops_total: AtomicU64::new(0),
                trigger_check_at: AtomicU64::new(initial_mark),
                slow_locks: AtomicU64::new(0),
                names: Mutex::new(Vec::new()),
                next_site: AtomicU32::new(0),
                next_tid: AtomicU32::new(0),
                attached: AtomicU32::new(0),
                registry: Mutex::new(Vec::new()),
                obs,
            }),
        }
    }

    /// The observability handle (event journal + metrics registry). With
    /// the `obs` feature disabled this is an inert placeholder.
    pub fn observability(&self) -> &Observability {
        &self.inner.obs
    }

    /// Declares a function and returns its id. The id and the name slot are
    /// allocated under one lock, so concurrent registrations cannot tear
    /// (an id paired with another call's name).
    pub fn define_function(&self, name: &str) -> FunctionId {
        let mut names = self.inner.names.lock();
        let id = FunctionId::new(u32::try_from(names.len()).expect("function count fits in u32"));
        names.push(name.to_string());
        id
    }

    /// The name `f` was declared with, if any.
    pub fn function_name(&self, f: FunctionId) -> Option<String> {
        self.inner.names.lock().get(f.index()).cloned()
    }

    /// Allocates a call-site id. Call once per static call location.
    pub fn define_call_site(&self) -> CallSiteId {
        CallSiteId::new(self.inner.next_site.fetch_add(1, Ordering::Relaxed))
    }

    /// Pre-seeds the tracker from a static call graph (see [`crate::warm`])
    /// and attaches `main`. Must be called before any thread registers;
    /// the first registered thread should be rooted at `main`.
    ///
    /// # Panics
    ///
    /// Panics if a thread was already registered (the seed must be loaded
    /// before any instrumentation executes).
    pub fn warm_start(&self, main: FunctionId, seed: &WarmStartSeed) -> WarmStartReport {
        let mut sh = self.inner.shared.lock();
        // Idempotent repeat: a tracker already seeded with this exact seed
        // (by content fingerprint) returns the cached report — tenant-safe
        // when several fleet registrants race to seed the same program.
        if let Some((prev, report)) = sh.warm_fingerprint {
            if prev == seed.fingerprint() {
                return report;
            }
        }
        let prev = self.inner.attached.swap(1, Ordering::Relaxed);
        assert_eq!(prev, 0, "warm_start must precede thread registration");
        sh.attach_main(main);
        let report = sh.warm_start(seed);
        self.inner.update_trigger_mark(&sh);
        let _ = self.inner.republish(&mut sh);
        report
    }

    /// A tracker attached to a shared encoding lineage: the latest
    /// published generation is adopted wholesale (graph, dictionaries,
    /// patches, warm-start state), so every edge the lineage already
    /// encodes executes without a single cold-start trap. Re-encodings the
    /// tracker applies while on the lineage are published back into it;
    /// generations published by sibling tenants are adopted lazily at the
    /// next slow path (or eagerly via [`Self::poll_lineage`]).
    pub fn with_lineage(config: DacceConfig, lineage: &EncodingLineage) -> Self {
        let tracker = Self::with_config(config);
        {
            let mut sh = tracker.inner.shared.lock();
            let state = lineage.current();
            sh.lineage = Some(lineage.clone());
            sh.adopt_lineage_state(&state);
            // The adopted state carries the founder's `main`; the first
            // register() must not attach a second one.
            tracker.inner.attached.store(1, Ordering::Relaxed);
            tracker.inner.update_trigger_mark(&sh);
            let _ = tracker.inner.republish(&mut sh);
        }
        tracker
    }

    /// Founds a shared encoding lineage from this tracker's current state,
    /// keyed by `hash` (the registering program's content hash). The
    /// tracker itself joins the lineage at generation 0; siblings attach
    /// via [`Self::with_lineage`].
    ///
    /// # Panics
    ///
    /// Panics if the tracker is already on a lineage.
    pub fn found_lineage(&self, hash: u64) -> EncodingLineage {
        let mut sh = self.inner.shared.lock();
        assert!(
            sh.lineage.is_none(),
            "tracker is already attached to a lineage"
        );
        let lineage = EncodingLineage::found(hash, sh.export_lineage_state());
        sh.lineage = Some(lineage.clone());
        sh.lineage_gen = 0;
        lineage
    }

    /// Eagerly adopts a newer generation published to this tracker's
    /// lineage by a sibling tenant, if one exists. Returns whether an
    /// adoption happened. Without polling, adoption still happens lazily
    /// on the next slow path (trap or batched trigger check).
    pub fn poll_lineage(&self) -> bool {
        let mut sh = self.inner.shared.lock();
        if sh.adopt_pending_lineage() {
            self.inner.update_trigger_mark(&sh);
            let _ = self.inner.republish(&mut sh);
            true
        } else {
            false
        }
    }

    /// Forces a re-encoding of the current graph regardless of the §4
    /// triggers — the fleet-maintenance entry point. On a shared lineage
    /// the applied encoding is published for the sibling tenants (or a
    /// generation a sibling already published is adopted instead); live
    /// threads migrate lazily at their next epoch check. Returns whether
    /// a new generation was applied or adopted.
    pub fn request_reencode(&self) -> bool {
        let mut sh = self.inner.shared.lock();
        self.inner.absorb_pending(&mut sh);
        let applied = match sh.reencode_via_lineage() {
            LineageReencode::Adopted => true,
            LineageReencode::Local(outcome, _cost) => {
                matches!(outcome, ReencodeOutcome::Applied)
            }
        };
        let live = self.inner.ccops_total.load(Ordering::Relaxed);
        sh.reset_triggers(live);
        self.inner.update_trigger_mark(&sh);
        let _ = self.inner.republish(&mut sh);
        applied
    }

    /// The lineage this tracker is attached to, if any.
    pub fn lineage(&self) -> Option<EncodingLineage> {
        self.inner.shared.lock().lineage.clone()
    }

    /// Whether this tracker has diverged from its lineage (discovered an
    /// edge the shared encoding does not cover). Diverged trackers keep
    /// running on their private copy and no longer publish or adopt.
    pub fn diverged(&self) -> bool {
        self.inner.shared.lock().diverged
    }

    /// Audits the tracker at a safe point: every live thread's context is
    /// validated against the snapshot it is encoded under (id budget,
    /// shadow-stack monotonicity, decodability to a root-to-current path),
    /// then the shared state's dictionary/patch/owner invariants are
    /// checked — the concurrent analogue of
    /// [`DacceEngine::check_invariants`](crate::DacceEngine::check_invariants).
    ///
    /// Threads may run concurrently with the audit; each slot is checked
    /// under its own lock at an event boundary.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let slots: Vec<Arc<ThreadSlot>> = self.inner.registry.lock().clone();
        for slot in slots {
            let st = slot.state.lock();
            let dict = st.snap.dicts.get(st.snap.ts).ok_or_else(|| {
                format!(
                    "{}: snapshot timestamp {} has no dictionary",
                    slot.tid, st.snap.ts
                )
            })?;
            check_thread(
                dict,
                &st.snap.site_owner,
                st.snap.max_id,
                &slot.tid.to_string(),
                &st.ctx,
            )?;
        }
        let sh = self.inner.shared.lock();
        check_shared(&sh)
    }

    /// Registers the current thread with its root function. The first
    /// registered thread initialises the tracker (its root plays `main`).
    pub fn register_thread(&self, root: FunctionId) -> ThreadHandle {
        self.register(root, None)
    }

    /// Registers a thread spawned by `parent` at `spawn_site`; the child's
    /// decoded contexts are prefixed with the parent's creation context.
    pub fn register_spawned_thread(
        &self,
        root: FunctionId,
        parent: &ThreadHandle,
        spawn_site: CallSiteId,
    ) -> ThreadHandle {
        let link = SpawnLink {
            site: spawn_site,
            parent: Box::new(parent.current_context()),
        };
        self.register(root, Some(link))
    }

    fn register(&self, root: FunctionId, spawn: Option<SpawnLink>) -> ThreadHandle {
        let tid = ThreadId::new(self.inner.next_tid.fetch_add(1, Ordering::Relaxed));
        let mut sh = self.inner.shared.lock();
        if self.inner.attached.fetch_add(1, Ordering::Relaxed) == 0 {
            sh.attach_main(root);
        }
        sh.register_root(root);
        let snap = self.inner.republish(&mut sh);
        let mut ctx = ThreadCtx::new(root, spawn);
        ctx.cc.set_spill_limit(sh.config.fault.cc_spill_limit);
        let slot = Arc::new(ThreadSlot {
            tid,
            state: Mutex::new(ThreadState {
                ctx,
                snap,
                shard: StatsShard::default(),
                batch_events: 0,
                flushed_cc_ops: 0,
                flushed_icache_hits: 0,
                flushed_icache_misses: 0,
                flushed_superop_hits: 0,
                flushed_superop_misses: 0,
                flushed_spill_events: 0,
                pending_samples: Vec::new(),
                pending_pos: 0,
                // Per-thread seed: same stride, different jitter phase, so
                // the fleet of threads never samples in lockstep.
                sampler: Sampler::new(
                    sh.config.profiler_stride,
                    sh.config.profiler_seed ^ u64::from(tid.raw()),
                    sh.config.profiler_budget,
                ),
                pending_profiler: Vec::new(),
                pending_profiler_pos: 0,
                writer: self.inner.obs.writer(tid.raw()),
            }),
        });
        self.inner.registry.lock().push(Arc::clone(&slot));
        drop(sh);
        ThreadHandle {
            inner: Arc::clone(&self.inner),
            slot,
        }
    }

    /// Decodes an encoded context captured by [`ThreadHandle::sample`].
    /// Reads the published snapshot — never blocks on the shared state.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the context is inconsistent with the
    /// recorded dictionaries (indicates misuse such as unbalanced guards).
    pub fn decode(&self, ctx: &EncodedContext) -> Result<ContextPath, DecodeError> {
        let snap = Arc::clone(&self.inner.published.lock());
        snap.decode(ctx)
    }

    /// Renders a decoded path as `main -> f -> g` using the declared names.
    pub fn format_path(&self, path: &ContextPath) -> String {
        let names = self.inner.names.lock();
        path.0
            .iter()
            .map(|s| {
                names
                    .get(s.func.index())
                    .cloned()
                    .unwrap_or_else(|| format!("{}", s.func))
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// How many call/return events have taken the shared lock so far: site
    /// traps (first execution of a call edge) plus batched re-encoding
    /// trigger evaluations. In encoded-edge steady state this stays flat —
    /// the per-event fast path is lock-free with respect to shared state.
    pub fn slow_path_locks(&self) -> u64 {
        self.inner.slow_locks.load(Ordering::Relaxed)
    }

    /// Installs superop candidate windows — balanced call/return traces
    /// mined from recorded batches (see the `workloads` miner). Each
    /// window is compiled against the current encoding into a memoized
    /// net effect and published with the next snapshot; the set replaces
    /// any previously installed candidates. Republishes immediately so
    /// attached threads pick the table up at their next epoch check.
    /// Returns the number of superops that compiled (windows crossing a
    /// trap site, a tail-call wrap or an undecidable compressed-recursion
    /// compare are refused and simply keep running on the per-event loop).
    pub fn install_superops(&self, windows: &[Vec<WindowOp>]) -> usize {
        let mut sh = self.inner.shared.lock();
        sh.install_superop_candidates(windows);
        let snap = self.inner.republish(&mut sh);
        snap.superops.len()
    }

    /// Runs `f` with the shared state locked, absorbing pending per-thread
    /// deltas first. Crate-internal escape hatch for exporters.
    pub(crate) fn with_shared<R>(&self, f: impl FnOnce(&SharedState) -> R) -> R {
        let mut sh = self.inner.shared.lock();
        self.inner.absorb_pending(&mut sh);
        f(&sh)
    }

    /// Tracker statistics: the shared counters plus every thread's local
    /// shard and live ccStack/TcStack operation counts.
    pub fn stats(&self) -> DacceStats {
        let slots: Vec<Arc<ThreadSlot>> = self.inner.registry.lock().clone();
        let mut out = {
            let mut sh = self.inner.shared.lock();
            self.inner.absorb_pending(&mut sh);
            sh.stats.clone()
        };
        for slot in slots {
            let mut guard = slot.state.lock();
            let st = &mut *guard;
            if !st.pending_samples.is_empty() || !st.pending_profiler.is_empty() {
                let mut sh = self.inner.shared.lock();
                for s in st.pending_samples.drain(..) {
                    sh.push_ring(&s);
                }
                st.pending_pos = 0;
                for (s, w) in st.pending_profiler.drain(..) {
                    sh.push_profiler_ring(&s, w);
                }
                st.pending_profiler_pos = 0;
            }
            flush_icache_obs(&self.inner.obs, st);
            flush_superop_obs(&self.inner.obs, st);
            out.absorb_shard(&st.shard);
            out.ccstack_ops += st.ctx.cc.ops();
            out.tcstack_ops += st.ctx.tc_ops;
            // Spill activity not yet flushed through a slow path.
            out.degraded.cc_spill_events += st
                .ctx
                .cc
                .spill_events()
                .saturating_sub(st.flushed_spill_events);
            out.degraded.cc_spilled_peak = out
                .degraded
                .cc_spilled_peak
                .max(st.ctx.cc.spilled_peak() as u64);
        }
        out
    }

    /// The continuous profiler's aggregated hot-context profile: every
    /// thread's pending weighted samples are flushed into the shared
    /// profiler ring, which is then decoded through the versioned
    /// dictionaries. Empty when [`DacceConfig::profiler_stride`] is 0.
    pub fn profiler_profile(&self) -> HotContextProfile {
        let slots: Vec<Arc<ThreadSlot>> = self.inner.registry.lock().clone();
        for slot in slots {
            let mut guard = slot.state.lock();
            let st = &mut *guard;
            if !st.pending_profiler.is_empty() {
                let mut sh = self.inner.shared.lock();
                for (s, w) in st.pending_profiler.drain(..) {
                    sh.push_profiler_ring(&s, w);
                }
                st.pending_profiler_pos = 0;
            }
        }
        self.inner.shared.lock().profiler_profile()
    }

    /// The flight-recorder postmortem dump captured at the first
    /// degradation trigger (degraded entry, re-encode abort, or a forced
    /// dump), if any.
    pub fn postmortem(&self) -> Option<String> {
        self.inner.shared.lock().postmortem.clone()
    }

    /// Forces a flight-recorder dump now with the given reason. The first
    /// capture wins: a later degradation will not overwrite a forced dump
    /// (nor vice versa). Returns `true` when a postmortem exists after the
    /// call — `false` only with the `obs` feature compiled out.
    pub fn force_postmortem(&self, reason: &str) -> bool {
        let mut sh = self.inner.shared.lock();
        sh.capture_postmortem(reason);
        sh.postmortem.is_some()
    }
}

/// One operation of a batched drive sequence; see
/// [`ThreadHandle::run_batch`].
#[derive(Clone, Copy, Debug)]
pub enum BatchOp {
    /// Enter a direct call from the current function through `site`.
    Call {
        /// The call site executed.
        site: CallSiteId,
        /// The callee.
        target: FunctionId,
    },
    /// Enter an indirect (function-pointer / vtable) call.
    CallIndirect {
        /// The call site executed.
        site: CallSiteId,
        /// The callee the pointer resolved to.
        target: FunctionId,
    },
    /// Return from the innermost call opened earlier in the same batch.
    Ret,
}

/// What was malformed about a [`ThreadHandle::run_batch`] sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchErrorKind {
    /// A [`BatchOp::Ret`] had no matching call earlier in the same batch.
    /// The offending op (and everything after it) was not executed.
    UnmatchedRet {
        /// Index of the unmatched return within the batch.
        index: usize,
    },
    /// The batch ended with calls still open. The dangling frames were
    /// auto-unwound so the thread lands back at a consistent boundary.
    UnclosedCalls {
        /// How many frames were still open (and auto-returned).
        open: usize,
    },
}

/// A malformed [`ThreadHandle::run_batch`] drive. The batch stopped early
/// but the thread was left at a consistent event boundary (dangling frames
/// are auto-unwound), so the handle — and every other thread — stays fully
/// usable: a bad trace degrades instead of aborting the run. `executed`
/// reports partial progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchError {
    /// What was malformed.
    pub kind: BatchErrorKind,
    /// Ops fully executed before the batch stopped.
    pub executed: usize,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            BatchErrorKind::UnmatchedRet { index } => write!(
                f,
                "batch op {index} is a Ret without a matching call ({} ops executed)",
                self.executed
            ),
            BatchErrorKind::UnclosedCalls { open } => write!(
                f,
                "batch left {open} call(s) unreturned; frames auto-unwound ({} ops executed)",
                self.executed
            ),
        }
    }
}

impl std::error::Error for BatchError {}

/// Per-thread handle; create one per OS thread via
/// [`Tracker::register_thread`]. Call/return instrumentation over
/// already-encoded edges runs entirely on this handle's own state plus a
/// cached snapshot — the shared lock is not acquired.
#[derive(Debug)]
pub struct ThreadHandle {
    inner: Arc<TrackerInner>,
    slot: Arc<ThreadSlot>,
}

impl ThreadHandle {
    /// The thread id assigned by the tracker.
    pub fn id(&self) -> ThreadId {
        self.slot.tid
    }

    /// Enters an instrumented direct call; the returned guard leaves it on
    /// drop. Guards must nest like the calls they bracket — drop them in
    /// reverse acquisition order. Beware `Vec<CallGuard>`: a vector drops
    /// its elements front-to-back, unwinding the *outermost* call first and
    /// corrupting the encoding; pop and drop instead.
    pub fn call(&self, site: CallSiteId, target: FunctionId) -> CallGuard<'_> {
        self.enter(site, target, CallDispatch::Direct)
    }

    /// Enters an instrumented indirect call (function pointer, vtable).
    pub fn call_indirect(&self, site: CallSiteId, target: FunctionId) -> CallGuard<'_> {
        self.enter(site, target, CallDispatch::Indirect)
    }

    /// Drives a balanced sequence of call/return operations in one locked
    /// section. The slot lock, the snapshot epoch revalidation and the
    /// journal gate are paid once per batch instead of once per op, and
    /// the trigger-counter flush runs once at the end — the per-op cost of
    /// an encoded edge drops to the bare instrumentation arithmetic.
    ///
    /// Semantically equivalent to bracketing every call with
    /// [`Self::call`] / [`Self::call_indirect`] guards: traps taken
    /// mid-batch run the full slow path (and may re-encode), and returns
    /// crossing a re-encoding re-resolve their action under the new
    /// generation exactly like a guard drop does. Re-encodings published
    /// by *other* threads are observed at the next batch or guard, which
    /// matches the lazy-migration semantics of the per-op path.
    ///
    /// Returns the number of ops executed — `ops.len()` on success.
    ///
    /// # Errors
    ///
    /// Returns a [`BatchError`] on a [`BatchOp::Ret`] with no matching
    /// call earlier in the same batch (execution stops before the bad op)
    /// and when the batch ends with calls still open (the dangling frames
    /// are auto-unwound — frames cannot span batch boundaries; use guards
    /// for long-lived frames). Either way the thread lands at a consistent
    /// event boundary and the handle stays usable: a malformed trace
    /// degrades instead of aborting the thread, and partial progress is
    /// reported in [`BatchError::executed`].
    pub fn run_batch(&self, ops: &[BatchOp]) -> Result<usize, BatchError> {
        let mut guard = self.slot.state.lock();
        let st = &mut *guard;
        self.refresh(st);
        let mut obs_on = st.writer.enabled();
        // Profiler hoist: `ops.len()` bounds the batch's call count, so a
        // countdown beyond it proves no sample can fire in this batch —
        // count calls in a register and advance the sampler once at the
        // end instead of ticking it per op. A disabled sampler always
        // takes the bulk path (the final skip is then a no-op).
        let profiler_bulk = !st.sampler.is_enabled() || st.sampler.remaining() > ops.len() as u64;
        let mut bulk_calls = 0u64;
        // (site, caller, callee, action, epoch) of each still-open call.
        let mut open: Vec<(CallSiteId, FunctionId, FunctionId, EdgeAction, u64)> =
            Vec::with_capacity(16);
        let mut executed = 0usize;
        let mut error: Option<BatchErrorKind> = None;
        // Superops need the bulk profiler path: a memoized window skips
        // per-call sampler ticks, which is only sound when no sample can
        // fire inside this batch anyway.
        let mut use_superops = profiler_bulk && !st.snap.superops.is_empty();
        let mut i = 0usize;
        while i < ops.len() {
            let op = ops[i];
            match op {
                BatchOp::Call { site, target } | BatchOp::CallIndirect { site, target } => {
                    if use_superops {
                        match st.snap.superops.probe(&ops[i..]) {
                            SuperOpProbe::Hit(so) => {
                                let entry_depth = st.ctx.cc.depth();
                                let peak = entry_depth + so.cc_peak;
                                // Bail to the per-event loop BEFORE applying
                                // anything when the fold would skip observable
                                // bookkeeping: per-push journal events, an
                                // armed spill limit, or a new high-water mark
                                // at/above the overflow watermark (which must
                                // fire the real overflow hook).
                                let admit = so.cc_ops == 0
                                    || !(obs_on
                                        || st.ctx.cc.spill_armed()
                                        || (peak > st.ctx.cc.max_depth()
                                            && peak as u32 >= st.writer.watermark()));
                                if admit {
                                    let len = so.window.len();
                                    st.ctx.cc.apply_bulk(so.cc_ops, peak);
                                    st.shard.calls += so.calls;
                                    st.shard.compress_hits += so.compress_hits;
                                    st.shard.superop_hits += 1;
                                    st.shard.superop_events += len as u64;
                                    st.batch_events += len as u64;
                                    bulk_calls += so.calls;
                                    executed += len;
                                    i += len;
                                    continue;
                                }
                                st.shard.superop_misses += 1;
                            }
                            SuperOpProbe::Miss => st.shard.superop_misses += 1,
                            SuperOpProbe::Cold => {}
                        }
                    }
                    let caller = st.ctx.current;
                    let (action, epoch) = match resolve_cached(st, site, target) {
                        Some(r) => {
                            let epoch = st.snap.epoch;
                            let prev_max = st.ctx.cc.max_depth();
                            let eff = fastpath::exec_call(
                                &*st.snap,
                                &mut st.ctx,
                                site,
                                target,
                                r.action,
                                r.tc_wrap,
                                false,
                            );
                            if eff.compress_hit {
                                st.shard.compress_hits += 1;
                            }
                            st.shard.calls += 1;
                            if r.action.uses_ccstack() {
                                self.note_cc_push(st, prev_max, obs_on);
                            }
                            st.batch_events += 1;
                            (r.action, epoch)
                        }
                        None => {
                            let dispatch = match op {
                                BatchOp::CallIndirect { .. } => CallDispatch::Indirect,
                                _ => CallDispatch::Direct,
                            };
                            let prev_max = st.ctx.cc.max_depth();
                            let action = self.trap_call(st, site, caller, target, dispatch);
                            if action.uses_ccstack() {
                                self.note_cc_push(st, prev_max, obs_on);
                            }
                            // The trap republished the snapshot; re-hoist
                            // the gates — journaling may have been toggled
                            // and the superop table swapped (epoch
                            // invalidation).
                            obs_on = st.writer.enabled();
                            use_superops = profiler_bulk && !st.snap.superops.is_empty();
                            (action, st.snap.epoch)
                        }
                    };
                    if profiler_bulk {
                        bulk_calls += 1;
                    } else {
                        self.profiler_tick(st, site);
                    }
                    open.push((site, caller, target, action, epoch));
                    executed += 1;
                }
                BatchOp::Ret => {
                    let Some((site, caller, callee, action, epoch)) = open.pop() else {
                        // Malformed trace: stop before the bad op; any
                        // frames opened earlier unwind below.
                        error = Some(BatchErrorKind::UnmatchedRet { index: i });
                        break;
                    };
                    let action = if st.snap.epoch == epoch {
                        action
                    } else {
                        // A trap mid-batch republished (possibly after a
                        // re-encoding that replayed our context); reverse
                        // under the current generation's action.
                        st.snap
                            .resolve(site, callee)
                            .map_or(EdgeAction::Unencoded, |r| r.action)
                    };
                    let _ = fastpath::exec_ret(&*st.snap, &mut st.ctx, site, caller, action);
                    if obs_on && action.uses_ccstack() {
                        st.writer
                            .cc_pop(self.slot.tid.raw(), st.ctx.cc.depth() as u32);
                    }
                    st.batch_events += 1;
                    executed += 1;
                }
            }
            i += 1;
        }
        // Graceful degradation: auto-unwind whatever the batch left open
        // (malformed trace or early stop) so the thread's encoding lands
        // back at a consistent boundary instead of aborting the thread.
        let unclosed = open.len();
        while let Some((site, caller, callee, action, epoch)) = open.pop() {
            let action = if st.snap.epoch == epoch {
                action
            } else {
                st.snap
                    .resolve(site, callee)
                    .map_or(EdgeAction::Unencoded, |r| r.action)
            };
            let _ = fastpath::exec_ret(&*st.snap, &mut st.ctx, site, caller, action);
            if obs_on && action.uses_ccstack() {
                st.writer
                    .cc_pop(self.slot.tid.raw(), st.ctx.cc.depth() as u32);
            }
            st.batch_events += 1;
        }
        if error.is_none() && unclosed > 0 {
            error = Some(BatchErrorKind::UnclosedCalls { open: unclosed });
        }
        st.sampler.skip(bulk_calls);
        if st.batch_events >= EVENT_BATCH {
            self.flush_batch_counters(st);
        }
        flush_icache_obs(&self.inner.obs, st);
        flush_superop_obs(&self.inner.obs, st);
        match error {
            None => Ok(executed),
            Some(kind) => {
                st.shard.batch_errors += 1;
                Err(BatchError { kind, executed })
            }
        }
    }

    fn enter(&self, site: CallSiteId, target: FunctionId, dispatch: CallDispatch) -> CallGuard<'_> {
        let mut guard = self.slot.state.lock();
        let st = &mut *guard;
        self.refresh(st);
        let caller = st.ctx.current;
        // The guard remembers the resolved action and the generation it is
        // valid under, so the matching return needs no patch-table probe
        // unless a re-encoding intervened. The epoch is captured *before*
        // any trigger work — a re-encoding on this very event leaves the
        // guard with a stale epoch, forcing the return to re-resolve.
        let (action, epoch) = match resolve_cached(st, site, target) {
            Some(r) => {
                let epoch = st.snap.epoch;
                let prev_max = st.ctx.cc.max_depth();
                let eff = fastpath::exec_call(
                    &*st.snap,
                    &mut st.ctx,
                    site,
                    target,
                    r.action,
                    r.tc_wrap,
                    false,
                );
                if eff.compress_hit {
                    st.shard.compress_hits += 1;
                }
                st.shard.calls += 1;
                if r.action.uses_ccstack() {
                    self.note_cc_push(st, prev_max, st.writer.enabled());
                }
                self.note_local_event(st);
                (r.action, epoch)
            }
            None => {
                // trap_call re-resolves under the state it republishes.
                let prev_max = st.ctx.cc.max_depth();
                let action = self.trap_call(st, site, caller, target, dispatch);
                if action.uses_ccstack() {
                    self.note_cc_push(st, prev_max, st.writer.enabled());
                }
                (action, st.snap.epoch)
            }
        };
        self.profiler_tick(st, site);
        CallGuard {
            handle: self,
            site,
            caller,
            callee: target,
            action,
            epoch,
        }
    }

    /// Revalidates the cached snapshot with one atomic epoch load; on a
    /// mismatch, fetches the published snapshot and — if the encoding
    /// generation moved — migrates this thread's context to it (decode
    /// under the old snapshot's dictionary, replay under the new patches).
    fn refresh(&self, st: &mut ThreadState) {
        let cur = self.inner.epoch.load(protocol::EPOCH_CHECK);
        if st.snap.epoch == cur {
            return;
        }
        let new_snap = Arc::clone(&self.inner.published.lock());
        if new_snap.ts != st.snap.ts {
            let migrated = fastpath::migrate(
                &*new_snap,
                &mut st.ctx,
                st.snap.dict(),
                &new_snap.site_owner,
            );
            if migrated.is_err() {
                st.shard.decode_errors += 1;
            }
            self.inner.obs.on_migration();
            if st.writer.enabled() {
                st.writer
                    .migration(self.slot.tid.raw(), st.snap.ts.raw(), new_snap.ts.raw());
            }
        }
        st.snap = new_snap;
    }

    /// Continuous-profiler tick for one call event. When the sampler
    /// fires, captures the thread's context, counts it in the local shard,
    /// journals a `Sample` event on this thread's own lock-free ring and
    /// buffers the weighted sample for the next slow-path flush into the
    /// shared profiler ring — the fast path never touches the shared lock.
    fn profiler_tick(&self, st: &mut ThreadState, site: CallSiteId) {
        let Some(weight) = st.sampler.tick() else {
            return;
        };
        let snap = snapshot_of(st);
        st.shard.profiler_samples += 1;
        st.shard.profiler_sample_weight += weight;
        self.inner
            .obs
            .on_profiler_sample(snap.cc_depth() as u32, snap.id, weight);
        if st.writer.enabled() {
            let fp = crate::shared::context_fingerprint(&snap);
            st.writer.sample(
                self.slot.tid.raw(),
                snap.ts.raw(),
                snap.id,
                site.raw(),
                snap.leaf.raw(),
                snap.root.raw(),
                fp,
                u32::try_from(weight).unwrap_or(u32::MAX),
                snap.cc_depth() as u32,
            );
        }
        if st.pending_profiler.len() < SAMPLE_BACKLOG {
            st.pending_profiler.push((snap, weight));
        } else {
            let pos = st.pending_profiler_pos % SAMPLE_BACKLOG;
            st.pending_profiler[pos] = (snap, weight);
        }
        st.pending_profiler_pos += 1;
    }

    /// Journal-side bookkeeping for a ccStack push that just happened:
    /// records the push event and — when the stack reached a new high-water
    /// mark past the configured watermark — an overflow event and metric.
    /// `obs_on` is the journal gate, hoisted by batched callers so the
    /// per-op loop does not re-load it.
    fn note_cc_push(&self, st: &mut ThreadState, prev_max: usize, obs_on: bool) {
        let depth = st.ctx.cc.depth();
        if obs_on {
            st.writer.cc_push(self.slot.tid.raw(), depth as u32);
        }
        if depth > prev_max && depth as u32 >= st.writer.watermark() {
            self.inner.obs.on_cc_overflow();
            st.writer.cc_overflow(self.slot.tid.raw(), depth as u32);
        }
    }

    /// The slow path: the cached snapshot has no action for `(site,
    /// target)`. Takes the shared lock, re-checks (a racing thread may have
    /// patched the site first), runs the runtime handler if not, executes
    /// the call against the live shared state, evaluates the §4 triggers
    /// and republishes.
    fn trap_call(
        &self,
        st: &mut ThreadState,
        site: CallSiteId,
        caller: FunctionId,
        target: FunctionId,
        dispatch: CallDispatch,
    ) -> EdgeAction {
        let inner = &*self.inner;
        let mut sh_guard = inner.shared.lock();
        let sh = &mut *sh_guard;
        // A simulated poisoning needs no extra recovery here: this slow
        // path unconditionally republishes before returning.
        let _ = inner.note_slow_lock(sh);
        inner.absorb_pending(sh);
        self.flush_local(st, sh);

        // Adopt any generation a sibling tenant published to our shared
        // lineage; the migration below then carries this thread across the
        // local *and* lineage generation change in one decode/replay hop.
        let _ = sh.adopt_pending_lineage();

        // Catch up with any re-encoding published since our epoch check:
        // the call below must execute against the current generation.
        if sh.ts != st.snap.ts {
            if fastpath::migrate(&*sh, &mut st.ctx, st.snap.dict(), &sh.site_owner).is_err() {
                st.shard.decode_errors += 1;
            }
            sh.obs.on_migration();
            if st.writer.enabled() {
                st.writer
                    .migration(self.slot.tid.raw(), st.snap.ts.raw(), sh.ts.raw());
            }
        }

        let (action, site_wraps) = match sh.lookup_action(site, target) {
            Some(r) => (r.action, r.tc_wrap),
            None => {
                // Note: the tracker API has no tail-call entry point, so a
                // trap can never reveal a newly tail-calling function here
                // (no frame retrofit needed — that path is engine-only).
                let (a, newly_tail) =
                    sh.handle_trap(self.slot.tid.raw(), site, caller, target, dispatch, false);
                debug_assert!(newly_tail.is_none());
                let wraps = sh.patches.get(site).is_some_and(|s| s.tc_wrap);
                (a, wraps)
            }
        };
        let eff = fastpath::exec_call(&*sh, &mut st.ctx, site, target, action, site_wraps, false);
        if eff.compress_hit {
            st.shard.compress_hits += 1;
        }
        st.shard.calls += 1;
        sh.note_event();

        if sh.reencode_check_due() {
            let live = inner.ccops_total.load(Ordering::Relaxed);
            if sh.should_reencode(&|| live) {
                self.reencode_locked(sh, st);
            }
        }
        inner.update_trigger_mark(sh);
        st.snap = inner.republish(sh);
        // A re-encoding above may have re-patched this very site; report
        // the action valid under the snapshot the guard will be keyed to.
        st.snap.resolve(site, target).map_or(action, |r| r.action)
    }

    /// Applies a re-encoding while holding the shared lock. Only this
    /// thread's context is regenerated eagerly (decode under the old
    /// dictionary, shared core, replay under the new patches); every other
    /// thread migrates itself at its next epoch check.
    fn reencode_locked(&self, sh: &mut SharedState, st: &mut ThreadState) {
        let own = {
            let dict = sh.dicts.get(sh.ts).expect("current dictionary recorded");
            decode_thread(
                dict,
                st.ctx.id,
                st.ctx.current,
                st.ctx.root,
                st.ctx.cc.entries(),
                &sh.site_owner,
            )
        };
        let old_ts = sh.ts.raw();
        // On a shared lineage this either adopts a generation a sibling
        // already published (skipping the redundant local re-encode) or
        // re-encodes locally and publishes the result for the siblings.
        let applied = match sh.reencode_via_lineage() {
            LineageReencode::Adopted => true,
            LineageReencode::Local(outcome, _cost) => {
                matches!(outcome, ReencodeOutcome::Applied)
            }
        };
        if applied {
            match own {
                Ok(path) => {
                    fastpath::replay(&*sh, &mut st.ctx, &path);
                    sh.obs.on_migration();
                    if st.writer.enabled() {
                        st.writer
                            .migration(self.slot.tid.raw(), old_ts, sh.ts.raw());
                    }
                }
                Err(_) => sh.stats.decode_errors += 1,
            }
        }
        // Replay rebuilt our ccStack; sync the flushed-op counter so the
        // rate window the triggers re-arm with starts clean.
        let cc_now = st.ctx.cc.ops();
        let delta = cc_now.saturating_sub(st.flushed_cc_ops);
        if delta > 0 {
            self.inner.ccops_total.fetch_add(delta, Ordering::Relaxed);
        }
        st.flushed_cc_ops = cc_now;
        let live = self.inner.ccops_total.load(Ordering::Relaxed);
        sh.reset_triggers(live);
    }

    /// Flushes this thread's local event batch, ccStack-op delta and sample
    /// backlog into the shared state. Caller holds the shared lock.
    fn flush_local(&self, st: &mut ThreadState, sh: &mut SharedState) {
        if st.batch_events > 0 {
            sh.note_events(st.batch_events);
            st.batch_events = 0;
        }
        let cc_now = st.ctx.cc.ops();
        let delta = cc_now.saturating_sub(st.flushed_cc_ops);
        if delta > 0 {
            self.inner.ccops_total.fetch_add(delta, Ordering::Relaxed);
        }
        st.flushed_cc_ops = cc_now;
        let spills = st.ctx.cc.spill_events();
        let d_spills = spills.saturating_sub(st.flushed_spill_events);
        if d_spills > 0 {
            sh.stats.degraded.cc_spill_events += d_spills;
            sh.stats.degraded.cc_spilled_peak = sh
                .stats
                .degraded
                .cc_spilled_peak
                .max(st.ctx.cc.spilled_peak() as u64);
            sh.obs.on_cc_spills(d_spills);
            st.flushed_spill_events = spills;
        }
        flush_icache_obs(&self.inner.obs, st);
        flush_superop_obs(&self.inner.obs, st);
        for s in st.pending_samples.drain(..) {
            sh.push_ring(&s);
        }
        st.pending_pos = 0;
        for (s, w) in st.pending_profiler.drain(..) {
            sh.push_profiler_ring(&s, w);
        }
        st.pending_profiler_pos = 0;
    }

    /// Fast-path trigger bookkeeping: counts the event locally and, every
    /// [`EVENT_BATCH`] events, flushes the batch to the shared atomics.
    /// The shared lock is only *tried* — and only once enough events have
    /// accumulated for the re-encoding gate to possibly open — so the hot
    /// path never blocks on it.
    fn note_local_event(&self, st: &mut ThreadState) {
        st.batch_events += 1;
        if st.batch_events < EVENT_BATCH {
            return;
        }
        self.flush_batch_counters(st);
    }

    /// Flushes the accumulated local event batch to the shared atomics and
    /// — once enough events have flowed for the re-encoding gate to
    /// possibly open — *tries* the shared lock to evaluate the §4
    /// triggers. Shared by the per-event fast path (at [`EVENT_BATCH`]
    /// granularity) and [`Self::run_batch`] (once per batch).
    fn flush_batch_counters(&self, st: &mut ThreadState) {
        let inner = &*self.inner;
        let batch = st.batch_events;
        st.batch_events = 0;
        let pending = inner.pending_events.fetch_add(batch, Ordering::Relaxed) + batch;
        let cc_now = st.ctx.cc.ops();
        let delta = cc_now.saturating_sub(st.flushed_cc_ops);
        if delta > 0 {
            inner.ccops_total.fetch_add(delta, Ordering::Relaxed);
        }
        st.flushed_cc_ops = cc_now;
        flush_icache_obs(&inner.obs, st);
        flush_superop_obs(&inner.obs, st);

        if pending < inner.trigger_check_at.load(Ordering::Relaxed) {
            return;
        }
        let Some(mut sh_guard) = inner.shared.try_lock() else {
            // Another thread is on the slow path; it will evaluate.
            return;
        };
        let sh = &mut *sh_guard;
        let poisoned = inner.note_slow_lock(sh);
        inner.absorb_pending(sh);
        for s in st.pending_samples.drain(..) {
            sh.push_ring(&s);
        }
        st.pending_pos = 0;
        for (s, w) in st.pending_profiler.drain(..) {
            sh.push_profiler_ring(&s, w);
        }
        st.pending_profiler_pos = 0;
        if sh.adopt_pending_lineage() {
            // A sibling tenant published a newer lineage generation; move
            // this thread across it (decode under the old snapshot's
            // dictionary, replay under the adopted patches) and republish
            // so the other threads migrate at their next epoch check.
            if fastpath::migrate(&*sh, &mut st.ctx, st.snap.dict(), &sh.site_owner).is_err() {
                st.shard.decode_errors += 1;
            }
            sh.obs.on_migration();
            if st.writer.enabled() {
                st.writer
                    .migration(self.slot.tid.raw(), st.snap.ts.raw(), sh.ts.raw());
            }
            st.snap = inner.republish(sh);
        }
        if sh.reencode_check_due() {
            let live = inner.ccops_total.load(Ordering::Relaxed);
            if sh.should_reencode(&|| live) {
                self.reencode_locked(sh, st);
                st.snap = inner.republish(sh);
            }
        }
        if poisoned {
            // Recovery from the simulated poisoning: republish so every
            // thread revalidates its cached snapshot at its next event.
            st.snap = inner.republish(sh);
        }
        inner.update_trigger_mark(sh);
    }

    /// Captures the thread's current encoded context (cheap; decode later).
    pub fn sample(&self) -> EncodedContext {
        let mut guard = self.slot.state.lock();
        let st = &mut *guard;
        self.refresh(st);
        let snap = snapshot_of(st);
        st.shard.samples += 1;
        st.shard.cc_depths.push(snap.cc_depth() as u32);
        self.inner.obs.on_sample(snap.cc_depth() as u32, snap.id);
        // Buffer for the shared heat ring (flushed on the next slow path).
        if st.pending_samples.len() < SAMPLE_BACKLOG {
            st.pending_samples.push(snap.clone());
        } else {
            let pos = st.pending_pos % SAMPLE_BACKLOG;
            st.pending_samples[pos] = snap.clone();
        }
        st.pending_pos += 1;
        snap
    }

    /// The thread's current encoded context without sample accounting.
    fn current_context(&self) -> EncodedContext {
        let mut guard = self.slot.state.lock();
        let st = &mut *guard;
        self.refresh(st);
        snapshot_of(st)
    }

    /// The thread's current encoded context, without sample accounting
    /// (the journal recorder's full-state capture: entry states, seam
    /// seeds and resync records).
    pub fn context(&self) -> EncodedContext {
        self.current_context()
    }

    /// An O(1) probe of the state components one call/return event can
    /// change (see [`crate::fragment::StateSig`]). Reads the state
    /// exactly as the last event left it — no refresh, no accounting —
    /// so the journal recorder can verify a derived effect per op
    /// without cloning the ccStack.
    pub fn state_sig(&self) -> crate::fragment::StateSig {
        let guard = self.slot.state.lock();
        let st = &*guard;
        crate::fragment::StateSig {
            ts: st.snap.ts,
            id: st.ctx.id,
            depth: st.ctx.cc.depth(),
            top: st.ctx.cc.top().copied(),
            leaf: st.ctx.current,
        }
    }

    /// Captures the current context as a migratable *task origin* (§5.3,
    /// "work migration"): hand the returned [`TaskContext`] to whatever
    /// executor thread will run the work and have it call
    /// [`ThreadHandle::adopt`].
    pub fn capture_task(&self, handoff_site: CallSiteId) -> TaskContext {
        TaskContext {
            site: handoff_site,
            origin: self.current_context(),
        }
    }

    /// Adopts a migrated task's origin context for the duration of the
    /// returned guard: samples taken while it is alive decode to
    /// `origin -> (handoff site) -> this thread's frames`. Nest adoptions
    /// like calls; the guard restores the previous creation link on drop.
    pub fn adopt(&self, task: &TaskContext) -> AdoptGuard<'_> {
        let mut guard = self.slot.state.lock();
        let link = SpawnLink {
            site: task.site,
            parent: Box::new(task.origin.clone()),
        };
        let previous = guard.ctx.spawn.replace(link);
        AdoptGuard {
            handle: self,
            previous: Some(previous),
        }
    }
}

/// Resolves `(site, target)` against the thread's cached snapshot, routing
/// polymorphic (indirect) sites through the per-thread inline cache. A hit
/// costs one epoch-stamped entry compare instead of the compare chain /
/// hash probe; a miss falls back to the snapshot's poly table and installs
/// the result. Entries are keyed to the snapshot epoch, so a republish
/// invalidates the whole cache without any cross-thread signal.
#[inline]
fn resolve_cached(
    st: &mut ThreadState,
    site: CallSiteId,
    target: FunctionId,
) -> Option<ResolvedSite> {
    let (slot, cs) = st.snap.dispatch.entry(site)?;
    match cs.dispatch {
        CompiledDispatch::Trap => None,
        CompiledDispatch::Mono {
            target: known,
            action,
        } => (known == target).then_some(ResolvedSite {
            action,
            dispatch_cost: 0,
            tc_wrap: cs.tc_wrap,
        }),
        CompiledDispatch::Poly { index } => {
            if let Some((action, tc_wrap)) = st.ctx.icache.probe(slot, st.snap.epoch, site, target)
            {
                st.shard.icache_hits += 1;
                Some(ResolvedSite {
                    action,
                    // One compare against the cached entry replaces the
                    // chain walk / hash probe.
                    dispatch_cost: st.snap.cost.compare,
                    tc_wrap,
                })
            } else {
                st.shard.icache_misses += 1;
                let r = st
                    .snap
                    .dispatch
                    .poly_resolve(index, target, &st.snap.cost, cs.tc_wrap)?;
                st.ctx
                    .icache
                    .fill(slot, st.snap.epoch, site, target, r.action, r.tc_wrap);
                Some(r)
            }
        }
    }
}

/// Publishes the thread's inline-cache hit/miss deltas to the obs metrics.
fn flush_icache_obs(obs: &Observability, st: &mut ThreadState) {
    let dh = st.shard.icache_hits - st.flushed_icache_hits;
    let dm = st.shard.icache_misses - st.flushed_icache_misses;
    if dh != 0 || dm != 0 {
        obs.on_icache(dh, dm);
        st.flushed_icache_hits = st.shard.icache_hits;
        st.flushed_icache_misses = st.shard.icache_misses;
    }
}

/// Publishes the thread's superop hit/miss deltas to the obs metrics.
fn flush_superop_obs(obs: &Observability, st: &mut ThreadState) {
    let dh = st.shard.superop_hits - st.flushed_superop_hits;
    let dm = st.shard.superop_misses - st.flushed_superop_misses;
    if dh != 0 || dm != 0 {
        obs.on_superops(dh, dm);
        st.flushed_superop_hits = st.shard.superop_hits;
        st.flushed_superop_misses = st.shard.superop_misses;
    }
}

/// Builds the encoded context of a thread's current state. Stamped with
/// the snapshot's timestamp — the generation the context is encoded under.
fn snapshot_of(st: &ThreadState) -> EncodedContext {
    EncodedContext {
        ts: st.snap.ts,
        id: st.ctx.id,
        leaf: st.ctx.current,
        root: st.ctx.root,
        cc: st.ctx.cc.entries().to_vec(),
        spawn: st.ctx.spawn.clone(),
    }
}

/// A calling context captured for work migration: the origin context plus
/// the hand-off call site. Cheap to clone and `Send` — attach one to every
/// queued task.
#[derive(Clone, Debug)]
pub struct TaskContext {
    site: CallSiteId,
    origin: EncodedContext,
}

impl TaskContext {
    /// The captured origin context.
    pub fn origin(&self) -> &EncodedContext {
        &self.origin
    }
}

/// RAII guard for an adopted task context; restores the thread's previous
/// creation link on drop.
#[derive(Debug)]
pub struct AdoptGuard<'t> {
    handle: &'t ThreadHandle,
    previous: Option<Option<SpawnLink>>,
}

impl Drop for AdoptGuard<'_> {
    fn drop(&mut self) {
        if let Some(prev) = self.previous.take() {
            self.handle.slot.state.lock().ctx.spawn = prev;
        }
    }
}

/// RAII guard for one instrumented call. Carries the action resolved at
/// call time and the publication epoch it is valid under, so the return
/// side of an encoded edge is pure arithmetic — no patch-table probe.
#[derive(Debug)]
pub struct CallGuard<'t> {
    handle: &'t ThreadHandle,
    site: CallSiteId,
    caller: FunctionId,
    callee: FunctionId,
    action: EdgeAction,
    epoch: u64,
}

impl Drop for CallGuard<'_> {
    fn drop(&mut self) {
        let mut guard = self.handle.slot.state.lock();
        let st = &mut *guard;
        self.handle.refresh(st);
        let action = if st.snap.epoch == self.epoch {
            self.action
        } else {
            // A publication intervened since the call; the context was
            // migrated, so reverse under the current generation's action.
            st.snap
                .resolve(self.site, self.callee)
                .map_or(EdgeAction::Unencoded, |r| r.action)
        };
        let _ = fastpath::exec_ret(&*st.snap, &mut st.ctx, self.site, self.caller, action);
        if action.uses_ccstack() && st.writer.enabled() {
            st.writer
                .cc_pop(self.handle.slot.tid.raw(), st.ctx.cc.depth() as u32);
        }
        self.handle.note_local_event(st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_guards_track_the_stack() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let f = tracker.define_function("f");
        let g = tracker.define_function("g");
        let s1 = tracker.define_call_site();
        let s2 = tracker.define_call_site();

        let th = tracker.register_thread(main_fn);
        {
            let _a = th.call(s1, f);
            {
                let _b = th.call(s2, g);
                let ctx = th.sample();
                let path = tracker.decode(&ctx).unwrap();
                assert_eq!(tracker.format_path(&path), "main -> f -> g");
            }
            let ctx = th.sample();
            assert_eq!(
                tracker.format_path(&tracker.decode(&ctx).unwrap()),
                "main -> f"
            );
        }
        let ctx = th.sample();
        assert_eq!(tracker.format_path(&tracker.decode(&ctx).unwrap()), "main");
        assert_eq!(ctx.id, 0);
    }

    #[test]
    fn recursion_through_guards_decodes() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let rec = tracker.define_function("rec");
        // One site lives in one function: the entry call site is in main,
        // the recursive site is in rec.
        let entry_site = tracker.define_call_site();
        let rec_site = tracker.define_call_site();
        let th = tracker.register_thread(main_fn);

        fn go(th: &ThreadHandle, tracker: &Tracker, s: CallSiteId, rec: FunctionId, depth: u32) {
            let _g = th.call(s, rec);
            if depth > 0 {
                go(th, tracker, s, rec, depth - 1);
            } else {
                let path = tracker.decode(&th.sample()).unwrap();
                assert_eq!(path.depth(), 7); // main + 6 rec frames
            }
        }
        let _entry = th.call(entry_site, rec);
        go(&th, &tracker, rec_site, rec, 4);
    }

    #[test]
    fn real_threads_with_spawn_contexts() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let worker_fn = tracker.define_function("worker");
        let job = tracker.define_function("job");
        let dispatch = tracker.define_call_site();
        let spawn_site = tracker.define_call_site();
        let job_site = tracker.define_call_site();

        let main_th = tracker.register_thread(main_fn);
        let _in_dispatch = main_th.call(dispatch, worker_fn);

        crossbeam::scope(|scope| {
            let t = &tracker;
            let main_th = &main_th;
            scope.spawn(move |_| {
                let th = t.register_spawned_thread(worker_fn, main_th, spawn_site);
                let _g = th.call(job_site, job);
                let path = t.decode(&th.sample()).unwrap();
                // Full context crosses the thread boundary.
                assert_eq!(t.format_path(&path), "main -> worker -> worker -> job");
            });
        })
        .unwrap();
    }

    #[test]
    fn adopted_tasks_carry_their_origin() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let producer = tracker.define_function("producer");
        let worker_fn = tracker.define_function("worker");
        let body = tracker.define_function("body");
        let s_prod = tracker.define_call_site();
        let s_handoff = tracker.define_call_site();
        let s_spawn = tracker.define_call_site();
        let s_body = tracker.define_call_site();

        let main_th = tracker.register_thread(main_fn);
        let task = {
            let _g = main_th.call(s_prod, producer);
            main_th.capture_task(s_handoff)
        };
        let worker = tracker.register_spawned_thread(worker_fn, &main_th, s_spawn);
        // Without adoption: attributed to the worker's own spawn chain.
        {
            let _g = worker.call(s_body, body);
            let p = tracker.decode(&worker.sample()).unwrap();
            assert_eq!(tracker.format_path(&p), "main -> worker -> body");
        }
        // With adoption: attributed to the producer context.
        {
            let _adopt = worker.adopt(&task);
            let _g = worker.call(s_body, body);
            let p = tracker.decode(&worker.sample()).unwrap();
            assert_eq!(
                tracker.format_path(&p),
                "main -> producer -> worker -> body"
            );
            assert_eq!(task.origin().leaf, producer);
        }
        // Guard dropped: back to the spawn chain.
        let p = tracker.decode(&worker.sample()).unwrap();
        assert_eq!(tracker.format_path(&p), "main -> worker");
    }

    #[test]
    fn warm_started_tracker_never_traps_on_seeded_edges() {
        use crate::warm::SeedEdge;
        use dacce_callgraph::Dispatch;

        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let f = tracker.define_function("f");
        let g = tracker.define_function("g");
        let s1 = tracker.define_call_site();
        let s2 = tracker.define_call_site();
        let report = tracker.warm_start(
            main_fn,
            &WarmStartSeed {
                roots: vec![main_fn],
                edges: vec![
                    SeedEdge {
                        caller: main_fn,
                        callee: f,
                        site: s1,
                        dispatch: Dispatch::Direct,
                    },
                    SeedEdge {
                        caller: f,
                        callee: g,
                        site: s2,
                        dispatch: Dispatch::Direct,
                    },
                ],
                tail_fns: Vec::new(),
            },
        );
        assert_eq!(report.seeded_edges, 2);

        let th = tracker.register_thread(main_fn);
        {
            let _a = th.call(s1, f);
            let _b = th.call(s2, g);
            let path = tracker.decode(&th.sample()).unwrap();
            assert_eq!(tracker.format_path(&path), "main -> f -> g");
            tracker.check_invariants().unwrap();
        }
        assert_eq!(tracker.stats().traps, 0, "seeded edges must not trap");
        tracker.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "precede thread registration")]
    fn warm_start_after_registration_panics() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let _th = tracker.register_thread(main_fn);
        tracker.warm_start(main_fn, &WarmStartSeed::default());
    }

    #[test]
    fn check_invariants_passes_under_activity() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let f = tracker.define_function("f");
        let s = tracker.define_call_site();
        let th = tracker.register_thread(main_fn);
        tracker.check_invariants().unwrap();
        {
            let _g = th.call(s, f);
            tracker.check_invariants().unwrap();
        }
        tracker.check_invariants().unwrap();
    }

    #[test]
    fn stats_are_reachable() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let f = tracker.define_function("f");
        let s = tracker.define_call_site();
        let th = tracker.register_thread(main_fn);
        for _ in 0..50 {
            let _g = th.call(s, f);
        }
        let stats = tracker.stats();
        assert_eq!(stats.traps, 1);
        assert!(stats.calls >= 50);
    }

    #[test]
    fn function_names_round_trip() {
        let tracker = Tracker::new();
        let a = tracker.define_function("alpha");
        let b = tracker.define_function("beta");
        assert_eq!(tracker.function_name(a).as_deref(), Some("alpha"));
        assert_eq!(tracker.function_name(b).as_deref(), Some("beta"));
        assert_eq!(tracker.function_name(FunctionId::new(99)), None);
    }

    /// Regression test for the id/name registration race: ids used to come
    /// from a separate atomic while the name was pushed under the lock, so
    /// two racing `define_function` calls could pair an id with the other
    /// call's name. Now both are allocated under one lock.
    #[test]
    fn racing_function_definitions_keep_ids_and_names_paired() {
        let tracker = Tracker::new();
        const THREADS: usize = 8;
        const PER_THREAD: usize = 200;
        let mut all: Vec<(FunctionId, String)> = Vec::new();
        crossbeam::scope(|scope| {
            let mut joins = Vec::new();
            for t in 0..THREADS {
                let tr = tracker.clone();
                joins.push(scope.spawn(move |_| {
                    let mut pairs = Vec::with_capacity(PER_THREAD);
                    for i in 0..PER_THREAD {
                        let name = format!("fn_{t}_{i}");
                        let id = tr.define_function(&name);
                        pairs.push((id, name));
                    }
                    pairs
                }));
            }
            for j in joins {
                all.extend(j.join().unwrap());
            }
        })
        .unwrap();
        assert_eq!(all.len(), THREADS * PER_THREAD);
        // Ids are unique...
        let mut ids: Vec<u32> = all.iter().map(|(id, _)| id.index() as u32).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), THREADS * PER_THREAD, "duplicate FunctionIds");
        // ...and every id resolves to exactly the name registered with it.
        for (id, name) in &all {
            assert_eq!(tracker.function_name(*id).as_deref(), Some(name.as_str()));
        }
    }

    /// The acceptance property of the engine split: once every edge a
    /// thread executes is encoded, its call/return events acquire zero
    /// shared-mutex locks. Verified directly via the slow-path counter
    /// (wall-clock scaling is hardware-dependent; this is not).
    #[test]
    fn encoded_edges_take_no_shared_locks() {
        let cfg = DacceConfig {
            // Re-encode eagerly during warmup so the chain gets encoded...
            edge_threshold: 1,
            min_events_between_reencodes: 1,
            reencode_backoff: 1.0,
            // ...then quiesce the periodic trigger windows so steady state
            // is deterministic.
            ccstack_rate_window: u64::MAX,
            hot_check_every: u64::MAX,
            ..DacceConfig::default()
        };
        let tracker = Tracker::with_config(cfg);
        let main_fn = tracker.define_function("main");
        let fns: Vec<FunctionId> = (0..4)
            .map(|i| tracker.define_function(&format!("f{i}")))
            .collect();
        let sites: Vec<CallSiteId> = (0..4).map(|_| tracker.define_call_site()).collect();
        let th = tracker.register_thread(main_fn);

        // Warmup: trap every edge and let the re-encoding encode them.
        for _ in 0..3 {
            let mut guards = Vec::new();
            for (s, f) in sites.iter().zip(&fns) {
                guards.push(th.call(*s, *f));
            }
            while let Some(g) = guards.pop() {
                drop(g);
            }
        }
        assert!(tracker.stats().reencodes >= 1);

        // Steady state: thousands of call/return pairs, zero shared locks.
        let locks_before = tracker.slow_path_locks();
        for _ in 0..5_000 {
            let mut guards = Vec::new();
            for (s, f) in sites.iter().zip(&fns) {
                guards.push(th.call(*s, *f));
            }
            while let Some(g) = guards.pop() {
                drop(g);
            }
        }
        assert_eq!(
            tracker.slow_path_locks(),
            locks_before,
            "encoded-edge call/return must not touch the shared lock"
        );
        // And the encoding is still exact.
        let path = tracker.decode(&th.sample()).unwrap();
        assert_eq!(tracker.format_path(&path), "main");
        assert_eq!(tracker.stats().decode_errors, 0);
    }

    /// Re-encodings triggered through one thread's slow path must reach
    /// the other threads' contexts (lazily, at their next event).
    #[test]
    fn reencode_migrates_other_threads_lazily() {
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            ..DacceConfig::default()
        };
        let tracker = Tracker::with_config(cfg);
        let main_fn = tracker.define_function("main");
        let worker_fn = tracker.define_function("worker");
        let f = tracker.define_function("f");
        let g = tracker.define_function("g");
        let s_spawn = tracker.define_call_site();
        let s_f = tracker.define_call_site();
        let s_g = tracker.define_call_site();
        let s_wf = tracker.define_call_site();

        let main_th = tracker.register_thread(main_fn);
        let worker = tracker.register_spawned_thread(worker_fn, &main_th, s_spawn);
        // The worker parks with one active frame under generation 0.
        let wg = worker.call(s_wf, f);
        // Main traps two new edges -> trigger 1 fires -> re-encode.
        let _a = tracker.decode(&main_th.sample()).unwrap();
        let _g1 = main_th.call(s_f, f);
        let _g2 = main_th.call(s_g, g);
        assert!(tracker.stats().reencodes >= 1);
        // The worker's next sample migrates its context to the new
        // generation and still decodes to the true path.
        let p = tracker.decode(&worker.sample()).unwrap();
        assert_eq!(tracker.format_path(&p), "main -> worker -> f");
        drop(wg);
        let p = tracker.decode(&worker.sample()).unwrap();
        assert_eq!(tracker.format_path(&p), "main -> worker");
        assert_eq!(tracker.stats().decode_errors, 0);
    }

    /// A batch must leave exactly the state an equivalent guard sequence
    /// leaves: same context id, same ccStack, same call count, same
    /// decoded paths — including when the batch itself traps and
    /// re-encodes mid-flight.
    #[test]
    fn run_batch_is_equivalent_to_guards() {
        let build = || {
            let tracker = Tracker::with_config(DacceConfig {
                edge_threshold: 1,
                min_events_between_reencodes: 1,
                ..DacceConfig::default()
            });
            let main_fn = tracker.define_function("main");
            let f = tracker.define_function("f");
            let g = tracker.define_function("g");
            let s1 = tracker.define_call_site();
            let s2 = tracker.define_call_site();
            let th = tracker.register_thread(main_fn);
            (tracker, th, f, g, s1, s2)
        };

        // Guard drive.
        let (t_guard, th, f, g, s1, s2) = build();
        {
            let _a = th.call(s1, f);
            let _b = th.call_indirect(s2, g);
        }
        {
            let _a = th.call(s1, f);
            let _b = th.call_indirect(s2, f);
        }
        let guard_stats = t_guard.stats();
        let snap = th.sample();
        assert_eq!((snap.id, snap.cc_depth()), (0, 0));

        // Batched drive of the same op sequence (first batch traps both
        // sites and re-encodes under the eager triggers).
        let (t_batch, th, f, g, s1, s2) = build();
        let n = th
            .run_batch(&[
                BatchOp::Call {
                    site: s1,
                    target: f,
                },
                BatchOp::CallIndirect {
                    site: s2,
                    target: g,
                },
                BatchOp::Ret,
                BatchOp::Ret,
            ])
            .expect("balanced batch");
        assert_eq!(n, 4);
        th.run_batch(&[
            BatchOp::Call {
                site: s1,
                target: f,
            },
            BatchOp::CallIndirect {
                site: s2,
                target: f,
            },
            BatchOp::Ret,
            BatchOp::Ret,
        ])
        .expect("balanced batch");
        let batch_stats = t_batch.stats();
        let snap = th.sample();
        assert_eq!((snap.id, snap.cc_depth()), (0, 0));

        assert_eq!(guard_stats.calls, batch_stats.calls);
        assert_eq!(guard_stats.decode_errors, 0);
        assert_eq!(batch_stats.decode_errors, 0);
        assert!(batch_stats.reencodes >= 1, "eager triggers fired mid-batch");
        t_batch.check_invariants().expect("post-batch invariants");
    }

    /// A batch observes frames opened earlier in the same batch: the
    /// deepest point decodes to the full chain when sampled right after.
    #[test]
    fn run_batch_partial_depth_decodes() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let f = tracker.define_function("f");
        let g = tracker.define_function("g");
        let s1 = tracker.define_call_site();
        let s2 = tracker.define_call_site();
        let th = tracker.register_thread(main_fn);
        // Balanced batch, then a guard walk to prove the batch left the
        // patch/dispatch state usable by the per-op path.
        th.run_batch(&[
            BatchOp::Call {
                site: s1,
                target: f,
            },
            BatchOp::Call {
                site: s2,
                target: g,
            },
            BatchOp::Ret,
            BatchOp::Ret,
        ])
        .expect("balanced batch");
        let a = th.call(s1, f);
        let b = th.call(s2, g);
        let path = tracker.decode(&th.sample()).unwrap();
        assert_eq!(tracker.format_path(&path), "main -> f -> g");
        drop(b);
        drop(a);
        assert_eq!(tracker.stats().decode_errors, 0);
    }

    /// An unmatched `Ret` stops the batch before the bad op, reports the
    /// error with partial progress, and leaves the handle fully usable.
    #[test]
    fn run_batch_reports_unmatched_ret_and_stays_usable() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let f = tracker.define_function("f");
        let s = tracker.define_call_site();
        let th = tracker.register_thread(main_fn);
        let err = th
            .run_batch(&[
                BatchOp::Call { site: s, target: f },
                BatchOp::Ret,
                BatchOp::Ret,
            ])
            .unwrap_err();
        assert_eq!(err.kind, BatchErrorKind::UnmatchedRet { index: 2 });
        assert_eq!(err.executed, 2);
        // The thread landed back at a consistent boundary...
        let ctx = th.sample();
        assert_eq!(ctx.id, 0);
        assert_eq!(tracker.format_path(&tracker.decode(&ctx).unwrap()), "main");
        // ...and the failure is visible in the degraded-state counters.
        assert_eq!(tracker.stats().degraded.batch_errors, 1);
        tracker.check_invariants().unwrap();
    }

    /// Frames still open at batch end are auto-unwound: the error reports
    /// them, the encoding lands back at the pre-batch frame, and later
    /// batches on the same handle keep working.
    #[test]
    fn run_batch_unwinds_open_frames_at_end() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let f = tracker.define_function("f");
        let s = tracker.define_call_site();
        let th = tracker.register_thread(main_fn);
        let err = th
            .run_batch(&[BatchOp::Call { site: s, target: f }])
            .unwrap_err();
        assert_eq!(err.kind, BatchErrorKind::UnclosedCalls { open: 1 });
        assert_eq!(err.executed, 1);
        let ctx = th.sample();
        assert_eq!(ctx.id, 0);
        let n = th
            .run_batch(&[BatchOp::Call { site: s, target: f }, BatchOp::Ret])
            .expect("handle stays usable after a batch error");
        assert_eq!(n, 2);
        assert_eq!(tracker.stats().degraded.batch_errors, 1);
        tracker.check_invariants().unwrap();
    }
}
