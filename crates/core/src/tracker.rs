//! Embeddable calling-context tracker for real Rust programs.
//!
//! The paper ships DACCE as a preloadable shared library that instruments
//! binaries. The equivalent for a Rust library is an explicit API: the
//! application declares its functions and call sites once, registers each
//! thread, and brackets instrumented calls with RAII guards. The engine
//! underneath is exactly the one the evaluation uses — dynamic call-graph
//! discovery, adaptive re-encoding, versioned decoding.
//!
//! ```
//! use dacce::tracker::Tracker;
//!
//! let tracker = Tracker::new();
//! let main_fn = tracker.define_function("main");
//! let handler = tracker.define_function("handle_request");
//! let site = tracker.define_call_site();
//!
//! let thread = tracker.register_thread(main_fn);
//! let _guard = thread.call(site, handler);
//! let ctx = thread.sample();
//! assert_eq!(tracker.format_path(&tracker.decode(&ctx)?), "main -> handle_request");
//! # Ok::<(), dacce::DecodeError>(())
//! ```

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::CallDispatch;
use dacce_program::{ContextPath, CostModel, ThreadId};

use crate::config::DacceConfig;
use crate::context::EncodedContext;
use crate::decode::DecodeError;
use crate::engine::DacceEngine;
use crate::stats::DacceStats;

#[derive(Debug)]
struct TrackerInner {
    engine: Mutex<DacceEngine>,
    names: Mutex<Vec<String>>,
    next_fn: AtomicU32,
    next_site: AtomicU32,
    next_tid: AtomicU32,
    attached: AtomicU32,
}

/// A process-wide calling-context tracker. Cheap to clone handles out of;
/// all state lives behind one lock (contexts are per-thread, but the call
/// graph and patch states are shared, as in the paper's prototype).
#[derive(Clone, Debug)]
pub struct Tracker {
    inner: Arc<TrackerInner>,
}

impl Default for Tracker {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracker {
    /// A tracker with default configuration.
    pub fn new() -> Self {
        Self::with_config(DacceConfig::default())
    }

    /// A tracker with explicit engine configuration.
    pub fn with_config(config: DacceConfig) -> Self {
        Tracker {
            inner: Arc::new(TrackerInner {
                engine: Mutex::new(DacceEngine::new(config, CostModel::default())),
                names: Mutex::new(Vec::new()),
                next_fn: AtomicU32::new(0),
                next_site: AtomicU32::new(0),
                next_tid: AtomicU32::new(0),
                attached: AtomicU32::new(0),
            }),
        }
    }

    /// Declares a function and returns its id.
    pub fn define_function(&self, name: &str) -> FunctionId {
        let id = FunctionId::new(self.inner.next_fn.fetch_add(1, Ordering::Relaxed));
        self.inner.names.lock().push(name.to_string());
        id
    }

    /// Allocates a call-site id. Call once per static call location.
    pub fn define_call_site(&self) -> CallSiteId {
        CallSiteId::new(self.inner.next_site.fetch_add(1, Ordering::Relaxed))
    }

    /// Registers the current thread with its root function. The first
    /// registered thread initialises the engine (its root plays `main`).
    pub fn register_thread(&self, root: FunctionId) -> ThreadHandle {
        self.register(root, None)
    }

    /// Registers a thread spawned by `parent` at `spawn_site`; the child's
    /// decoded contexts are prefixed with the parent's creation context.
    pub fn register_spawned_thread(
        &self,
        root: FunctionId,
        parent: &ThreadHandle,
        spawn_site: CallSiteId,
    ) -> ThreadHandle {
        self.register(root, Some((parent.tid, spawn_site)))
    }

    fn register(&self, root: FunctionId, parent: Option<(ThreadId, CallSiteId)>) -> ThreadHandle {
        let tid = ThreadId::new(self.inner.next_tid.fetch_add(1, Ordering::Relaxed));
        let mut engine = self.inner.engine.lock();
        if self.inner.attached.fetch_add(1, Ordering::Relaxed) == 0 {
            engine.attach_main(root);
        }
        engine.thread_start(tid, root, parent);
        ThreadHandle {
            tracker: self.inner.clone(),
            tid,
        }
    }

    /// Decodes an encoded context captured by [`ThreadHandle::sample`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the context is inconsistent with the
    /// recorded dictionaries (indicates misuse such as unbalanced guards).
    pub fn decode(&self, ctx: &EncodedContext) -> Result<ContextPath, DecodeError> {
        self.inner.engine.lock().decode(ctx)
    }

    /// Renders a decoded path as `main -> f -> g` using the declared names.
    pub fn format_path(&self, path: &ContextPath) -> String {
        let names = self.inner.names.lock();
        path.0
            .iter()
            .map(|s| {
                names
                    .get(s.func.index())
                    .cloned()
                    .unwrap_or_else(|| format!("{}", s.func))
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Engine statistics.
    pub fn stats(&self) -> DacceStats {
        self.inner.engine.lock().stats()
    }

    /// Runs `f` with the engine locked — introspection for tests, debug
    /// dumps and offline export (`dacce::export::export_state`).
    pub fn with_engine<R>(&self, f: impl FnOnce(&DacceEngine) -> R) -> R {
        f(&self.inner.engine.lock())
    }
}

/// Per-thread handle; create one per OS thread via
/// [`Tracker::register_thread`].
#[derive(Debug)]
pub struct ThreadHandle {
    tracker: Arc<TrackerInner>,
    tid: ThreadId,
}

impl ThreadHandle {
    /// The thread id assigned by the tracker.
    pub fn id(&self) -> ThreadId {
        self.tid
    }

    /// Enters an instrumented direct call; the returned guard leaves it on
    /// drop. Guards must nest like the calls they bracket — drop them in
    /// reverse acquisition order. Beware `Vec<CallGuard>`: a vector drops
    /// its elements front-to-back, unwinding the *outermost* call first and
    /// corrupting the encoding; pop and drop instead.
    pub fn call(&self, site: CallSiteId, target: FunctionId) -> CallGuard<'_> {
        self.enter(site, target, CallDispatch::Direct)
    }

    /// Enters an instrumented indirect call (function pointer, vtable).
    pub fn call_indirect(&self, site: CallSiteId, target: FunctionId) -> CallGuard<'_> {
        self.enter(site, target, CallDispatch::Indirect)
    }

    fn enter(&self, site: CallSiteId, target: FunctionId, dispatch: CallDispatch) -> CallGuard<'_> {
        let mut engine = self.tracker.engine.lock();
        let caller = engine
            .snapshot(self.tid)
            .leaf;
        let _ = engine.call(self.tid, site, caller, target, dispatch, false);
        CallGuard {
            handle: self,
            site,
            caller,
            callee: target,
        }
    }

    /// Captures the thread's current encoded context (cheap; decode later).
    pub fn sample(&self) -> EncodedContext {
        self.tracker.engine.lock().sample(self.tid).0
    }

    /// Captures the current context as a migratable *task origin* (§5.3,
    /// "work migration"): hand the returned [`TaskContext`] to whatever
    /// executor thread will run the work and have it call
    /// [`ThreadHandle::adopt`].
    pub fn capture_task(&self, handoff_site: CallSiteId) -> TaskContext {
        let engine = self.tracker.engine.lock();
        TaskContext {
            site: handoff_site,
            origin: engine.snapshot(self.tid),
        }
    }

    /// Adopts a migrated task's origin context for the duration of the
    /// returned guard: samples taken while it is alive decode to
    /// `origin -> (handoff site) -> this thread's frames`. Nest adoptions
    /// like calls; the guard restores the previous creation link on drop.
    pub fn adopt(&self, task: &TaskContext) -> AdoptGuard<'_> {
        let mut engine = self.tracker.engine.lock();
        let previous = engine.adopt_spawn(
            self.tid,
            Some(crate::context::SpawnLink {
                site: task.site,
                parent: Box::new(task.origin.clone()),
            }),
        );
        AdoptGuard {
            handle: self,
            previous: Some(previous),
        }
    }
}

/// A calling context captured for work migration: the origin context plus
/// the hand-off call site. Cheap to clone and `Send` — attach one to every
/// queued task.
#[derive(Clone, Debug)]
pub struct TaskContext {
    site: CallSiteId,
    origin: EncodedContext,
}

impl TaskContext {
    /// The captured origin context.
    pub fn origin(&self) -> &EncodedContext {
        &self.origin
    }
}

/// RAII guard for an adopted task context; restores the thread's previous
/// creation link on drop.
#[derive(Debug)]
pub struct AdoptGuard<'t> {
    handle: &'t ThreadHandle,
    previous: Option<Option<crate::context::SpawnLink>>,
}

impl Drop for AdoptGuard<'_> {
    fn drop(&mut self) {
        if let Some(prev) = self.previous.take() {
            let mut engine = self.handle.tracker.engine.lock();
            let _ = engine.adopt_spawn(self.handle.tid, prev);
        }
    }
}

/// RAII guard for one instrumented call.
#[derive(Debug)]
pub struct CallGuard<'t> {
    handle: &'t ThreadHandle,
    site: CallSiteId,
    caller: FunctionId,
    callee: FunctionId,
}

impl Drop for CallGuard<'_> {
    fn drop(&mut self) {
        let mut engine = self.handle.tracker.engine.lock();
        let _ = engine.ret(self.handle.tid, self.site, self.caller, self.callee);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_guards_track_the_stack() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let f = tracker.define_function("f");
        let g = tracker.define_function("g");
        let s1 = tracker.define_call_site();
        let s2 = tracker.define_call_site();

        let th = tracker.register_thread(main_fn);
        {
            let _a = th.call(s1, f);
            {
                let _b = th.call(s2, g);
                let ctx = th.sample();
                let path = tracker.decode(&ctx).unwrap();
                assert_eq!(tracker.format_path(&path), "main -> f -> g");
            }
            let ctx = th.sample();
            assert_eq!(tracker.format_path(&tracker.decode(&ctx).unwrap()), "main -> f");
        }
        let ctx = th.sample();
        assert_eq!(tracker.format_path(&tracker.decode(&ctx).unwrap()), "main");
        assert_eq!(ctx.id, 0);
    }

    #[test]
    fn recursion_through_guards_decodes() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let rec = tracker.define_function("rec");
        // One site lives in one function: the entry call site is in main,
        // the recursive site is in rec.
        let entry_site = tracker.define_call_site();
        let rec_site = tracker.define_call_site();
        let th = tracker.register_thread(main_fn);

        fn go(th: &ThreadHandle, tracker: &Tracker, s: CallSiteId, rec: FunctionId, depth: u32) {
            let _g = th.call(s, rec);
            if depth > 0 {
                go(th, tracker, s, rec, depth - 1);
            } else {
                let path = tracker.decode(&th.sample()).unwrap();
                assert_eq!(path.depth(), 7); // main + 6 rec frames
            }
        }
        let _entry = th.call(entry_site, rec);
        go(&th, &tracker, rec_site, rec, 4);
    }

    #[test]
    fn real_threads_with_spawn_contexts() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let worker_fn = tracker.define_function("worker");
        let job = tracker.define_function("job");
        let dispatch = tracker.define_call_site();
        let spawn_site = tracker.define_call_site();
        let job_site = tracker.define_call_site();

        let main_th = tracker.register_thread(main_fn);
        let _in_dispatch = main_th.call(dispatch, worker_fn);

        crossbeam::scope(|scope| {
            let t = &tracker;
            let main_th = &main_th;
            scope.spawn(move |_| {
                let th = t.register_spawned_thread(worker_fn, main_th, spawn_site);
                let _g = th.call(job_site, job);
                let path = t.decode(&th.sample()).unwrap();
                // Full context crosses the thread boundary.
                assert_eq!(t.format_path(&path), "main -> worker -> worker -> job");
            });
        })
        .unwrap();
    }

    #[test]
    fn adopted_tasks_carry_their_origin() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let producer = tracker.define_function("producer");
        let worker_fn = tracker.define_function("worker");
        let body = tracker.define_function("body");
        let s_prod = tracker.define_call_site();
        let s_handoff = tracker.define_call_site();
        let s_spawn = tracker.define_call_site();
        let s_body = tracker.define_call_site();

        let main_th = tracker.register_thread(main_fn);
        let task = {
            let _g = main_th.call(s_prod, producer);
            main_th.capture_task(s_handoff)
        };
        let worker = tracker.register_spawned_thread(worker_fn, &main_th, s_spawn);
        // Without adoption: attributed to the worker's own spawn chain.
        {
            let _g = worker.call(s_body, body);
            let p = tracker.decode(&worker.sample()).unwrap();
            assert_eq!(tracker.format_path(&p), "main -> worker -> body");
        }
        // With adoption: attributed to the producer context.
        {
            let _adopt = worker.adopt(&task);
            let _g = worker.call(s_body, body);
            let p = tracker.decode(&worker.sample()).unwrap();
            assert_eq!(
                tracker.format_path(&p),
                "main -> producer -> worker -> body"
            );
            assert_eq!(task.origin().leaf, producer);
        }
        // Guard dropped: back to the spawn chain.
        let p = tracker.decode(&worker.sample()).unwrap();
        assert_eq!(tracker.format_path(&p), "main -> worker");
    }

    #[test]
    fn stats_are_reachable() {
        let tracker = Tracker::new();
        let main_fn = tracker.define_function("main");
        let f = tracker.define_function("f");
        let s = tracker.define_call_site();
        let th = tracker.register_thread(main_fn);
        for _ in 0..50 {
            let _g = th.call(s, f);
        }
        let stats = tracker.stats();
        assert_eq!(stats.traps, 1);
        assert!(stats.calls >= 50);
    }
}
