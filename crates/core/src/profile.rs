//! Hot-calling-context profiles from decoded samples.
//!
//! The flip side of cheap context capture: once contexts are sampled as
//! tiny encoded values and decoded offline, a profiler aggregates them into
//! a weighted context tree (the classic CCT view — but built *offline* from
//! samples, at zero steady-state cost beyond DACCE's encoding). This module
//! provides the aggregation and a flamegraph-style text rendering; it is
//! what `examples/adaptive_profiler.rs` and the analysis side of
//! [`crate::export`] build on.

use std::collections::HashMap;

use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::{ContextPath, PathStep};

/// An aggregated, weighted profile over calling contexts.
///
/// # Example
///
/// ```
/// use dacce::HotContextProfile;
/// use dacce_callgraph::FunctionId;
/// use dacce_program::{ContextPath, PathStep};
///
/// let ctx = ContextPath(vec![PathStep { site: None, func: FunctionId::new(0) }]);
/// let mut profile = HotContextProfile::new();
/// profile.record(&ctx);
/// profile.record(&ctx);
/// assert_eq!(profile.top(1)[0].1, 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct HotContextProfile {
    counts: HashMap<Vec<PathStep>, u64>,
    total: u64,
}

impl HotContextProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decoded context with weight 1.
    pub fn record(&mut self, path: &ContextPath) {
        self.record_weighted(path, 1);
    }

    /// Records one decoded context with an explicit weight. Zero weights
    /// are dropped: they carry no heat, and materialising them would leave
    /// phantom contexts in [`Self::distinct`]/[`Self::top`] while keeping
    /// `total` unchanged.
    pub fn record_weighted(&mut self, path: &ContextPath, weight: u64) {
        if weight == 0 {
            return;
        }
        *self.counts.entry(path.0.clone()).or_insert(0) += weight;
        self.total += weight;
    }

    /// Merges another profile into this one. The invariant `total == sum of
    /// counts` is preserved: the total grows by exactly the weight copied
    /// over (zero-count entries, should `other` somehow hold any, are
    /// skipped rather than materialised).
    pub fn merge(&mut self, other: &HotContextProfile) {
        let mut copied = 0u64;
        for (path, &count) in &other.counts {
            if count == 0 {
                continue;
            }
            *self.counts.entry(path.clone()).or_insert(0) += count;
            copied += count;
        }
        self.total += copied;
    }

    /// Total recorded weight.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct contexts.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` hottest contexts, descending by weight (ties broken by path
    /// for determinism).
    pub fn top(&self, k: usize) -> Vec<(ContextPath, u64)> {
        let mut rows: Vec<(ContextPath, u64)> = self
            .counts
            .iter()
            .map(|(p, &c)| (ContextPath(p.clone()), c))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0 .0.cmp(&b.0 .0)));
        rows.truncate(k);
        rows
    }

    /// Renders the profile as an indented context tree with inclusive
    /// weights — children sorted hottest-first:
    ///
    /// ```text
    /// 120 main
    ///  80 ├─ handle_request
    ///  60 │  ├─ parse
    /// ```
    pub fn render_tree(&self, mut name: impl FnMut(FunctionId) -> String) -> String {
        #[derive(Default)]
        struct Node {
            inclusive: u64,
            children: HashMap<(Option<CallSiteId>, FunctionId), usize>,
        }
        let mut nodes: Vec<Node> = vec![Node::default()];
        for (path, &count) in &self.counts {
            let mut cur = 0usize;
            nodes[cur].inclusive += count;
            for step in path {
                let key = (step.site, step.func);
                let next = match nodes[cur].children.get(&key) {
                    Some(&i) => i,
                    None => {
                        let i = nodes.len();
                        nodes.push(Node::default());
                        nodes[cur].children.insert(key, i);
                        i
                    }
                };
                nodes[next].inclusive += count;
                cur = next;
            }
        }

        let mut out = String::new();
        // Iterative DFS with explicit sort for determinism.
        fn emit(
            nodes: &[Node],
            idx: usize,
            depth: usize,
            label: String,
            out: &mut String,
        ) -> Vec<((Option<CallSiteId>, FunctionId), usize)> {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "{:>8} {}{}",
                nodes[idx].inclusive,
                "  ".repeat(depth),
                label
            );
            let mut kids: Vec<_> = nodes[idx].children.iter().map(|(&k, &v)| (k, v)).collect();
            kids.sort_by(|a, b| {
                nodes[b.1]
                    .inclusive
                    .cmp(&nodes[a.1].inclusive)
                    .then_with(|| a.0.cmp(&b.0))
            });
            kids
        }
        let mut stack: Vec<((Option<CallSiteId>, FunctionId), usize, usize)> = Vec::new();
        let root_kids = {
            let mut kids: Vec<_> = nodes[0].children.iter().map(|(&k, &v)| (k, v)).collect();
            kids.sort_by(|a, b| {
                nodes[b.1]
                    .inclusive
                    .cmp(&nodes[a.1].inclusive)
                    .then_with(|| a.0.cmp(&b.0))
            });
            kids
        };
        for (k, v) in root_kids.into_iter().rev() {
            stack.push((k, v, 0));
        }
        while let Some(((_, func), idx, depth)) = stack.pop() {
            let kids = emit(&nodes, idx, depth, name(func), &mut out);
            for (k, v) in kids.into_iter().rev() {
                stack.push((k, v, depth + 1));
            }
        }
        out
    }
}

impl Extend<ContextPath> for HotContextProfile {
    fn extend<T: IntoIterator<Item = ContextPath>>(&mut self, iter: T) {
        for p in iter {
            self.record(&p);
        }
    }
}

impl FromIterator<ContextPath> for HotContextProfile {
    fn from_iter<T: IntoIterator<Item = ContextPath>>(iter: T) -> Self {
        let mut p = HotContextProfile::new();
        p.extend(iter);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn step(site: Option<u32>, func: u32) -> PathStep {
        PathStep {
            site: site.map(CallSiteId::new),
            func: f(func),
        }
    }
    fn path(steps: &[(Option<u32>, u32)]) -> ContextPath {
        ContextPath(steps.iter().map(|&(s, fu)| step(s, fu)).collect())
    }

    #[test]
    fn counts_and_top() {
        let mut p = HotContextProfile::new();
        let a = path(&[(None, 0), (Some(1), 1)]);
        let b = path(&[(None, 0), (Some(2), 2)]);
        p.record(&a);
        p.record(&a);
        p.record(&b);
        assert_eq!(p.total(), 3);
        assert_eq!(p.distinct(), 2);
        let top = p.top(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].1, 2);
        assert_eq!(top[0].0, a);
    }

    #[test]
    fn merge_adds_counts() {
        let a = path(&[(None, 0)]);
        let mut p1: HotContextProfile = vec![a.clone()].into_iter().collect();
        let p2: HotContextProfile = vec![a.clone(), a.clone()].into_iter().collect();
        p1.merge(&p2);
        assert_eq!(p1.total(), 3);
        assert_eq!(p1.top(1)[0].1, 3);
    }

    #[test]
    fn tree_rendering_aggregates_prefixes() {
        let mut p = HotContextProfile::new();
        p.record(&path(&[(None, 0), (Some(1), 1), (Some(2), 2)]));
        p.record(&path(&[(None, 0), (Some(1), 1), (Some(3), 3)]));
        p.record(&path(&[(None, 0), (Some(1), 1), (Some(3), 3)]));
        let tree = p.render_tree(|fu| format!("fn{}", fu.raw()));
        let lines: Vec<&str> = tree.lines().collect();
        // Root fn0 inclusive 3, fn1 inclusive 3, fn3 (2) before fn2 (1).
        assert!(lines[0].contains('3') && lines[0].contains("fn0"));
        assert!(lines[1].contains("fn1"));
        assert!(lines[2].contains("fn3"), "{tree}");
        assert!(lines[3].contains("fn2"), "{tree}");
    }

    #[test]
    fn weighted_records() {
        let mut p = HotContextProfile::new();
        p.record_weighted(&path(&[(None, 0)]), 10);
        assert_eq!(p.total(), 10);
        assert_eq!(p.top(5)[0].1, 10);
    }

    #[test]
    fn empty_profile_renders_empty() {
        let p = HotContextProfile::new();
        assert_eq!(p.render_tree(|_| String::new()), "");
        assert!(p.top(3).is_empty());
        assert_eq!(p.distinct(), 0);
    }
}
