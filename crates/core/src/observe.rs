//! Observability glue: the engine-facing facade over `dacce-obs`.
//!
//! Compiled two ways under the `obs` cargo feature (default on):
//!
//! * **enabled** — [`Observability`] bundles an event [`dacce_obs::Journal`]
//!   and a [`dacce_obs::MetricsRegistry`] behind `Arc`s; [`ObsWriter`] wraps
//!   a per-producer journal writer. Every hook below is a thin forwarding
//!   call; journal hooks check the runtime enable flag (one relaxed load)
//!   before constructing anything.
//! * **disabled** — both types are zero-sized and every hook is an empty
//!   `#[inline]` function, so the instrumentation sites compile away
//!   entirely (the ISSUE's "compile-out via feature").
//!
//! The hook methods take plain integers rather than `dacce-obs` types so
//! the call sites in `shared.rs` / `engine.rs` / `tracker.rs` are
//! identical under both configurations — no `cfg` at any call site.

#[cfg(feature = "obs")]
mod imp {
    use std::sync::Arc;

    use dacce_obs::{
        events_to_json, EventKind, GenerationInfo, Journal, JournalBatch, JournalConfig,
        JournalWriter, MetricsRegistry, MetricsSnapshot, SpanTimeline,
    };

    use crate::stats::DegradedState;

    /// The per-thread deterministic sampler (re-exported so engine and
    /// tracker instantiate it without `cfg` at the call site).
    pub(crate) use dacce_obs::profiler::fingerprint64;
    pub(crate) use dacce_obs::Sampler;

    /// Thread id stamped on events emitted by the shared slow path when no
    /// specific thread is acting (re-encode cores, warm starts).
    pub const RUNTIME_TID: u32 = u32::MAX;

    /// Re-encode spans retained in a postmortem document.
    const POSTMORTEM_SPANS: usize = 32;

    /// Shared observability handle: the event journal plus the metrics
    /// registry. Cloning shares both (the clones observe the same run).
    #[derive(Clone, Debug)]
    pub struct Observability {
        journal: Arc<Journal>,
        metrics: Arc<MetricsRegistry>,
    }

    impl Default for Observability {
        fn default() -> Self {
            Self::with_config(JournalConfig::default())
        }
    }

    impl Observability {
        /// Creates a handle with explicit journal parameters. Journaling
        /// starts disabled; metrics are always collected (slow-path only).
        #[must_use]
        pub fn with_config(config: JournalConfig) -> Self {
            Observability {
                journal: Arc::new(Journal::new(config)),
                metrics: Arc::new(MetricsRegistry::default()),
            }
        }

        /// Creates a handle from plain settings (the engine-config view of
        /// [`JournalConfig`]; both compile variants expose this signature).
        #[must_use]
        pub(crate) fn from_settings(ring_capacity: usize, overflow_watermark: u32) -> Self {
            Self::with_config(JournalConfig {
                ring_capacity,
                overflow_watermark,
            })
        }

        /// The event journal.
        #[must_use]
        pub fn journal(&self) -> &Arc<Journal> {
            &self.journal
        }

        /// The metrics registry.
        #[must_use]
        pub fn metrics(&self) -> &Arc<MetricsRegistry> {
            &self.metrics
        }

        /// Turns event journaling on or off at runtime.
        pub fn set_journaling(&self, on: bool) {
            self.journal.set_enabled(on);
        }

        /// Whether event journaling is currently on.
        #[must_use]
        pub fn journaling(&self) -> bool {
            self.journal.enabled()
        }

        /// Drains the journal: all events published since the last drain,
        /// merged across threads in global sequence order.
        #[must_use]
        pub fn drain_journal(&self) -> JournalBatch {
            self.journal.drain()
        }

        /// A point-in-time copy of every metric, with the journal's drop
        /// counter folded in.
        #[must_use]
        pub fn snapshot(&self) -> MetricsSnapshot {
            let mut snap = self.metrics.snapshot();
            snap.journal_dropped = self.journal.dropped_total();
            snap
        }

        /// Registers a journal writer for one producer thread.
        pub(crate) fn writer(&self, tid: u32) -> ObsWriter {
            ObsWriter {
                writer: self.journal.writer(tid),
            }
        }

        // --- metrics hooks (always-on; all slow-path or sample-rate) ---

        pub(crate) fn on_trap(&self, ns: u64) {
            self.metrics.traps.inc();
            self.metrics.trap_ns.observe(ns);
        }

        pub(crate) fn on_edge_discovered(&self) {
            self.metrics.edges_discovered.inc();
        }

        pub(crate) fn on_site_patched(&self) {
            self.metrics.sites_patched.inc();
        }

        pub(crate) fn on_reencode(&self, applied: bool, cost: u64) {
            self.metrics.reencodes.inc();
            self.metrics.reencode_cost.observe(cost);
            if !applied {
                self.metrics.reencode_aborts.inc();
            }
        }

        pub(crate) fn on_migration(&self) {
            self.metrics.migrations.inc();
        }

        pub(crate) fn on_cc_overflow(&self) {
            self.metrics.cc_overflows.inc();
        }

        pub(crate) fn on_sample(&self, cc_depth: u32, id: u64) {
            self.metrics.samples.inc();
            self.metrics.cc_depth.observe(u64::from(cc_depth));
            self.metrics.sampled_ids.observe(id);
        }

        pub(crate) fn on_profiler_sample(&self, cc_depth: u32, id: u64, weight: u64) {
            self.metrics.profiler_samples.inc();
            self.metrics.profiler_sample_weight.add(weight);
            self.metrics.cc_depth.observe(u64::from(cc_depth));
            self.metrics.sampled_ids.observe(id);
        }

        pub(crate) fn on_warm_start(&self, seeded: u64, pruned: u64) {
            self.metrics.warm_seeded_edges.add(seeded);
            self.metrics.warm_pruned_edges.add(pruned);
        }

        /// Records the compiled dispatch table's shape after a mutation:
        /// `occupied` allocated slots over a `span`-wide site-id range.
        pub(crate) fn record_dispatch(&self, occupied: u64, span: u64) {
            self.metrics.record_dispatch(occupied, span);
        }

        // --- degraded-mode hooks (fault injection / graceful paths) ---

        pub(crate) fn on_degraded_trap(&self) {
            self.metrics.degraded_traps.inc();
        }

        pub(crate) fn on_reencode_retry(&self) {
            self.metrics.reencode_retries.inc();
        }

        pub(crate) fn on_slot_failures(&self, n: u64) {
            if n != 0 {
                self.metrics.slot_failures.add(n);
            }
        }

        pub(crate) fn on_cc_spills(&self, n: u64) {
            if n != 0 {
                self.metrics.cc_spills.add(n);
            }
        }

        pub(crate) fn on_lock_poison(&self) {
            self.metrics.lock_poisonings.inc();
        }

        // --- shared-lineage hooks (fleet tenancy) ---

        pub(crate) fn on_lineage_adopt(&self) {
            self.metrics.lineage_adoptions.inc();
        }

        pub(crate) fn on_lineage_publish(&self) {
            self.metrics.lineage_publishes.inc();
        }

        pub(crate) fn on_lineage_diverge(&self) {
            self.metrics.lineage_divergences.inc();
        }

        /// Folds a batch of per-thread inline-cache probe outcomes in.
        pub(crate) fn on_icache(&self, hits: u64, misses: u64) {
            if hits != 0 {
                self.metrics.icache_hits.add(hits);
            }
            if misses != 0 {
                self.metrics.icache_misses.add(misses);
            }
        }

        // --- superop hooks (path memoization) ---

        /// Folds a batch of per-thread superop probe outcomes in.
        pub(crate) fn on_superops(&self, hits: u64, misses: u64) {
            if hits != 0 {
                self.metrics.superop_hits.add(hits);
            }
            if misses != 0 {
                self.metrics.superop_misses.add(misses);
            }
        }

        /// Counts compiled superops dropped by a dispatch-state change.
        pub(crate) fn on_superop_invalidations(&self, n: u64) {
            if n != 0 {
                self.metrics.superop_invalidations.add(n);
            }
        }

        /// Counts one snapshot publication (a superop epoch boundary).
        pub(crate) fn on_superop_republish(&self) {
            self.metrics.superop_republishes.add(1);
        }

        /// Records the superop table's shape after a recompile:
        /// `compiled` superops out of `candidates` installed windows.
        pub(crate) fn record_superops(&self, compiled: u64, candidates: u64) {
            self.metrics.record_superops(compiled, candidates);
        }

        pub(crate) fn record_generation(
            &self,
            generation: u32,
            nodes: u32,
            edges: u32,
            max_id: u64,
            cost: u64,
        ) {
            self.metrics.record_generation(GenerationInfo {
                generation,
                nodes,
                edges,
                max_id,
                cost,
            });
        }

        /// Renders the flight-recorder postmortem document: ring contents
        /// (peeked, not drained — the live journal consumer keeps every
        /// record), the generation table, the degraded state, and the
        /// last re-encode spans, in the versioned text format
        /// `dacce-lint --postmortem` validates.
        ///
        /// `Option` matches the obs-off stub, which has nothing to dump.
        #[allow(clippy::unnecessary_wraps)]
        pub(crate) fn render_postmortem(
            &self,
            reason: &str,
            generation: u32,
            max_id: u64,
            degraded: &DegradedState,
        ) -> Option<String> {
            use std::fmt::Write as _;
            let batch = self.journal.peek();
            let timeline = SpanTimeline::stitch(&batch.events);
            let spans = timeline.last(POSTMORTEM_SPANS);
            let snap = self.metrics.snapshot();
            let mut s = String::from("# dacce-postmortem v1\n");
            let _ = writeln!(s, "reason={reason}");
            let _ = writeln!(s, "generation={generation}");
            let _ = writeln!(s, "max_id={max_id}");
            let _ = writeln!(s, "spans={}", spans.len());
            let _ = writeln!(s, "events={}", batch.events.len());
            let _ = writeln!(s, "dropped={}", batch.dropped);
            s.push_str("[degraded]\n");
            let _ = writeln!(s, "active={}", u64::from(degraded.active));
            let _ = writeln!(s, "trap_nodes={}", degraded.trap_nodes.len());
            let _ = writeln!(s, "degraded_traps={}", degraded.degraded_traps);
            let _ = writeln!(s, "reencode_retries={}", degraded.reencode_retries);
            let _ = writeln!(s, "cc_spill_events={}", degraded.cc_spill_events);
            let _ = writeln!(s, "cc_spilled_peak={}", degraded.cc_spilled_peak);
            let _ = writeln!(s, "lock_poisonings={}", degraded.lock_poisonings);
            let _ = writeln!(s, "slot_failures={}", degraded.slot_failures);
            let _ = writeln!(s, "batch_errors={}", degraded.batch_errors);
            s.push_str("[generations]\n");
            s.push_str("generation,nodes,edges,max_id,cost\n");
            for g in &snap.generations {
                let _ = writeln!(
                    s,
                    "{},{},{},{},{}",
                    g.generation, g.nodes, g.edges, g.max_id, g.cost
                );
            }
            s.push_str("[spans]\n");
            s.push_str("tid,from,to,applied,cost,begin_seq,end_seq,pause_ns\n");
            for span in spans {
                let _ = writeln!(
                    s,
                    "{},{},{},{},{},{},{},{}",
                    span.tid,
                    span.from_generation,
                    span.to_generation,
                    u64::from(span.applied),
                    span.cost,
                    span.begin_seq,
                    span.end_seq,
                    span.pause_ns()
                );
            }
            s.push_str("[events]\n");
            s.push_str(&events_to_json(&batch.events));
            s.push('\n');
            Some(s)
        }
    }

    /// A per-producer journal writer. One per engine (single-threaded) or
    /// per tracker thread slot; the shared slow path has its own.
    #[derive(Debug)]
    pub(crate) struct ObsWriter {
        writer: JournalWriter,
    }

    impl ObsWriter {
        /// The fast-path gate: one relaxed load.
        #[inline]
        pub(crate) fn enabled(&self) -> bool {
            self.writer.enabled()
        }

        /// ccStack depth at which new high-water marks count as overflow.
        pub(crate) fn watermark(&self) -> u32 {
            self.writer.overflow_watermark()
        }

        pub(crate) fn trap(&self, tid: u32, site: u32, caller: u32, callee: u32) {
            self.writer.emit_for(
                tid,
                EventKind::Trap {
                    site,
                    caller,
                    callee,
                },
            );
        }

        pub(crate) fn edge_discovered(&self, tid: u32, site: u32, caller: u32, callee: u32) {
            self.writer.emit_for(
                tid,
                EventKind::EdgeDiscovered {
                    site,
                    caller,
                    callee,
                },
            );
        }

        pub(crate) fn site_patched(&self, tid: u32, site: u32, targets: u32) {
            self.writer
                .emit_for(tid, EventKind::SitePatched { site, targets });
        }

        pub(crate) fn reencode_begin(&self, generation: u32) {
            self.writer
                .emit_for(RUNTIME_TID, EventKind::ReencodeBegin { generation });
        }

        #[allow(clippy::too_many_arguments)]
        pub(crate) fn reencode_end(
            &self,
            generation: u32,
            applied: bool,
            cost: u64,
            nodes: u32,
            edges: u32,
            max_id: u64,
        ) {
            self.writer.emit_for(
                RUNTIME_TID,
                EventKind::ReencodeEnd {
                    generation,
                    applied,
                    cost,
                    nodes,
                    edges,
                    max_id,
                },
            );
        }

        #[inline]
        pub(crate) fn cc_push(&self, tid: u32, depth: u32) {
            self.writer.emit_for(tid, EventKind::CcPush { depth });
        }

        #[inline]
        pub(crate) fn cc_pop(&self, tid: u32, depth: u32) {
            self.writer.emit_for(tid, EventKind::CcPop { depth });
        }

        pub(crate) fn cc_overflow(&self, tid: u32, depth: u32) {
            self.writer.emit_for(tid, EventKind::CcOverflow { depth });
        }

        pub(crate) fn migration(&self, tid: u32, from: u32, to: u32) {
            self.writer.emit_for(tid, EventKind::Migration { from, to });
        }

        #[allow(clippy::too_many_arguments)]
        pub(crate) fn sample(
            &self,
            tid: u32,
            generation: u32,
            id: u64,
            site: u32,
            leaf: u32,
            root: u32,
            fingerprint: u32,
            weight: u32,
            depth: u32,
        ) {
            self.writer.emit_for(
                tid,
                EventKind::Sample {
                    generation,
                    id,
                    site,
                    leaf,
                    root,
                    fingerprint,
                    weight,
                    depth,
                },
            );
        }

        pub(crate) fn warm_seed(&self, seeded: u32, pruned: u32, max_id: u64) {
            self.writer.emit_for(
                RUNTIME_TID,
                EventKind::WarmSeed {
                    seeded,
                    pruned,
                    max_id,
                },
            );
        }
    }

    /// Wall-clock timer for trap-handling latency.
    pub(crate) struct TrapTimer(std::time::Instant);

    pub(crate) fn start_timer() -> TrapTimer {
        TrapTimer(std::time::Instant::now())
    }

    impl TrapTimer {
        pub(crate) fn elapsed_ns(&self) -> u64 {
            u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    //! Zero-sized no-op stand-ins; every hook compiles to nothing.

    use crate::stats::DegradedState;

    /// Inert stand-in for the profiler sampler: never fires, so every
    /// tick is a constant branch the optimiser removes.
    #[derive(Clone, Debug, Default)]
    pub(crate) struct Sampler;

    #[allow(clippy::unused_self, dead_code)]
    impl Sampler {
        pub(crate) fn new(_stride: u64, _seed: u64, _budget: u64) -> Sampler {
            Sampler
        }
        #[inline]
        pub(crate) fn tick(&mut self) -> Option<u64> {
            None
        }
        pub(crate) fn is_enabled(&self) -> bool {
            false
        }
        pub(crate) fn effective_stride(&self) -> u64 {
            0
        }
        pub(crate) fn taken(&self) -> u64 {
            0
        }
        pub(crate) fn remaining(&self) -> u64 {
            0
        }
        pub(crate) fn skip(&mut self, _n: u64) {}
    }

    /// ccStack fingerprint stub (no obs layer to correlate against).
    pub(crate) fn fingerprint64(_values: impl IntoIterator<Item = u64>) -> u32 {
        0
    }

    /// Inert observability placeholder (the `obs` feature is disabled).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Observability;

    impl Observability {
        pub(crate) fn from_settings(_ring_capacity: usize, _overflow_watermark: u32) -> Self {
            Observability
        }
        pub(crate) fn writer(&self, _tid: u32) -> ObsWriter {
            ObsWriter
        }
        pub(crate) fn render_postmortem(
            &self,
            _reason: &str,
            _generation: u32,
            _max_id: u64,
            _degraded: &DegradedState,
        ) -> Option<String> {
            None
        }
        pub(crate) fn on_profiler_sample(&self, _cc_depth: u32, _id: u64, _weight: u64) {}
        pub(crate) fn on_trap(&self, _ns: u64) {}
        pub(crate) fn on_edge_discovered(&self) {}
        pub(crate) fn on_site_patched(&self) {}
        pub(crate) fn on_reencode(&self, _applied: bool, _cost: u64) {}
        pub(crate) fn on_migration(&self) {}
        pub(crate) fn on_cc_overflow(&self) {}
        pub(crate) fn on_sample(&self, _cc_depth: u32, _id: u64) {}
        pub(crate) fn on_warm_start(&self, _seeded: u64, _pruned: u64) {}
        pub(crate) fn record_dispatch(&self, _occupied: u64, _span: u64) {}
        pub(crate) fn on_degraded_trap(&self) {}
        pub(crate) fn on_reencode_retry(&self) {}
        pub(crate) fn on_slot_failures(&self, _n: u64) {}
        pub(crate) fn on_cc_spills(&self, _n: u64) {}
        pub(crate) fn on_lock_poison(&self) {}
        pub(crate) fn on_lineage_adopt(&self) {}
        pub(crate) fn on_lineage_publish(&self) {}
        pub(crate) fn on_lineage_diverge(&self) {}
        pub(crate) fn on_icache(&self, _hits: u64, _misses: u64) {}
        pub(crate) fn on_superops(&self, _hits: u64, _misses: u64) {}
        pub(crate) fn on_superop_invalidations(&self, _n: u64) {}
        pub(crate) fn on_superop_republish(&self) {}
        pub(crate) fn record_superops(&self, _compiled: u64, _candidates: u64) {}
        pub(crate) fn record_generation(
            &self,
            _generation: u32,
            _nodes: u32,
            _edges: u32,
            _max_id: u64,
            _cost: u64,
        ) {
        }
    }

    #[derive(Clone, Copy, Debug, Default)]
    pub(crate) struct ObsWriter;

    #[allow(clippy::unused_self, clippy::too_many_arguments)]
    impl ObsWriter {
        #[inline]
        pub(crate) fn enabled(&self) -> bool {
            false
        }
        pub(crate) fn watermark(&self) -> u32 {
            u32::MAX
        }
        pub(crate) fn trap(&self, _tid: u32, _site: u32, _caller: u32, _callee: u32) {}
        pub(crate) fn edge_discovered(&self, _tid: u32, _site: u32, _caller: u32, _callee: u32) {}
        pub(crate) fn site_patched(&self, _tid: u32, _site: u32, _targets: u32) {}
        pub(crate) fn reencode_begin(&self, _generation: u32) {}
        pub(crate) fn reencode_end(
            &self,
            _generation: u32,
            _applied: bool,
            _cost: u64,
            _nodes: u32,
            _edges: u32,
            _max_id: u64,
        ) {
        }
        #[inline]
        pub(crate) fn cc_push(&self, _tid: u32, _depth: u32) {}
        #[inline]
        pub(crate) fn cc_pop(&self, _tid: u32, _depth: u32) {}
        pub(crate) fn cc_overflow(&self, _tid: u32, _depth: u32) {}
        pub(crate) fn migration(&self, _tid: u32, _from: u32, _to: u32) {}
        pub(crate) fn sample(
            &self,
            _tid: u32,
            _generation: u32,
            _id: u64,
            _site: u32,
            _leaf: u32,
            _root: u32,
            _fingerprint: u32,
            _weight: u32,
            _depth: u32,
        ) {
        }
        pub(crate) fn warm_seed(&self, _seeded: u32, _pruned: u32, _max_id: u64) {}
    }

    pub(crate) struct TrapTimer;

    pub(crate) fn start_timer() -> TrapTimer {
        TrapTimer
    }

    impl TrapTimer {
        pub(crate) fn elapsed_ns(&self) -> u64 {
            0
        }
    }
}

pub use imp::Observability;
pub(crate) use imp::{fingerprint64, start_timer, ObsWriter, Sampler};
