//! Engine self-checks.
//!
//! [`DacceEngine::check_invariants`] audits the internal consistency of the
//! engine at a safe point (between events). It is deliberately exhaustive
//! and O(state size) — meant for tests, debugging sessions and the
//! randomized differential harness, not for the hot path. The concurrent
//! [`crate::Tracker`] reuses the same checks over its shared state and
//! every live thread slot via `Tracker::check_invariants`.

use std::collections::HashMap;

use dacce_callgraph::{CallSiteId, DecodeDict, FunctionId};

use crate::decode::decode_thread;
use crate::engine::DacceEngine;
use crate::patch::SitePatch;
use crate::shared::{lookup_in, SharedState};
use crate::thread::ThreadCtx;

/// Shared-state invariants: dictionaries in lock step with `gTimeStamp`,
/// `maxID` agreement, every graph edge patched with a consistent owner,
/// and the compiled dispatch table agreeing with the logical patch table
/// for every `(site, callee)` pair.
pub(crate) fn check_shared(sh: &SharedState) -> Result<(), String> {
    // 1 & 2: dictionaries.
    if sh.dicts.len() != sh.ts.index() + 1 {
        return Err(format!(
            "dictionary count {} out of step with timestamp {}",
            sh.dicts.len(),
            sh.ts
        ));
    }
    let latest = sh
        .dicts
        .latest()
        .ok_or_else(|| "no dictionary recorded".to_string())?;
    if latest.max_id() != sh.max_id {
        return Err(format!(
            "latest dictionary maxID {} != live maxID {}",
            latest.max_id(),
            sh.max_id
        ));
    }

    // 3: graph edges vs patch states and owners.
    for (_, e) in sh.graph.edges() {
        let state = sh
            .patches
            .get(e.site)
            .ok_or_else(|| format!("edge {e:?} has no site state"))?;
        if matches!(state.patch, SitePatch::Trap) {
            return Err(format!("executed site {} still patched as trap", e.site));
        }
        match sh.site_owner.get(&e.site) {
            Some(&owner) if owner == e.caller => {}
            Some(&owner) => {
                return Err(format!(
                    "site {} owner {owner} disagrees with edge caller {}",
                    e.site, e.caller
                ))
            }
            None => return Err(format!("site {} has no recorded owner", e.site)),
        }
    }

    // 4: the compiled dispatch table is the flattening of the patch table.
    check_dispatch(sh)?;

    // 5: degraded-state bookkeeping is arithmetically consistent.
    check_degraded(sh)
}

/// Exhaustively cross-checks the flat dispatch table against the logical
/// patch table: every patched site must have a compiled record whose
/// `resolve` agrees with [`lookup_in`] for every node of the call graph
/// (including unknown-target traps), compiled slots must be unique, and no
/// record may exist for an unpatched site.
///
/// Degraded encodings are accepted: with an injected dispatch-slot cap a
/// patched site may legitimately have *no* compiled record (it was starved
/// and traps on every call). Such sites are exempt from the per-callee
/// equivalence check — trapping is always sound — but must be fully
/// accounted for by the table's refusal counter.
fn check_dispatch(sh: &SharedState) -> Result<(), String> {
    let mut nodes: Vec<FunctionId> = sh.graph.nodes().to_vec();
    // Probe an id the graph has never seen so unknown-callee traps are
    // covered too.
    nodes.push(FunctionId::new(u32::MAX - 1));
    let mut compiled = 0usize;
    let mut seen_slots = std::collections::HashSet::new();
    for (site, slot, _) in sh.dispatch.iter_compiled() {
        if sh.patches.get(site).is_none() {
            return Err(format!(
                "dispatch table has a record for unpatched site {site}"
            ));
        }
        if !seen_slots.insert(slot) {
            return Err(format!("dispatch slot {slot} assigned to {site} twice"));
        }
        compiled += 1;
    }
    let mut starved = 0usize;
    for (&site, _) in sh.patches.iter() {
        if !sh.dispatch.iter_compiled().any(|(s, _, _)| s == site) {
            if sh.dispatch.slot_failures() == 0 {
                return Err(format!("patched site {site} has no compiled record"));
            }
            // Starved by the injected slot cap: permanently traps.
            starved += 1;
            continue;
        }
        for &callee in &nodes {
            let flat = sh.dispatch.resolve(site, callee, &sh.cost);
            let logical = lookup_in(&sh.patches, &sh.cost, site, callee);
            if flat != logical {
                return Err(format!(
                    "dispatch disagreement at ({site}, {callee}): \
                     flat {flat:?} != logical {logical:?}"
                ));
            }
        }
    }
    if compiled + starved != sh.patches.len() {
        return Err(format!(
            "{compiled} compiled + {starved} starved records != {} patched sites",
            sh.patches.len()
        ));
    }
    if starved > 0 && sh.dispatch.slot_failures() < starved as u64 {
        return Err(format!(
            "{starved} starved sites but only {} recorded slot refusals",
            sh.dispatch.slot_failures()
        ));
    }
    Ok(())
}

/// Degraded-state arithmetic: demoted nodes must exist in the call graph,
/// and the counters must be mutually consistent (a node can only be
/// demoted by a trap, and degradation is monotone with the overflow
/// switch).
pub(crate) fn check_degraded(sh: &SharedState) -> Result<(), String> {
    let d = &sh.stats.degraded;
    if d.active && !sh.reencode_overflowed {
        return Err("degraded mode active but re-encoding still enabled".to_string());
    }
    for &raw in &d.trap_nodes {
        if !sh.graph.nodes().contains(&FunctionId::new(raw)) {
            return Err(format!("degraded node {raw} is not in the call graph"));
        }
    }
    if d.degraded_traps < d.trap_nodes.len() as u64 {
        return Err(format!(
            "{} degraded traps cannot have demoted {} nodes",
            d.degraded_traps,
            d.trap_nodes.len()
        ));
    }
    if (!d.trap_nodes.is_empty() || d.degraded_traps > 0) && !d.active {
        return Err("degraded traps recorded without degraded mode".to_string());
    }
    if d.slot_failures < sh.dispatch.slot_failures() {
        return Err(format!(
            "stats record {} slot failures but the table refused {}",
            d.slot_failures,
            sh.dispatch.slot_failures()
        ));
    }
    Ok(())
}

/// Per-thread invariants against the dictionary the thread's context is
/// stamped with: shadow-stack monotonicity, id within the encodable budget
/// `[0, 2*maxID + 1]`, and the live context decoding to a root-to-current
/// path. `label` names the thread in error messages.
pub(crate) fn check_thread(
    dict: &DecodeDict,
    owners: &HashMap<CallSiteId, FunctionId>,
    max_id: u64,
    label: &str,
    ctx: &ThreadCtx,
) -> Result<(), String> {
    let budget = 2u128 * u128::from(max_id) + 1;
    if u128::from(ctx.id) > budget {
        return Err(format!(
            "{label}: id {} outside encodable range [0, {budget}]",
            ctx.id
        ));
    }
    let mut prev = 0usize;
    for frame in &ctx.shadow {
        if frame.saved_cc_len > ctx.cc.depth() {
            return Err(format!(
                "{label}: shadow frame saved ccStack length {} exceeds depth {}",
                frame.saved_cc_len,
                ctx.cc.depth()
            ));
        }
        if frame.saved_cc_len < prev {
            return Err(format!(
                "{label}: shadow saved ccStack lengths not monotone"
            ));
        }
        prev = frame.saved_cc_len;
    }
    let path = decode_thread(
        dict,
        ctx.id,
        ctx.current,
        ctx.root,
        ctx.cc.entries(),
        owners,
    )
    .map_err(|e| format!("{label}: live context does not decode: {e}"))?;
    match (path.0.first(), path.0.last()) {
        (Some(first), Some(last)) => {
            if first.func != ctx.root {
                return Err(format!(
                    "{label}: decoded root {} != thread root {}",
                    first.func, ctx.root
                ));
            }
            if last.func != ctx.current {
                return Err(format!(
                    "{label}: decoded leaf {} != current {}",
                    last.func, ctx.current
                ));
            }
        }
        _ => return Err(format!("{label}: decoded empty path")),
    }
    Ok(())
}

impl DacceEngine {
    /// Checks every internal invariant; returns a description of the first
    /// violation.
    ///
    /// Invariants checked:
    ///
    /// 1. one decode dictionary per timestamp, in lock step with
    ///    `gTimeStamp`;
    /// 2. the latest dictionary's `maxID` equals the live `maxID`;
    /// 3. every graph edge's site has a patch state and a recorded owner
    ///    function equal to the edge's caller;
    /// 4. per thread: the shadow stack is monotone (saved ccStack lengths
    ///    never exceed the current depth and never decrease upward), and
    ///    the thread's current context decodes to a path rooted at the
    ///    thread root and ending at its current function;
    /// 5. the id of every thread is within the encodable range
    ///    `[0, 2*maxID + 1]`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        check_shared(&self.shared)?;
        let latest = self
            .dicts()
            .latest()
            .ok_or_else(|| "no dictionary recorded".to_string())?;
        for (tid, ctx) in &self.threads {
            check_thread(
                latest,
                &self.shared.site_owner,
                self.max_id(),
                &tid.to_string(),
                ctx,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DacceConfig;
    use dacce_program::runtime::CallDispatch;
    use dacce_program::{CostModel, ThreadId};

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    #[test]
    fn fresh_engine_passes() {
        let mut e = DacceEngine::new(DacceConfig::default(), CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        e.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold_across_calls_and_reencodes() {
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        for round in 0..5u32 {
            for i in 0..4u32 {
                let caller = if i == 0 { f(0) } else { f(i) };
                let _ = e.call(
                    ThreadId::MAIN,
                    s(round * 4 + i),
                    caller,
                    f(i + 1),
                    CallDispatch::Direct,
                    false,
                );
                e.check_invariants().unwrap();
            }
            for i in (0..4u32).rev() {
                let caller = if i == 0 { f(0) } else { f(i) };
                let _ = e.ret(ThreadId::MAIN, s(round * 4 + i), caller, f(i + 1));
                e.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn corrupted_id_is_detected() {
        let mut e = DacceEngine::new(DacceConfig::default(), CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        // Reach in and corrupt the thread id beyond the encodable range.
        e.threads.get_mut(&ThreadId::MAIN).unwrap().id = u64::MAX;
        let err = e.check_invariants().unwrap_err();
        assert!(err.contains("outside encodable range"), "{err}");
    }

    #[test]
    fn corrupted_current_function_is_detected() {
        let mut e = DacceEngine::new(DacceConfig::default(), CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        e.threads.get_mut(&ThreadId::MAIN).unwrap().current = f(7);
        let err = e.check_invariants().unwrap_err();
        assert!(
            err.contains("does not decode") || err.contains("decoded"),
            "{err}"
        );
    }
}
