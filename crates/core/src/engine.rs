//! The DACCE engine: dynamic encoding, the runtime handler, and per-thread
//! instrumentation execution.
//!
//! The engine is the library-level heart of the system, structured as two
//! layers since the concurrency split (see `DESIGN.md`, "Concurrency
//! architecture"):
//!
//! * [`crate::shared::SharedState`] — everything global: the dynamically
//!   growing call graph, the per-site patch states (the "generated code"),
//!   the versioned decode dictionaries, trigger state and statistics.
//! * [`crate::fastpath`] — pure per-thread instrumentation execution over a
//!   read-only encoding view.
//!
//! `DacceEngine` composes the two behind the original single-threaded API:
//! it owns the shared state plus every [`ThreadCtx`] and is driven with
//! call/return events by the interpreter. The concurrent
//! [`crate::Tracker`] composes the *same* two layers differently — shared
//! state behind a lock, thread contexts owned by their threads.
//!
//! The adaptive re-encoding machinery lives in [`crate::reencode`]
//! (implemented as further methods on [`DacceEngine`]).

use std::collections::HashMap;

use dacce_callgraph::{CallGraph, CallSiteId, DictStore, FunctionId, TimeStamp};
use dacce_program::runtime::CallDispatch;
use dacce_program::{ContextPath, CostModel, ThreadId};

use crate::config::DacceConfig;
use crate::context::{EncodedContext, SpawnLink};
use crate::decode::DecodeError;
use crate::fastpath;
use crate::observe::Sampler;
use crate::profile::HotContextProfile;
use crate::shared::SharedState;
use crate::stats::DacceStats;
use crate::thread::ThreadCtx;

/// The DACCE engine. See the crate docs for the big picture.
///
/// # Example
///
/// Drive the engine directly with call/return events (the interpreter and
/// the [`crate::Tracker`] both reduce to this):
///
/// ```
/// use dacce::{DacceConfig, DacceEngine};
/// use dacce_callgraph::{CallSiteId, FunctionId};
/// use dacce_program::{runtime::CallDispatch, CostModel, ThreadId};
///
/// let mut engine = DacceEngine::new(DacceConfig::default(), CostModel::default());
/// let (main, f, site) = (FunctionId::new(0), FunctionId::new(1), CallSiteId::new(0));
/// engine.attach_main(main);
/// engine.thread_start(ThreadId::MAIN, main, None);
///
/// engine.call(ThreadId::MAIN, site, main, f, CallDispatch::Direct, false);
/// let (snapshot, _cost) = engine.sample(ThreadId::MAIN);
/// let path = engine.decode(&snapshot)?;
/// assert_eq!(path.depth(), 2); // main -> f
/// engine.ret(ThreadId::MAIN, site, main, f);
/// # Ok::<(), dacce::DecodeError>(())
/// ```
#[derive(Debug)]
pub struct DacceEngine {
    pub(crate) shared: SharedState,
    pub(crate) threads: HashMap<ThreadId, ThreadCtx>,
    /// Continuous-profiler sampler over the engine's single call stream.
    sampler: Sampler,
}

impl DacceEngine {
    /// Creates an engine with the given configuration and cost model.
    pub fn new(config: DacceConfig, cost: CostModel) -> Self {
        let sampler = Sampler::new(
            config.profiler_stride,
            config.profiler_seed,
            config.profiler_budget,
        );
        DacceEngine {
            shared: SharedState::new(config, cost),
            threads: HashMap::new(),
            sampler,
        }
    }

    /// Initialises the engine for a program entered at `main`: the call
    /// graph contains only `main` and everything else is discovered at
    /// runtime (§3: "It starts with a call graph containing only function
    /// main").
    pub fn attach_main(&mut self, main: FunctionId) {
        self.shared.attach_main(main);
    }

    /// Pre-seeds the engine from a static call graph (see [`crate::warm`]).
    /// Must be called after [`DacceEngine::attach_main`] and before any
    /// thread starts.
    ///
    /// # Panics
    ///
    /// Panics if any thread has already been registered, or if any call
    /// event or re-encoding already happened.
    pub fn warm_start(
        &mut self,
        seed: &crate::warm::WarmStartSeed,
    ) -> crate::warm::WarmStartReport {
        assert!(
            self.threads.is_empty(),
            "warm_start must precede thread_start"
        );
        self.shared.warm_start(seed)
    }

    /// Attaches this engine to a shared encoding lineage, adopting its
    /// latest generation wholesale — the non-founding tenant's replacement
    /// for `attach_main` + `warm_start` (zero cold-start traps for every
    /// edge the lineage already encodes). Returns the adopted generation.
    ///
    /// # Panics
    ///
    /// Panics if a thread already started or the engine is already
    /// attached to a lineage.
    pub fn attach_lineage(&mut self, lineage: &crate::lineage::EncodingLineage) -> u64 {
        assert!(
            self.threads.is_empty(),
            "attach_lineage must precede thread_start"
        );
        assert!(
            self.shared.lineage.is_none(),
            "engine already attached to a lineage"
        );
        let state = lineage.current();
        let generation = state.generation;
        self.shared.lineage = Some(lineage.clone());
        self.shared.adopt_lineage_state(&state);
        generation
    }

    /// Founds a shared lineage (generation 0) from this engine's current
    /// encoding state, addressed by `hash` — the first tenant of a program
    /// calls this after `attach_main` (and optionally `warm_start`) so
    /// later tenants can [`DacceEngine::attach_lineage`] instead of
    /// rebuilding.
    ///
    /// # Panics
    ///
    /// Panics if the engine is already attached to a lineage.
    pub fn found_lineage(&mut self, hash: u64) -> crate::lineage::EncodingLineage {
        assert!(
            self.shared.lineage.is_none(),
            "engine already attached to a lineage"
        );
        let lineage =
            crate::lineage::EncodingLineage::found(hash, self.shared.export_lineage_state());
        self.shared.lineage = Some(lineage.clone());
        self.shared.lineage_gen = 0;
        lineage
    }

    /// Registers an additional root function — lineage-attached runtimes
    /// register their own entry point on top of the adopted root set.
    pub fn register_root(&mut self, root: FunctionId) {
        self.shared.register_root(root);
    }

    /// The shared lineage this engine is attached to, if any.
    pub fn lineage(&self) -> Option<&crate::lineage::EncodingLineage> {
        self.shared.lineage.as_ref()
    }

    /// True once this engine diverged (copy-on-write) off its lineage.
    pub fn diverged(&self) -> bool {
        self.shared.diverged
    }

    /// Registers a new thread rooted at `root`. For spawned threads the
    /// parent's current encoded context is captured so the child's full
    /// calling context can be reconstructed (§5.3).
    pub fn thread_start(
        &mut self,
        tid: ThreadId,
        root: FunctionId,
        parent: Option<(ThreadId, CallSiteId)>,
    ) {
        self.shared.register_root(root);
        let spawn = parent.map(|(ptid, site)| SpawnLink {
            site,
            parent: Box::new(self.snapshot(ptid)),
        });
        let mut ctx = ThreadCtx::new(root, spawn);
        ctx.cc
            .set_spill_limit(self.shared.config.fault.cc_spill_limit);
        self.threads.insert(tid, ctx);
    }

    /// Removes a finished thread's context.
    pub fn thread_exit(&mut self, tid: ThreadId) {
        if let Some(ctx) = self.threads.remove(&tid) {
            self.shared.stats.ccstack_ops += ctx.cc.ops();
            self.shared.stats.tcstack_ops += ctx.tc_ops;
            self.shared.stats.degraded.cc_spill_events += ctx.cc.spill_events();
            self.shared.stats.degraded.cc_spilled_peak = self
                .shared
                .stats
                .degraded
                .cc_spilled_peak
                .max(ctx.cc.spilled_peak() as u64);
            self.shared.obs.on_cc_spills(ctx.cc.spill_events());
        }
    }

    /// Replaces a thread's creation link with `link`, returning the
    /// previous one — the primitive behind *work migration* (§5.3): when a
    /// logical task moves to an executor thread, the thread temporarily
    /// adopts the task's origin context so its samples decode to
    /// `origin -> own frames`.
    pub fn adopt_spawn(&mut self, tid: ThreadId, link: Option<SpawnLink>) -> Option<SpawnLink> {
        let ctx = self.threads.get_mut(&tid).expect("thread registered");
        std::mem::replace(&mut ctx.spawn, link)
    }

    /// Resets a thread for a main-loop restart; counts (and repairs) dirty
    /// state, which only occurs under the broken-tail-call ablation.
    pub fn thread_reset(&mut self, tid: ThreadId) {
        if let Some(ctx) = self.threads.get_mut(&tid) {
            if !ctx.is_clean() {
                self.shared.stats.unbalanced_resets += 1;
            }
            ctx.reset();
        }
    }

    /// Executes the before-call instrumentation of `site` for a dynamic
    /// call `caller -> callee`. Returns the cost units spent.
    pub fn call(
        &mut self,
        tid: ThreadId,
        site: CallSiteId,
        caller: FunctionId,
        callee: FunctionId,
        dispatch: CallDispatch,
        tail: bool,
    ) -> u64 {
        self.shared.stats.calls += 1;
        self.shared.note_event();
        let mut cost = 0u64;

        // Resolve the action the generated code takes for this target,
        // trapping into the runtime handler on first invocations.
        let (action, site_wraps) = match self.shared.lookup_action(site, callee) {
            Some(r) => {
                cost += r.dispatch_cost;
                (r.action, r.tc_wrap)
            }
            None => {
                cost += self.shared.cost.handler_trap;
                let (a, newly_tail) =
                    self.shared
                        .handle_trap(tid.raw(), site, caller, callee, dispatch, tail);
                if let Some(tail_fn) = newly_tail {
                    self.retrofit_tail_frames(tail_fn);
                }
                let wraps = self.shared.patches.get(site).is_some_and(|s| s.tc_wrap);
                (a, wraps)
            }
        };

        let ctx = self.threads.get_mut(&tid).expect("thread registered");
        let prev_max = ctx.cc.max_depth();
        let effect = fastpath::exec_call(&self.shared, ctx, site, callee, action, site_wraps, tail);
        cost += effect.cost;
        if effect.compress_hit {
            self.shared.stats.compress_hits += 1;
        }
        if action.uses_ccstack() {
            let depth = ctx.cc.depth();
            if self.shared.obs_writer.enabled() {
                self.shared.obs_writer.cc_push(tid.raw(), depth as u32);
            }
            if depth > prev_max && depth as u32 >= self.shared.obs_writer.watermark() {
                self.shared.obs.on_cc_overflow();
                self.shared.obs_writer.cc_overflow(tid.raw(), depth as u32);
            }
        }

        if let Some(weight) = self.sampler.tick() {
            self.take_profiler_sample(tid, site, weight);
        }

        cost + self.maybe_reencode()
    }

    /// Executes the after-call instrumentation when control returns to the
    /// frame that called through `site`. Returns the cost units spent.
    pub fn ret(
        &mut self,
        tid: ThreadId,
        site: CallSiteId,
        caller: FunctionId,
        callee: FunctionId,
    ) -> u64 {
        self.shared.note_event();
        let action = self
            .shared
            .lookup_action(site, callee)
            .map_or(crate::patch::EdgeAction::Unencoded, |r| r.action);
        let ctx = self.threads.get_mut(&tid).expect("thread registered");
        let cost = fastpath::exec_ret(&self.shared, ctx, site, caller, action);
        if action.uses_ccstack() && self.shared.obs_writer.enabled() {
            self.shared
                .obs_writer
                .cc_pop(tid.raw(), ctx.cc.depth() as u32);
        }
        cost + self.maybe_reencode()
    }

    /// §5.2 retrofit: active frames that called into a function just
    /// discovered to tail-call get their absolute-restore data now (the
    /// save they would have made). The engine owns every thread context, so
    /// it can do this eagerly — the concurrent tracker never needs to (its
    /// API admits no tail-call events).
    fn retrofit_tail_frames(&mut self, tail_fn: FunctionId) {
        for ctx in self.threads.values_mut() {
            for frame in &mut ctx.shadow {
                if frame.callee == tail_fn && !frame.wrapped {
                    frame.wrapped = true;
                    ctx.tc_ops += 1;
                }
            }
        }
    }

    /// Captures one continuous-profiler sample of `tid`'s current context:
    /// counts it (weighted by the call events since the previous sample),
    /// feeds the profiler ring and journals a `Sample` event.
    fn take_profiler_sample(&mut self, tid: ThreadId, site: CallSiteId, weight: u64) {
        let snap = self.snapshot(tid);
        self.shared.record_profiler_sample(&snap, weight);
        if self.shared.obs_writer.enabled() {
            let fp = crate::shared::context_fingerprint(&snap);
            self.shared.obs_writer.sample(
                tid.raw(),
                snap.ts.raw(),
                snap.id,
                site.raw(),
                snap.leaf.raw(),
                snap.root.raw(),
                fp,
                u32::try_from(weight).unwrap_or(u32::MAX),
                snap.cc_depth() as u32,
            );
        }
    }

    /// The continuous profiler's aggregated hot-context profile: the
    /// weighted sample ring decoded through the versioned dictionaries.
    /// Empty when [`DacceConfig::profiler_stride`] is 0 (profiler off).
    pub fn profiler_profile(&mut self) -> HotContextProfile {
        self.shared.profiler_profile()
    }

    /// The weighted profiler samples currently resident in the ring
    /// (overwrite-oldest; capacity-bounded).
    pub fn profiler_samples(&self) -> &[(EncodedContext, u64)] {
        &self.shared.profiler_ring
    }

    /// The flight-recorder postmortem dump captured at the first
    /// degradation trigger (degraded entry, re-encode abort, or a forced
    /// dump), if any.
    pub fn postmortem(&self) -> Option<&str> {
        self.shared.postmortem.as_deref()
    }

    /// Forces a flight-recorder dump now with the given reason. The first
    /// capture wins: a later degradation will not overwrite a forced dump
    /// (nor vice versa). Returns `true` when a postmortem exists after the
    /// call — `false` only with the `obs` feature compiled out.
    pub fn force_postmortem(&mut self, reason: &str) -> bool {
        self.shared.capture_postmortem(reason);
        self.shared.postmortem.is_some()
    }

    /// Records a sample of thread `tid`'s current context. Returns the
    /// snapshot and the cost charged (the paper's libpfm4 sample handler).
    pub fn sample(&mut self, tid: ThreadId) -> (EncodedContext, u64) {
        let snap = self.snapshot(tid);
        self.shared.record_sample(&snap);
        (snap, self.shared.cost.sample_record)
    }

    /// Captures the current encoded context of `tid` without recording it.
    pub fn snapshot(&self, tid: ThreadId) -> EncodedContext {
        let ctx = self.threads.get(&tid).expect("thread registered");
        EncodedContext {
            ts: self.shared.ts,
            id: ctx.id,
            leaf: ctx.current,
            root: ctx.root,
            cc: ctx.cc.entries().to_vec(),
            spawn: ctx.spawn.clone(),
        }
    }

    /// Decodes an encoded context to its full calling context (spawn chain
    /// included).
    ///
    /// # Errors
    ///
    /// See [`DecodeError`]; errors indicate engine bugs and are counted in
    /// [`DacceStats::decode_errors`] by [`DacceEngine::decode_counted`].
    pub fn decode(&self, ctx: &EncodedContext) -> Result<ContextPath, DecodeError> {
        self.shared.decode(ctx)
    }

    /// Like [`DacceEngine::decode`] but bumps the error counter on failure.
    pub fn decode_counted(&mut self, ctx: &EncodedContext) -> Result<ContextPath, DecodeError> {
        let r = self.shared.decode(ctx);
        if r.is_err() {
            self.shared.stats.decode_errors += 1;
        }
        r
    }

    /// The engine statistics (live ccStack/TcStack counters folded in).
    pub fn stats(&self) -> DacceStats {
        let mut s = self.shared.stats.clone();
        for ctx in self.threads.values() {
            s.ccstack_ops += ctx.cc.ops();
            s.tcstack_ops += ctx.tc_ops;
            s.degraded.cc_spill_events += ctx.cc.spill_events();
            s.degraded.cc_spilled_peak =
                s.degraded.cc_spilled_peak.max(ctx.cc.spilled_peak() as u64);
        }
        s
    }

    /// Sum of live threads' ccStack operations (trigger-3 bookkeeping).
    pub(crate) fn live_thread_ccops(&self) -> u64 {
        self.threads.values().map(|c| c.cc.ops()).sum()
    }

    /// The dynamic call graph (grown so far).
    pub fn graph(&self) -> &CallGraph {
        &self.shared.graph
    }

    /// The decode dictionaries recorded so far.
    pub fn dicts(&self) -> &DictStore {
        &self.shared.dicts
    }

    /// The call-site owner table (site -> containing function), learned
    /// from handler traps; needed for offline decoding.
    pub fn site_owner_map(&self) -> &HashMap<CallSiteId, FunctionId> {
        &self.shared.site_owner
    }

    /// Current global timestamp (`gTimeStamp`).
    pub fn timestamp(&self) -> TimeStamp {
        self.shared.ts
    }

    /// Current `maxID`.
    pub fn max_id(&self) -> u64 {
        self.shared.max_id
    }

    /// The full sample log (only populated with
    /// [`DacceConfig::keep_sample_log`]).
    pub fn sample_log(&self) -> &[EncodedContext] {
        &self.shared.sample_log
    }

    /// The configuration the engine runs with.
    pub fn config(&self) -> &DacceConfig {
        &self.shared.config
    }

    /// The observability handle (event journal + metrics registry). With
    /// the `obs` feature disabled this is an inert placeholder.
    pub fn observability(&self) -> &crate::observe::Observability {
        &self.shared.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    fn engine() -> DacceEngine {
        let mut e = DacceEngine::new(DacceConfig::default(), CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        e
    }

    #[test]
    fn attach_creates_trivial_dictionary() {
        let e = engine();
        assert_eq!(e.timestamp(), TimeStamp::ZERO);
        assert_eq!(e.max_id(), 0);
        assert_eq!(e.dicts().len(), 1);
        assert_eq!(e.graph().node_count(), 1);
    }

    #[test]
    fn first_call_traps_and_patches() {
        let mut e = engine();
        let c1 = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        assert!(c1 >= CostModel::default().handler_trap, "first call traps");
        let stats = e.stats();
        assert_eq!(stats.traps, 1);
        assert_eq!(e.graph().edge_count(), 1);
        // Unwind, call again: no trap this time.
        let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        let c2 = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        assert!(c2 < CostModel::default().handler_trap);
        assert_eq!(e.stats().traps, 1);
    }

    #[test]
    fn unencoded_call_roundtrip_restores_state() {
        let mut e = engine();
        let _ = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        {
            let ctx = &e.threads[&ThreadId::MAIN];
            assert_eq!(ctx.id, e.max_id() + 1);
            assert_eq!(ctx.cc.depth(), 1);
            assert_eq!(ctx.current, f(1));
        }
        let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        let ctx = &e.threads[&ThreadId::MAIN];
        assert!(ctx.is_clean());
        assert_eq!(ctx.current, f(0));
    }

    #[test]
    fn sample_decodes_to_current_path() {
        let mut e = engine();
        let _ = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        let _ = e.call(
            ThreadId::MAIN,
            s(1),
            f(1),
            f(2),
            CallDispatch::Direct,
            false,
        );
        let (snap, cost) = e.sample(ThreadId::MAIN);
        assert!(cost > 0);
        let path = e.decode(&snap).unwrap();
        let funcs: Vec<FunctionId> = path.0.iter().map(|p| p.func).collect();
        assert_eq!(funcs, vec![f(0), f(1), f(2)]);
        assert_eq!(path.0[1].site, Some(s(0)));
        assert_eq!(path.0[2].site, Some(s(1)));
    }

    #[test]
    fn indirect_targets_accumulate_on_one_site() {
        let mut e = engine();
        for t in [1u32, 2, 3] {
            let _ = e.call(
                ThreadId::MAIN,
                s(0),
                f(0),
                f(t),
                CallDispatch::Indirect,
                false,
            );
            let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(t));
        }
        assert_eq!(e.stats().traps, 3, "each new target traps once");
        assert_eq!(e.graph().edge_count(), 3);
        // Re-dispatch to a known target: inline chain, no trap.
        let c = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(2),
            CallDispatch::Indirect,
            false,
        );
        assert!(c < CostModel::default().handler_trap);
        assert_eq!(e.stats().traps, 3);
    }

    #[test]
    fn indirect_chain_converts_to_hash() {
        let cfg = DacceConfig {
            indirect_inline_max: 2,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        for t in [1u32, 2, 3, 4] {
            let _ = e.call(
                ThreadId::MAIN,
                s(0),
                f(0),
                f(t),
                CallDispatch::Indirect,
                false,
            );
            let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(t));
        }
        assert_eq!(e.stats().hash_conversions, 1);
        // Known target now costs a hash probe, not a trap.
        let c = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(4),
            CallDispatch::Indirect,
            false,
        );
        assert!(c >= CostModel::default().hash_lookup);
        assert!(c < CostModel::default().handler_trap);
    }

    #[test]
    fn spawned_thread_contexts_chain_to_parent() {
        let mut e = engine();
        let _ = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        e.thread_start(ThreadId::new(1), f(5), Some((ThreadId::MAIN, s(9))));
        let _ = e.call(
            ThreadId::new(1),
            s(3),
            f(5),
            f(6),
            CallDispatch::Direct,
            false,
        );
        let (snap, _) = e.sample(ThreadId::new(1));
        let path = e.decode(&snap).unwrap();
        let funcs: Vec<FunctionId> = path.0.iter().map(|p| p.func).collect();
        assert_eq!(funcs, vec![f(0), f(1), f(5), f(6)]);
        assert_eq!(path.0[2].site, Some(s(9)), "spawn site recorded");
    }

    #[test]
    fn thread_reset_counts_dirty_state() {
        let mut e = engine();
        let _ = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        e.thread_reset(ThreadId::MAIN); // mid-call: dirty
        assert_eq!(e.stats().unbalanced_resets, 1);
        assert!(e.threads[&ThreadId::MAIN].is_clean());
        e.thread_reset(ThreadId::MAIN); // clean now
        assert_eq!(e.stats().unbalanced_resets, 1);
    }

    #[test]
    fn thread_exit_folds_stats() {
        let mut e = engine();
        let _ = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        let ops_before = e.stats().ccstack_ops;
        assert!(ops_before > 0);
        e.thread_exit(ThreadId::MAIN);
        assert_eq!(e.stats().ccstack_ops, ops_before);
    }
}
