//! The DACCE engine: dynamic encoding, the runtime handler, and per-thread
//! instrumentation execution.
//!
//! The engine is the library-level heart of the system. It owns the
//! dynamically growing call graph, the per-site patch states (the "generated
//! code"), the per-thread encoding contexts, and the versioned decode
//! dictionaries. The interpreter (or the embeddable [`crate::Tracker`])
//! drives it with call/return events; the engine executes exactly the
//! instrumentation its current patch states prescribe and returns the cost
//! units that instrumentation would have spent.
//!
//! The adaptive re-encoding machinery lives in [`crate::reencode`]
//! (implemented as further methods on [`DacceEngine`]).

use std::collections::{HashMap, HashSet};

use dacce_callgraph::encode::{encode_graph, EncodeOptions};
use dacce_callgraph::{
    CallGraph, CallSiteId, DecodeDict, DictStore, Dispatch, EdgeId, FunctionId, TimeStamp,
};
use dacce_program::runtime::CallDispatch;
use dacce_program::{ContextPath, CostModel, ThreadId};

use crate::config::DacceConfig;
use crate::context::{EncodedContext, SpawnLink};
use crate::decode::{decode_full, DecodeError};
use crate::patch::{EdgeAction, IndirectPatch, SitePatch, SiteState};
use crate::stats::{DacceStats, ProgressPoint};
use crate::thread::{ShadowFrame, ThreadCtx};

/// The DACCE engine. See the crate docs for the big picture.
///
/// # Example
///
/// Drive the engine directly with call/return events (the interpreter and
/// the [`crate::Tracker`] both reduce to this):
///
/// ```
/// use dacce::{DacceConfig, DacceEngine};
/// use dacce_callgraph::{CallSiteId, FunctionId};
/// use dacce_program::{runtime::CallDispatch, CostModel, ThreadId};
///
/// let mut engine = DacceEngine::new(DacceConfig::default(), CostModel::default());
/// let (main, f, site) = (FunctionId::new(0), FunctionId::new(1), CallSiteId::new(0));
/// engine.attach_main(main);
/// engine.thread_start(ThreadId::MAIN, main, None);
///
/// engine.call(ThreadId::MAIN, site, main, f, CallDispatch::Direct, false);
/// let (snapshot, _cost) = engine.sample(ThreadId::MAIN);
/// let path = engine.decode(&snapshot)?;
/// assert_eq!(path.depth(), 2); // main -> f
/// engine.ret(ThreadId::MAIN, site, main, f);
/// # Ok::<(), dacce::DecodeError>(())
/// ```
#[derive(Debug)]
pub struct DacceEngine {
    pub(crate) config: DacceConfig,
    pub(crate) cost: CostModel,
    pub(crate) graph: CallGraph,
    pub(crate) dicts: DictStore,
    pub(crate) ts: TimeStamp,
    pub(crate) max_id: u64,
    pub(crate) sites: HashMap<CallSiteId, SiteState>,
    pub(crate) site_owner: HashMap<CallSiteId, FunctionId>,
    pub(crate) edge_heat: HashMap<EdgeId, u64>,
    pub(crate) tail_fns: HashSet<FunctionId>,
    pub(crate) roots: Vec<FunctionId>,
    pub(crate) threads: HashMap<ThreadId, ThreadCtx>,
    // Re-encoding trigger state.
    pub(crate) new_edges: usize,
    pub(crate) events_since_reencode: u64,
    pub(crate) cur_min_events: u64,
    pub(crate) window_start_events: u64,
    pub(crate) window_start_ccops: u64,
    pub(crate) next_hot_check: u64,
    pub(crate) last_hot_choice: HashMap<FunctionId, EdgeId>,
    pub(crate) events: u64,
    pub(crate) reencode_overflowed: bool,
    // Recent samples (ring) for heat derivation, plus the optional full log.
    pub(crate) ring: Vec<EncodedContext>,
    pub(crate) ring_pos: usize,
    pub(crate) sample_log: Vec<EncodedContext>,
    pub(crate) stats: DacceStats,
}

impl DacceEngine {
    /// Creates an engine with the given configuration and cost model.
    pub fn new(config: DacceConfig, cost: CostModel) -> Self {
        let cur_min_events = config.min_events_between_reencodes;
        DacceEngine {
            config,
            cost,
            graph: CallGraph::new(),
            dicts: DictStore::new(),
            ts: TimeStamp::ZERO,
            max_id: 0,
            sites: HashMap::new(),
            site_owner: HashMap::new(),
            edge_heat: HashMap::new(),
            tail_fns: HashSet::new(),
            roots: Vec::new(),
            threads: HashMap::new(),
            new_edges: 0,
            events_since_reencode: 0,
            cur_min_events,
            window_start_events: 0,
            window_start_ccops: 0,
            next_hot_check: 0,
            last_hot_choice: HashMap::new(),
            events: 0,
            reencode_overflowed: false,
            ring: Vec::new(),
            ring_pos: 0,
            sample_log: Vec::new(),
            stats: DacceStats::default(),
        }
    }

    /// Initialises the engine for a program entered at `main`: the call
    /// graph contains only `main` and everything else is discovered at
    /// runtime (§3: "It starts with a call graph containing only function
    /// main").
    pub fn attach_main(&mut self, main: FunctionId) {
        self.graph.ensure_node(main);
        self.roots.push(main);
        let enc = encode_graph(&self.graph, &self.roots, &EncodeOptions::default());
        let dict = DecodeDict::from_encoding(&self.graph, &enc, TimeStamp::ZERO)
            .expect("trivial graph cannot overflow");
        self.dicts.push(dict);
        self.max_id = enc.max_id;
        self.next_hot_check = self.config.hot_check_every;
        self.stats.progress.push(ProgressPoint {
            calls: 0,
            nodes: self.graph.node_count(),
            edges: self.graph.edge_count(),
            max_id: self.max_id,
        });
    }

    /// Registers a new thread rooted at `root`. For spawned threads the
    /// parent's current encoded context is captured so the child's full
    /// calling context can be reconstructed (§5.3).
    pub fn thread_start(
        &mut self,
        tid: ThreadId,
        root: FunctionId,
        parent: Option<(ThreadId, CallSiteId)>,
    ) {
        self.graph.ensure_node(root);
        if !self.roots.contains(&root) {
            self.roots.push(root);
        }
        let spawn = parent.map(|(ptid, site)| SpawnLink {
            site,
            parent: Box::new(self.snapshot(ptid)),
        });
        self.threads.insert(tid, ThreadCtx::new(root, spawn));
    }

    /// Removes a finished thread's context.
    pub fn thread_exit(&mut self, tid: ThreadId) {
        if let Some(ctx) = self.threads.remove(&tid) {
            self.stats.ccstack_ops += ctx.cc.ops();
            self.stats.tcstack_ops += ctx.tc_ops;
        }
    }

    /// Replaces a thread's creation link with `link`, returning the
    /// previous one — the primitive behind *work migration* (§5.3): when a
    /// logical task moves to an executor thread, the thread temporarily
    /// adopts the task's origin context so its samples decode to
    /// `origin -> own frames`.
    pub fn adopt_spawn(&mut self, tid: ThreadId, link: Option<SpawnLink>) -> Option<SpawnLink> {
        let ctx = self.threads.get_mut(&tid).expect("thread registered");
        std::mem::replace(&mut ctx.spawn, link)
    }

    /// Resets a thread for a main-loop restart; counts (and repairs) dirty
    /// state, which only occurs under the broken-tail-call ablation.
    pub fn thread_reset(&mut self, tid: ThreadId) {
        if let Some(ctx) = self.threads.get_mut(&tid) {
            if !ctx.is_clean() {
                self.stats.unbalanced_resets += 1;
            }
            ctx.reset();
        }
    }

    /// Executes the before-call instrumentation of `site` for a dynamic
    /// call `caller -> callee`. Returns the cost units spent.
    pub fn call(
        &mut self,
        tid: ThreadId,
        site: CallSiteId,
        caller: FunctionId,
        callee: FunctionId,
        dispatch: CallDispatch,
        tail: bool,
    ) -> u64 {
        self.stats.calls += 1;
        self.events += 1;
        self.events_since_reencode += 1;
        let mut cost = 0u64;

        // Resolve the action the generated code takes for this target,
        // trapping into the runtime handler on first invocations.
        let action = match self.lookup_action(site, callee) {
            Some((a, dispatch_cost)) => {
                cost += dispatch_cost;
                a
            }
            None => {
                cost += self.cost.handler_trap;
                self.handle_trap(site, caller, callee, dispatch, tail)
            }
        };

        let wrapped = !tail
            && self.config.handle_tail_calls
            && self
                .sites
                .get(&site)
                .map(|s| s.tc_wrap)
                .unwrap_or(false);

        let ctx = self.threads.get_mut(&tid).expect("thread registered");
        let saved_id = ctx.id;
        let saved_cc_len = ctx.cc.depth();
        let saved_top_count = ctx.cc.top().map(|e| e.count).unwrap_or(0);
        if wrapped {
            ctx.tc_ops += 1;
            cost += self.cost.tcstack_op;
        }

        match action {
            EdgeAction::Encoded { delta } => {
                if delta != 0 {
                    ctx.id = ctx.id.wrapping_add(delta);
                    cost += self.cost.id_arith;
                }
            }
            EdgeAction::Unencoded => {
                ctx.cc.push(ctx.id, site, callee);
                ctx.id = self.max_id + 1;
                cost += self.cost.ccstack_op + self.cost.id_arith;
            }
            EdgeAction::UnencodedCompressed => {
                if ctx.cc.push_compressed(ctx.id, site, callee) {
                    self.stats.compress_hits += 1;
                }
                ctx.id = self.max_id + 1;
                cost += self.cost.compare + self.cost.ccstack_op + self.cost.id_arith;
            }
        }

        if !tail {
            ctx.shadow.push(ShadowFrame {
                site,
                callee,
                saved_id,
                saved_cc_len,
                saved_top_count,
                wrapped,
            });
        }
        ctx.current = callee;

        cost + self.maybe_reencode()
    }

    /// Executes the after-call instrumentation when control returns to the
    /// frame that called through `site`. Returns the cost units spent.
    pub fn ret(
        &mut self,
        tid: ThreadId,
        site: CallSiteId,
        caller: FunctionId,
        callee: FunctionId,
    ) -> u64 {
        self.events += 1;
        self.events_since_reencode += 1;
        let mut cost = 0u64;

        let action = self
            .lookup_action(site, callee)
            .map(|(a, _)| a)
            .unwrap_or(EdgeAction::Unencoded);

        let ctx = self.threads.get_mut(&tid).expect("thread registered");
        let frame = ctx.shadow.pop().expect("balanced call/return events");
        debug_assert_eq!(frame.site, site, "return does not match shadow frame");

        if frame.wrapped {
            // §5.2: absolute restore via TcStack — immune to tail calls in
            // the callee. Restores the length *and* the top entry's
            // repetition count (a compressed push that hit changed only
            // the count).
            ctx.id = frame.saved_id;
            ctx.cc.truncate(frame.saved_cc_len);
            ctx.cc.restore_top_count(frame.saved_top_count);
            ctx.tc_ops += 1;
            cost += self.cost.tcstack_op;
        } else {
            match action {
                EdgeAction::Encoded { delta } => {
                    if delta != 0 {
                        ctx.id = ctx.id.wrapping_sub(delta);
                        cost += self.cost.id_arith;
                    }
                }
                EdgeAction::Unencoded => {
                    ctx.id = ctx.cc.pop();
                    cost += self.cost.ccstack_op;
                }
                EdgeAction::UnencodedCompressed => {
                    ctx.id = ctx.cc.pop_compressed();
                    cost += self.cost.ccstack_op;
                }
            }
        }
        ctx.current = caller;

        cost + self.maybe_reencode()
    }

    /// Records a sample of thread `tid`'s current context. Returns the
    /// snapshot and the cost charged (the paper's libpfm4 sample handler).
    pub fn sample(&mut self, tid: ThreadId) -> (EncodedContext, u64) {
        let snap = self.snapshot(tid);
        self.stats.samples += 1;
        self.stats.cc_depths.push(snap.cc_depth() as u32);
        if self.config.sample_ring > 0 {
            if self.ring.len() < self.config.sample_ring {
                self.ring.push(snap.clone());
            } else {
                self.ring[self.ring_pos % self.config.sample_ring] = snap.clone();
            }
            self.ring_pos += 1;
        }
        if self.config.keep_sample_log {
            self.sample_log.push(snap.clone());
        }
        (snap, self.cost.sample_record)
    }

    /// Captures the current encoded context of `tid` without recording it.
    pub fn snapshot(&self, tid: ThreadId) -> EncodedContext {
        let ctx = self.threads.get(&tid).expect("thread registered");
        EncodedContext {
            ts: self.ts,
            id: ctx.id,
            leaf: ctx.current,
            root: ctx.root,
            cc: ctx.cc.entries().to_vec(),
            spawn: ctx.spawn.clone(),
        }
    }

    /// Decodes an encoded context to its full calling context (spawn chain
    /// included).
    ///
    /// # Errors
    ///
    /// See [`DecodeError`]; errors indicate engine bugs and are counted in
    /// [`DacceStats::decode_errors`] by [`DacceEngine::decode_counted`].
    pub fn decode(&self, ctx: &EncodedContext) -> Result<ContextPath, DecodeError> {
        decode_full(ctx, &self.dicts, &self.site_owner)
    }

    /// Like [`DacceEngine::decode`] but bumps the error counter on failure.
    pub fn decode_counted(&mut self, ctx: &EncodedContext) -> Result<ContextPath, DecodeError> {
        let r = decode_full(ctx, &self.dicts, &self.site_owner);
        if r.is_err() {
            self.stats.decode_errors += 1;
        }
        r
    }

    /// The engine statistics (live ccStack/TcStack counters folded in).
    pub fn stats(&self) -> DacceStats {
        let mut s = self.stats.clone();
        for ctx in self.threads.values() {
            s.ccstack_ops += ctx.cc.ops();
            s.tcstack_ops += ctx.tc_ops;
        }
        s
    }

    /// The dynamic call graph (grown so far).
    pub fn graph(&self) -> &CallGraph {
        &self.graph
    }

    /// The decode dictionaries recorded so far.
    pub fn dicts(&self) -> &DictStore {
        &self.dicts
    }

    /// The call-site owner table (site -> containing function), learned
    /// from handler traps; needed for offline decoding.
    pub fn site_owner_map(&self) -> &HashMap<CallSiteId, FunctionId> {
        &self.site_owner
    }

    /// Current global timestamp (`gTimeStamp`).
    pub fn timestamp(&self) -> TimeStamp {
        self.ts
    }

    /// Current `maxID`.
    pub fn max_id(&self) -> u64 {
        self.max_id
    }

    /// The full sample log (only populated with
    /// [`DacceConfig::keep_sample_log`]).
    pub fn sample_log(&self) -> &[EncodedContext] {
        &self.sample_log
    }

    /// The configuration the engine runs with.
    pub fn config(&self) -> &DacceConfig {
        &self.config
    }

    /// Looks up the generated code's action for `(site, callee)` together
    /// with the dispatch cost (inline comparisons / hash probe for indirect
    /// sites). `None` means the site (or this target) traps.
    fn lookup_action(&self, site: CallSiteId, callee: FunctionId) -> Option<(EdgeAction, u64)> {
        let state = self.sites.get(&site)?;
        match &state.patch {
            SitePatch::Trap => None,
            SitePatch::Direct(target, action) => {
                if *target == callee {
                    Some((*action, 0))
                } else {
                    None
                }
            }
            SitePatch::Indirect(p) => match p.lookup(callee) {
                Some((action, cmps, hashed)) => {
                    let dispatch_cost = if hashed {
                        self.cost.hash_lookup
                    } else {
                        u64::from(cmps) * self.cost.compare
                    };
                    Some((action, dispatch_cost))
                }
                None => None,
            },
        }
    }

    /// The runtime handler (§3): invoked on the first execution of a call
    /// edge. Adds the edge to the call graph, patches the site, performs
    /// tail-call discovery, and returns the action the freshly generated
    /// code executes for this very invocation.
    fn handle_trap(
        &mut self,
        site: CallSiteId,
        caller: FunctionId,
        callee: FunctionId,
        dispatch: CallDispatch,
        tail: bool,
    ) -> EdgeAction {
        self.stats.traps += 1;
        let prev_owner = self.site_owner.insert(site, caller);
        debug_assert!(
            prev_owner.is_none() || prev_owner == Some(caller),
            "call site {site} observed in two functions ({prev_owner:?} and {caller}); \
             each static call location needs its own CallSiteId"
        );
        let graph_dispatch = match dispatch {
            CallDispatch::Direct => Dispatch::Direct,
            CallDispatch::Indirect => Dispatch::Indirect,
            CallDispatch::Plt => Dispatch::Plt,
        };
        let (eid, is_new) = self.graph.add_edge(caller, callee, site, graph_dispatch);
        if is_new {
            self.new_edges += 1;
        }
        *self.edge_heat.entry(eid).or_insert(0) += 1;

        // §5.2: the first tail call inside `caller` reveals that `caller`'s
        // callers must save/restore the encoding context absolutely.
        if tail && self.config.handle_tail_calls && self.tail_fns.insert(caller) {
            self.wrap_callers_of(caller);
        }

        // Patch the site. New edges stay unencoded until the next
        // re-encoding (§3: "that edge is not encoded until the next
        // re-encoding process").
        let action = EdgeAction::Unencoded;
        let inline_max = self.config.indirect_inline_max;
        let tc_wrap = self.config.handle_tail_calls && self.tail_fns.contains(&callee);
        let state = self.sites.entry(site).or_insert_with(SiteState::trap);
        if tc_wrap {
            state.tc_wrap = true;
        }
        match dispatch {
            CallDispatch::Direct | CallDispatch::Plt => {
                state.patch = SitePatch::Direct(callee, action);
            }
            CallDispatch::Indirect => {
                let p = match &mut state.patch {
                    SitePatch::Indirect(p) => p,
                    _ => {
                        state.patch = SitePatch::Indirect(IndirectPatch::default());
                        match &mut state.patch {
                            SitePatch::Indirect(p) => p,
                            _ => unreachable!(),
                        }
                    }
                };
                let before = p.hashed.is_some();
                p.add_target(callee, action, inline_max);
                if !before && p.hashed.is_some() {
                    self.stats.hash_conversions += 1;
                }
            }
        }
        action
    }

    /// Marks every known site targeting `tail_fn` for TcStack wrapping and
    /// retro-fits the save for frames already active (the paper's handler
    /// "modifies the instrumented code of the current function's caller and
    /// updates the TcStack").
    fn wrap_callers_of(&mut self, tail_fn: FunctionId) {
        let mut sites_to_wrap: Vec<CallSiteId> = Vec::new();
        for &eid in self.graph.incoming(tail_fn) {
            sites_to_wrap.push(self.graph.edge(eid).site);
        }
        for site in sites_to_wrap {
            if let Some(state) = self.sites.get_mut(&site) {
                state.tc_wrap = true;
            }
        }
        // Retro-fit: active frames that called into the tail function get
        // their absolute-restore data now (the save they would have made).
        for ctx in self.threads.values_mut() {
            for frame in &mut ctx.shadow {
                if frame.callee == tail_fn && !frame.wrapped {
                    frame.wrapped = true;
                    ctx.tc_ops += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    fn engine() -> DacceEngine {
        let mut e = DacceEngine::new(DacceConfig::default(), CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        e
    }

    #[test]
    fn attach_creates_trivial_dictionary() {
        let e = engine();
        assert_eq!(e.timestamp(), TimeStamp::ZERO);
        assert_eq!(e.max_id(), 0);
        assert_eq!(e.dicts().len(), 1);
        assert_eq!(e.graph().node_count(), 1);
    }

    #[test]
    fn first_call_traps_and_patches() {
        let mut e = engine();
        let c1 = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
        assert!(c1 >= CostModel::default().handler_trap, "first call traps");
        let stats = e.stats();
        assert_eq!(stats.traps, 1);
        assert_eq!(e.graph().edge_count(), 1);
        // Unwind, call again: no trap this time.
        let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        let c2 = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
        assert!(c2 < CostModel::default().handler_trap);
        assert_eq!(e.stats().traps, 1);
    }

    #[test]
    fn unencoded_call_roundtrip_restores_state() {
        let mut e = engine();
        let _ = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
        {
            let ctx = &e.threads[&ThreadId::MAIN];
            assert_eq!(ctx.id, e.max_id + 1);
            assert_eq!(ctx.cc.depth(), 1);
            assert_eq!(ctx.current, f(1));
        }
        let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        let ctx = &e.threads[&ThreadId::MAIN];
        assert!(ctx.is_clean());
        assert_eq!(ctx.current, f(0));
    }

    #[test]
    fn sample_decodes_to_current_path() {
        let mut e = engine();
        let _ = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
        let _ = e.call(ThreadId::MAIN, s(1), f(1), f(2), CallDispatch::Direct, false);
        let (snap, cost) = e.sample(ThreadId::MAIN);
        assert!(cost > 0);
        let path = e.decode(&snap).unwrap();
        let funcs: Vec<FunctionId> = path.0.iter().map(|p| p.func).collect();
        assert_eq!(funcs, vec![f(0), f(1), f(2)]);
        assert_eq!(path.0[1].site, Some(s(0)));
        assert_eq!(path.0[2].site, Some(s(1)));
    }

    #[test]
    fn indirect_targets_accumulate_on_one_site() {
        let mut e = engine();
        for t in [1u32, 2, 3] {
            let _ = e.call(ThreadId::MAIN, s(0), f(0), f(t), CallDispatch::Indirect, false);
            let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(t));
        }
        assert_eq!(e.stats().traps, 3, "each new target traps once");
        assert_eq!(e.graph().edge_count(), 3);
        // Re-dispatch to a known target: inline chain, no trap.
        let c = e.call(ThreadId::MAIN, s(0), f(0), f(2), CallDispatch::Indirect, false);
        assert!(c < CostModel::default().handler_trap);
        assert_eq!(e.stats().traps, 3);
    }

    #[test]
    fn indirect_chain_converts_to_hash() {
        let mut cfg = DacceConfig::default();
        cfg.indirect_inline_max = 2;
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        for t in [1u32, 2, 3, 4] {
            let _ = e.call(ThreadId::MAIN, s(0), f(0), f(t), CallDispatch::Indirect, false);
            let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(t));
        }
        assert_eq!(e.stats().hash_conversions, 1);
        // Known target now costs a hash probe, not a trap.
        let c = e.call(ThreadId::MAIN, s(0), f(0), f(4), CallDispatch::Indirect, false);
        assert!(c >= CostModel::default().hash_lookup);
        assert!(c < CostModel::default().handler_trap);
    }

    #[test]
    fn spawned_thread_contexts_chain_to_parent() {
        let mut e = engine();
        let _ = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
        e.thread_start(ThreadId::new(1), f(5), Some((ThreadId::MAIN, s(9))));
        let _ = e.call(ThreadId::new(1), s(3), f(5), f(6), CallDispatch::Direct, false);
        let (snap, _) = e.sample(ThreadId::new(1));
        let path = e.decode(&snap).unwrap();
        let funcs: Vec<FunctionId> = path.0.iter().map(|p| p.func).collect();
        assert_eq!(funcs, vec![f(0), f(1), f(5), f(6)]);
        assert_eq!(path.0[2].site, Some(s(9)), "spawn site recorded");
    }

    #[test]
    fn thread_reset_counts_dirty_state() {
        let mut e = engine();
        let _ = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
        e.thread_reset(ThreadId::MAIN); // mid-call: dirty
        assert_eq!(e.stats().unbalanced_resets, 1);
        assert!(e.threads[&ThreadId::MAIN].is_clean());
        e.thread_reset(ThreadId::MAIN); // clean now
        assert_eq!(e.stats().unbalanced_resets, 1);
    }

    #[test]
    fn thread_exit_folds_stats() {
        let mut e = engine();
        let _ = e.call(ThreadId::MAIN, s(0), f(0), f(1), CallDispatch::Direct, false);
        let _ = e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        let ops_before = e.stats().ccstack_ops;
        assert!(ops_before > 0);
        e.thread_exit(ThreadId::MAIN);
        assert_eq!(e.stats().ccstack_ops, ops_before);
    }
}
