//! Superops: hot balanced call/return windows compiled into single
//! precomputed operations (path memoization).
//!
//! The paper's core win is replacing per-call bookkeeping with precomputed
//! integer deltas; recursive-cycle compression (§3.3) shows whole repeated
//! *regions* can collapse into one operation. A superop extends that idea
//! to the batched fast path: a balanced call/return window whose every
//! site resolves under the current encoding is folded — at compile time,
//! symbolically — into its *net effect* on the thread's encoding state,
//! so [`crate::tracker::ThreadHandle::run_batch`] can execute the whole
//! window as one table probe plus a handful of counter adds.
//!
//! ## Soundness
//!
//! For a balanced window with no trap, no epoch change and no TcStack
//! wrapping, the after-call instrumentation exactly inverts the
//! before-call instrumentation of the matching call (`wrapping_sub`
//! undoes `wrapping_add`; a pop returns the pushed entry's id), so the
//! net effect on `id`, the ccStack entries, the shadow stack and the
//! current function is *identity*. What remains observable is pure
//! bookkeeping: call counts, ccStack operation counts, compression hits,
//! and the ccStack's max-depth high-water mark. The compiler proves the
//! identity symbolically — the entry id is an opaque `Entry + offset`
//! term — and **refuses** any window where the fold is not decidable for
//! every possible entry state:
//!
//! * a site that does not resolve (trap) or resolves with TcStack
//!   wrapping (`truncate` has state-dependent operation counts);
//! * a compressed push at relative ccStack depth 0 (whether it hits
//!   depends on the caller's pre-existing top entry);
//! * a compressed-push equality compare between ids with different
//!   symbolic bases (undecidable at compile time);
//! * an unbalanced window, or one whose folded final state is not
//!   exactly the entry state.
//!
//! The compiled table lives inside the published [`EncodingSnapshot`]
//! (`crate::shared::EncodingSnapshot`), so a republish invalidates every
//! superop exactly like the indirect-call inline cache: threads re-probe
//! against the new snapshot's table, which was recompiled under the new
//! dispatch state.

use dacce_callgraph::{CallSiteId, FunctionId};

use crate::patch::EdgeAction;
use crate::shared::ResolvedSite;
use crate::tracker::BatchOp;

/// One operation of a candidate superop window, as mined from a recorded
/// trace. Call sites are compared by `(site, target)` — an indirect call
/// matches only when it resolved to the same target the window was
/// compiled for, so an indirect-target miss falls back to the per-event
/// loop by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WindowOp {
    /// A call through `site` to `target` (direct or indirect).
    Call {
        /// The call site.
        site: CallSiteId,
        /// The resolved callee.
        target: FunctionId,
    },
    /// A return balancing the innermost open call of the window.
    Ret,
}

impl WindowOp {
    /// Whether this window op matches one recorded batch op.
    #[inline]
    fn matches(self, op: BatchOp) -> bool {
        match (self, op) {
            (
                WindowOp::Call { site, target },
                BatchOp::Call { site: s, target: t } | BatchOp::CallIndirect { site: s, target: t },
            ) => site == s && target == t,
            (WindowOp::Ret, BatchOp::Ret) => true,
            _ => false,
        }
    }
}

/// A compiled superop: the window it matches plus its precomputed net
/// effect. Because a balanced, refusal-free window restores `id`, the
/// ccStack entries and the shadow stack exactly (see the module docs),
/// the net effect is pure bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct SuperOp {
    /// The exact op sequence this superop replaces (first op is a call).
    pub(crate) window: Vec<WindowOp>,
    /// Call events the window contains (shard `calls` delta and sampler
    /// bulk-skip amount).
    pub(crate) calls: u64,
    /// ccStack operations the window performs (`ops()` delta, feeding the
    /// §4 rate trigger exactly like per-event execution).
    pub(crate) cc_ops: u64,
    /// Compressed pushes that hit the top entry.
    pub(crate) compress_hits: u64,
    /// Peak ccStack depth the window reaches, relative to its entry depth
    /// (the max-depth watermark folded into the stack on apply).
    pub(crate) cc_peak: usize,
}

/// Result of probing the superop table at one trace position.
pub(crate) enum SuperOpProbe<'a> {
    /// No superop starts at this call site — zero-cost fall-through.
    Cold,
    /// Candidate superops exist for the site but none matched the trace.
    Miss,
    /// The longest superop whose window matches the trace here.
    Hit(&'a SuperOp),
}

/// The per-snapshot table of compiled superops, probed by the batched
/// fast path. Indexed by the *site id* of the window's first call (site
/// ids are dense), each chain sorted longest-window-first so the probe
/// prefers the biggest match.
#[derive(Clone, Debug, Default)]
pub(crate) struct SuperOpTable {
    ops: Vec<SuperOp>,
    /// `first_site.index() -> indices into ops`, longest window first.
    heads: Vec<Vec<u32>>,
}

impl SuperOpTable {
    /// Number of compiled superops.
    pub(crate) fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no superop is compiled (the fast path's cheap bail).
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates the compiled superops (export / verification).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &SuperOp> {
        self.ops.iter()
    }

    /// Compiles `candidates` (ranked best-first by the miner) against the
    /// current encoding. Windows that fail a refusal rule, duplicate an
    /// earlier window, or exceed `max_window` are skipped; at most
    /// `max_table` superops are kept.
    pub(crate) fn compile<F>(
        resolve: &F,
        max_id: u64,
        candidates: &[Vec<WindowOp>],
        max_window: usize,
        max_table: usize,
    ) -> SuperOpTable
    where
        F: Fn(CallSiteId, FunctionId) -> Option<ResolvedSite>,
    {
        let mut table = SuperOpTable::default();
        for window in candidates {
            if table.ops.len() >= max_table {
                break;
            }
            if window.len() > max_window {
                continue;
            }
            if table.ops.iter().any(|so| so.window == *window) {
                continue;
            }
            let Some(so) = compile_window(resolve, max_id, window) else {
                continue;
            };
            let WindowOp::Call { site, .. } = so.window[0] else {
                unreachable!("compiled windows start with a call");
            };
            let idx = site.index();
            if idx >= table.heads.len() {
                table.heads.resize(idx + 1, Vec::new());
            }
            let ix = u32::try_from(table.ops.len()).expect("table fits in u32");
            table.heads[idx].push(ix);
            table.ops.push(so);
        }
        // Longest window first, so the probe prefers the biggest match.
        for chain in &mut table.heads {
            chain.sort_by_key(|&ix| std::cmp::Reverse(table.ops[ix as usize].window.len()));
        }
        table
    }

    /// Probes for a superop whose window is a prefix of `ops` (which must
    /// start with a call op).
    #[inline]
    pub(crate) fn probe<'a>(&'a self, ops: &[BatchOp]) -> SuperOpProbe<'a> {
        let (BatchOp::Call { site, .. } | BatchOp::CallIndirect { site, .. }) = ops[0] else {
            return SuperOpProbe::Cold;
        };
        let Some(chain) = self.heads.get(site.index()) else {
            return SuperOpProbe::Cold;
        };
        if chain.is_empty() {
            return SuperOpProbe::Cold;
        }
        'next: for &ix in chain {
            let so = &self.ops[ix as usize];
            if so.window.len() > ops.len() {
                continue;
            }
            for (w, &b) in so.window.iter().zip(ops) {
                if !w.matches(b) {
                    continue 'next;
                }
            }
            return SuperOpProbe::Hit(so);
        }
        SuperOpProbe::Miss
    }
}

/// Symbolic id base: the (unknown) id at window entry, or a concrete
/// value (`maxID + 1` after a ccStack push resets the id).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SymBase {
    Entry,
    Const,
}

/// A symbolic context id: `Entry + off` (wrapping) or the concrete `off`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct SymId {
    base: SymBase,
    off: u64,
}

impl SymId {
    const ENTRY: SymId = SymId {
        base: SymBase::Entry,
        off: 0,
    };

    fn konst(v: u64) -> SymId {
        SymId {
            base: SymBase::Const,
            off: v,
        }
    }

    fn add(self, d: u64) -> SymId {
        SymId {
            base: self.base,
            off: self.off.wrapping_add(d),
        }
    }

    fn sub(self, d: u64) -> SymId {
        SymId {
            base: self.base,
            off: self.off.wrapping_sub(d),
        }
    }

    /// Equality of the concrete values, when decidable for *every*
    /// possible entry id: same base compares offsets (wrapping add is
    /// injective for a fixed entry), mixed bases are undecidable.
    fn eq_decidable(self, other: SymId) -> Option<bool> {
        (self.base == other.base).then_some(self.off == other.off)
    }
}

/// One symbolically pushed ccStack entry.
struct SymCcEntry {
    id: SymId,
    site: CallSiteId,
    target: FunctionId,
    /// Compressed repetitions folded onto this entry within the window.
    count: u64,
}

/// Compiles one candidate window into a superop by folding the exact
/// per-event instrumentation over a symbolic entry state. Returns `None`
/// when any refusal rule fires (see the module docs) or the folded final
/// state is not the identity.
pub(crate) fn compile_window<F>(resolve: &F, max_id: u64, window: &[WindowOp]) -> Option<SuperOp>
where
    F: Fn(CallSiteId, FunctionId) -> Option<ResolvedSite>,
{
    if window.len() < 2 {
        return None;
    }
    if !matches!(window[0], WindowOp::Call { .. }) {
        return None;
    }

    let mut id = SymId::ENTRY;
    let mut cc: Vec<SymCcEntry> = Vec::new();
    let mut open: Vec<EdgeAction> = Vec::new();
    let mut calls = 0u64;
    let mut cc_ops = 0u64;
    let mut compress_hits = 0u64;
    let mut cc_peak = 0usize;

    for &op in window {
        match op {
            WindowOp::Call { site, target } => {
                let r = resolve(site, target)?;
                if r.tc_wrap {
                    // TcStack-wrapped frames restore absolutely and
                    // `truncate` counts ops state-dependently; refuse.
                    return None;
                }
                match r.action {
                    EdgeAction::Encoded { delta } => {
                        id = id.add(delta);
                    }
                    EdgeAction::Unencoded => {
                        cc_ops += 1;
                        cc.push(SymCcEntry {
                            id,
                            site,
                            target,
                            count: 0,
                        });
                        cc_peak = cc_peak.max(cc.len());
                        id = SymId::konst(max_id + 1);
                    }
                    EdgeAction::UnencodedCompressed => {
                        cc_ops += 1;
                        let Some(top) = cc.last_mut() else {
                            // At relative depth 0 a hit depends on the
                            // caller's pre-existing top entry; refuse.
                            return None;
                        };
                        let hit = if top.site == site && top.target == target {
                            top.id.eq_decidable(id)?
                        } else {
                            false
                        };
                        if hit {
                            top.count += 1;
                            compress_hits += 1;
                        } else {
                            cc.push(SymCcEntry {
                                id,
                                site,
                                target,
                                count: 0,
                            });
                            cc_peak = cc_peak.max(cc.len());
                        }
                        id = SymId::konst(max_id + 1);
                    }
                }
                open.push(r.action);
                calls += 1;
            }
            WindowOp::Ret => {
                let action = open.pop()?; // unbalanced: refuse
                match action {
                    EdgeAction::Encoded { delta } => {
                        id = id.sub(delta);
                    }
                    EdgeAction::Unencoded => {
                        cc_ops += 1;
                        let e = cc.pop()?;
                        if e.count != 0 {
                            // A plain pop would discard folded
                            // repetitions; cannot happen for windows the
                            // rules admit, but refuse defensively.
                            return None;
                        }
                        id = e.id;
                    }
                    EdgeAction::UnencodedCompressed => {
                        cc_ops += 1;
                        let top = cc.last_mut()?;
                        id = top.id;
                        if top.count > 0 {
                            top.count -= 1;
                        } else {
                            cc.pop();
                        }
                    }
                }
            }
        }
    }

    // The net effect must be the identity on the encoding state.
    if !open.is_empty() || !cc.is_empty() || id != SymId::ENTRY {
        return None;
    }
    Some(SuperOp {
        window: window.to_vec(),
        calls,
        cc_ops,
        compress_hits,
        cc_peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }
    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }

    fn resolver(
        entries: &[(u32, u32, EdgeAction, bool)],
    ) -> impl Fn(CallSiteId, FunctionId) -> Option<ResolvedSite> {
        let map: HashMap<(CallSiteId, FunctionId), ResolvedSite> = entries
            .iter()
            .map(|&(site, target, action, tc_wrap)| {
                (
                    (s(site), f(target)),
                    ResolvedSite {
                        action,
                        dispatch_cost: 0,
                        tc_wrap,
                    },
                )
            })
            .collect();
        move |site, target| map.get(&(site, target)).copied()
    }

    fn call(site: u32, target: u32) -> WindowOp {
        WindowOp::Call {
            site: s(site),
            target: f(target),
        }
    }

    const ENC: fn(u64) -> EdgeAction = |delta| EdgeAction::Encoded { delta };

    #[test]
    fn encoded_window_folds_to_pure_counters() {
        let r = resolver(&[(0, 1, ENC(3), false), (1, 2, ENC(5), false)]);
        let w = [call(0, 1), call(1, 2), WindowOp::Ret, WindowOp::Ret];
        let so = compile_window(&r, 10, &w).expect("compiles");
        assert_eq!(so.calls, 2);
        assert_eq!(so.cc_ops, 0);
        assert_eq!(so.compress_hits, 0);
        assert_eq!(so.cc_peak, 0);
    }

    #[test]
    fn unencoded_window_counts_cc_ops_and_peak() {
        let r = resolver(&[(0, 1, EdgeAction::Unencoded, false), (1, 2, ENC(4), false)]);
        let w = [
            call(0, 1),
            call(1, 2),
            WindowOp::Ret,
            WindowOp::Ret,
            call(0, 1),
            WindowOp::Ret,
        ];
        let so = compile_window(&r, 10, &w).expect("compiles");
        assert_eq!(so.calls, 3);
        assert_eq!(so.cc_ops, 4, "two pushes + two pops");
        assert_eq!(so.cc_peak, 1);
    }

    #[test]
    fn compressed_recursion_hits_are_folded() {
        // Recursive self-call through a compressed site: the second and
        // third push see an identical <id, site, target> top and hit.
        let r = resolver(&[
            (0, 1, EdgeAction::Unencoded, false),
            (1, 1, EdgeAction::UnencodedCompressed, false),
        ]);
        let w = [
            call(0, 1),
            call(1, 1),
            call(1, 1),
            call(1, 1),
            WindowOp::Ret,
            WindowOp::Ret,
            WindowOp::Ret,
            WindowOp::Ret,
        ];
        let so = compile_window(&r, 10, &w).expect("compiles");
        assert_eq!(so.calls, 4);
        // push + 3 compressed pushes + 3 compressed pops + pop.
        assert_eq!(so.cc_ops, 8);
        assert_eq!(so.compress_hits, 2, "second and third recursive push");
        assert_eq!(so.cc_peak, 2, "boundary entry + one compressed entry");
    }

    #[test]
    fn refusals_fire() {
        let r = resolver(&[
            (0, 1, ENC(3), false),
            (2, 3, ENC(1), true),
            (4, 5, EdgeAction::UnencodedCompressed, false),
        ]);
        // Too short.
        assert!(compile_window(&r, 10, &[call(0, 1)]).is_none());
        // Starts with a return.
        assert!(compile_window(&r, 10, &[WindowOp::Ret, call(0, 1)]).is_none());
        // Unresolved (trapping) site.
        assert!(compile_window(&r, 10, &[call(9, 9), WindowOp::Ret]).is_none());
        // TcStack-wrapped site.
        assert!(compile_window(&r, 10, &[call(2, 3), WindowOp::Ret]).is_none());
        // Compressed push at relative depth 0.
        assert!(compile_window(&r, 10, &[call(4, 5), WindowOp::Ret]).is_none());
        // Unbalanced: extra return.
        assert!(compile_window(&r, 10, &[call(0, 1), WindowOp::Ret, WindowOp::Ret]).is_none());
        // Unbalanced: dangling call.
        assert!(compile_window(&r, 10, &[call(0, 1), call(0, 1), WindowOp::Ret]).is_none());
    }

    #[test]
    fn symbolic_equality_stays_decidable_for_admitted_windows() {
        // Inside a window every id above relative depth 0 is a concrete
        // Const (a push resets the id to maxID+1), so the compressed-push
        // compare is always decidable for windows the depth-0 rule
        // admits; the cross-base refusal in `eq_decidable` is a
        // defensive backstop. Assert the decidable cases compile with
        // the expected hit/miss outcomes.
        let r = resolver(&[
            (0, 1, EdgeAction::Unencoded, false),
            (1, 2, EdgeAction::UnencodedCompressed, false),
        ]);
        let w = [
            call(0, 1),
            call(1, 2),
            call(1, 2),
            WindowOp::Ret,
            WindowOp::Ret,
            WindowOp::Ret,
        ];
        let so = compile_window(&r, 10, &w).expect("decidable window compiles");
        assert_eq!(so.compress_hits, 1, "second compressed push hits");
        assert_eq!(so.cc_peak, 2);
        // The backstop itself: mixed bases are undecidable.
        assert_eq!(SymId::ENTRY.eq_decidable(SymId::konst(0)), None);
        assert_eq!(SymId::ENTRY.eq_decidable(SymId::ENTRY.add(1)), Some(false));
        assert_eq!(
            SymId::konst(5).eq_decidable(SymId::konst(9).sub(4)),
            Some(true)
        );
    }

    #[test]
    fn table_prefers_longest_match_and_counts_probe_kinds() {
        let r = resolver(&[(0, 1, ENC(3), false), (1, 2, ENC(5), false)]);
        let short = vec![call(0, 1), WindowOp::Ret];
        let long = vec![call(0, 1), call(1, 2), WindowOp::Ret, WindowOp::Ret];
        let table = SuperOpTable::compile(&r, 10, &[short, long], 16, 16);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());

        let trace = [
            BatchOp::Call {
                site: s(0),
                target: f(1),
            },
            BatchOp::Call {
                site: s(1),
                target: f(2),
            },
            BatchOp::Ret,
            BatchOp::Ret,
        ];
        match table.probe(&trace) {
            SuperOpProbe::Hit(so) => assert_eq!(so.window.len(), 4, "longest wins"),
            _ => panic!("expected hit"),
        }
        // A trace too short for the long window falls back to the short one.
        let short_trace = [
            BatchOp::Call {
                site: s(0),
                target: f(1),
            },
            BatchOp::Ret,
        ];
        match table.probe(&short_trace) {
            SuperOpProbe::Hit(so) => assert_eq!(so.window.len(), 2),
            _ => panic!("expected short hit"),
        }
        // Known head site, diverging tail -> miss; unknown site -> cold.
        let miss = [BatchOp::Call {
            site: s(0),
            target: f(9),
        }];
        assert!(matches!(table.probe(&miss), SuperOpProbe::Miss));
        let cold = [BatchOp::Call {
            site: s(7),
            target: f(1),
        }];
        assert!(matches!(table.probe(&cold), SuperOpProbe::Cold));
        assert!(matches!(table.probe(&[BatchOp::Ret]), SuperOpProbe::Cold));
    }

    #[test]
    fn table_caps_dedups_and_bounds_window_length() {
        let r = resolver(&[(0, 1, ENC(3), false)]);
        let w = vec![call(0, 1), WindowOp::Ret];
        let too_long = vec![
            call(0, 1),
            call(0, 1),
            call(0, 1),
            WindowOp::Ret,
            WindowOp::Ret,
            WindowOp::Ret,
        ];
        let cands = vec![w.clone(), w.clone(), too_long];
        let table = SuperOpTable::compile(&r, 10, &cands, 4, 16);
        assert_eq!(table.len(), 1, "duplicate and over-long windows skipped");
        let capped = SuperOpTable::compile(
            &r,
            10,
            &[
                vec![call(0, 1), WindowOp::Ret],
                vec![call(0, 1), call(0, 1), WindowOp::Ret, WindowOp::Ret],
            ],
            16,
            1,
        );
        assert_eq!(capped.len(), 1, "table size capped");
    }

    #[test]
    fn matched_fold_equals_event_by_event_execution() {
        // Differential check at the unit level: run the window through a
        // real CcStack + id and compare with the superop's net effect.
        use crate::ccstack::CcStack;
        let max_id = 10u64;
        let r = resolver(&[
            (0, 1, EdgeAction::Unencoded, false),
            (1, 1, EdgeAction::UnencodedCompressed, false),
            (2, 3, ENC(4), false),
        ]);
        let w = [
            call(2, 3),
            call(0, 1),
            call(1, 1),
            call(1, 1),
            WindowOp::Ret,
            WindowOp::Ret,
            WindowOp::Ret,
            WindowOp::Ret,
        ];
        let so = compile_window(&r, max_id, &w).expect("compiles");

        // Event-by-event, from an arbitrary entry state.
        let mut id = 12345u64;
        let mut cc = CcStack::new();
        cc.push(7, s(9), f(9)); // pre-existing entry below the window
        let entry_id = id;
        let entry_depth = cc.depth();
        let ops_before = cc.ops();
        let mut stack: Vec<EdgeAction> = Vec::new();
        let mut hits = 0u64;
        for &op in &w {
            match op {
                WindowOp::Call { site, target } => {
                    let a = r(site, target).unwrap().action;
                    match a {
                        EdgeAction::Encoded { delta } => id = id.wrapping_add(delta),
                        EdgeAction::Unencoded => {
                            cc.push(id, site, target);
                            id = max_id + 1;
                        }
                        EdgeAction::UnencodedCompressed => {
                            if cc.push_compressed(id, site, target) {
                                hits += 1;
                            }
                            id = max_id + 1;
                        }
                    }
                    stack.push(a);
                }
                WindowOp::Ret => match stack.pop().unwrap() {
                    EdgeAction::Encoded { delta } => id = id.wrapping_sub(delta),
                    EdgeAction::Unencoded => id = cc.pop(),
                    EdgeAction::UnencodedCompressed => id = cc.pop_compressed(),
                },
            }
        }
        assert_eq!(id, entry_id, "id restored");
        assert_eq!(cc.depth(), entry_depth, "ccStack depth restored");
        assert_eq!(cc.ops() - ops_before, so.cc_ops, "op count matches fold");
        assert_eq!(hits, so.compress_hits, "compression hits match fold");
        assert_eq!(
            cc.max_depth(),
            entry_depth + so.cc_peak,
            "peak matches fold"
        );
    }
}
