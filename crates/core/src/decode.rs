//! The context decoder — Algorithm 1 of the paper.
//!
//! Decoding walks one acyclic sub-path at a time, from the sampled function
//! back towards the thread root. An id greater than `maxID` signals that the
//! current sub-path was started by an unencoded (or recursive) edge whose
//! suspended context sits on the `ccStack`; the id is adjusted by
//! `maxID + 1` and the `onstack` flag set. Whenever the adjusted id reaches
//! 0 and `onstack` holds, the decoder first tries to match the current
//! function against the target of the top `ccStack` entry — the head of an
//! acyclic sub-path is always the target of the edge that suspended it, and
//! a sub-path cannot revisit its head (it is acyclic), so the match is
//! unambiguous. Compressed entries (repetition `count > 0`, §3.3) stand for
//! `count + 1` boundary instances with identical saved state; each pop
//! consumes one instance.
//!
//! The full context of a child thread is the decoded context of its parent
//! at spawn time concatenated with its own (§5.3); [`decode_full`] follows
//! the spawn links recursively.

use std::collections::HashMap;

use dacce_callgraph::{CallSiteId, DecodeDict, DictStore, FunctionId, TimeStamp};
use dacce_program::{ContextPath, PathStep};

use crate::ccstack::CcEntry;
use crate::context::EncodedContext;

/// Decoding failures. Any occurrence on a context produced by the engine is
/// a bug; the error carries enough detail to debug it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// No dictionary recorded for the context's timestamp.
    UnknownTimestamp(TimeStamp),
    /// A ccStack entry references a call site whose containing function is
    /// unknown.
    UnknownSiteOwner(CallSiteId),
    /// `onstack` is set but the ccStack is exhausted.
    CcStackUnderflow {
        /// The function being decoded when the stack ran dry.
        at: FunctionId,
    },
    /// No incoming encoded edge covers the current id.
    NoMatchingEdge {
        /// The function being decoded.
        at: FunctionId,
        /// The (adjusted) id that no edge range contains.
        id: u64,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownTimestamp(ts) => write!(f, "no decode dictionary for {ts}"),
            DecodeError::UnknownSiteOwner(cs) => write!(f, "unknown owner function of {cs}"),
            DecodeError::CcStackUnderflow { at } => {
                write!(f, "ccStack exhausted while decoding at {at}")
            }
            DecodeError::NoMatchingEdge { at, id } => {
                write!(f, "no incoming edge of {at} covers id {id}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes one thread-local context (no spawn prefix) into a root-first
/// path.
///
/// `owner` maps call sites to their containing function; the engine learns
/// this mapping when sites first trap (a binary implementation reads it off
/// the instruction address).
///
/// # Errors
///
/// Returns a [`DecodeError`] when the context is inconsistent with the
/// dictionary — which, for engine-produced contexts, indicates a bug.
pub fn decode_thread(
    dict: &DecodeDict,
    id: u64,
    leaf: FunctionId,
    root: FunctionId,
    cc: &[CcEntry],
    owner: &HashMap<CallSiteId, FunctionId>,
) -> Result<ContextPath, DecodeError> {
    let max_id = dict.max_id();
    let mut stack: Vec<CcEntry> = cc.to_vec();

    // AdjustID (Algorithm 1, lines 1-4).
    let mut id = id;
    let mut onstack = false;
    let adjust = |id: &mut u64, onstack: &mut bool| {
        if *id > max_id {
            *id -= max_id + 1;
            *onstack = true;
        }
    };
    adjust(&mut id, &mut onstack);

    // Steps are built leaf-to-root; `site` is the call site through which
    // the step's function was entered (filled in when the edge is found).
    let mut steps: Vec<(Option<CallSiteId>, FunctionId)> = vec![(None, leaf)];

    loop {
        // Lines 9-25: match sub-path heads against the ccStack top.
        while id == 0 && onstack {
            let cur = steps.last().expect("steps never empty").1;
            let Some(top) = stack.last().copied() else {
                return Err(DecodeError::CcStackUnderflow { at: cur });
            };
            if cur != top.target {
                break;
            }
            onstack = false;
            // A compressed entry stands for `count + 1` boundary instances
            // with *identical* saved state (that is what made compression
            // hit, §3.3); consume one instance per pop — the repeated
            // interior sub-paths then decode naturally, because each
            // restart sees the same id.
            if top.count > 0 {
                stack.last_mut().expect("checked above").count -= 1;
            } else {
                stack.pop();
            }
            steps.last_mut().expect("steps never empty").0 = Some(top.site);
            let Some(&caller) = owner.get(&top.site) else {
                return Err(DecodeError::UnknownSiteOwner(top.site));
            };
            steps.push((None, caller));
            id = top.id;
            adjust(&mut id, &mut onstack);
        }

        let cur = steps.last().expect("steps never empty").1;

        // Termination: back at the thread root with nothing suspended.
        if cur == root && id == 0 && !onstack && stack.is_empty() {
            break;
        }

        // Lines 26-33: one acyclic step through the encoded edges.
        let mut found = None;
        for e in dict.incoming(cur) {
            if e.back {
                continue;
            }
            let p_cc = dict.num_cc(e.caller).unwrap_or(1);
            if e.encoding <= id && id < e.encoding.saturating_add(p_cc) {
                found = Some((e.site, e.caller, e.encoding));
                break;
            }
        }
        match found {
            Some((site, caller, encoding)) => {
                steps.last_mut().expect("steps never empty").0 = Some(site);
                steps.push((None, caller));
                id -= encoding;
            }
            None => return Err(DecodeError::NoMatchingEdge { at: cur, id }),
        }
    }

    // Each step carries the site through which its function was entered;
    // reversing the leaf-to-root order yields the root-first path (the root
    // step's site stays `None`).
    let path = steps
        .iter()
        .rev()
        .map(|&(site, func)| PathStep { site, func })
        .collect();
    Ok(ContextPath(path))
}

/// Decodes a full context, following spawn links so that a child thread's
/// path is prefixed with its creation context.
///
/// # Errors
///
/// Propagates any [`DecodeError`] from the thread-local decodes.
pub fn decode_full(
    ctx: &EncodedContext,
    dicts: &DictStore,
    owner: &HashMap<CallSiteId, FunctionId>,
) -> Result<ContextPath, DecodeError> {
    let dict = dicts
        .get(ctx.ts)
        .ok_or(DecodeError::UnknownTimestamp(ctx.ts))?;
    let own = decode_thread(dict, ctx.id, ctx.leaf, ctx.root, &ctx.cc, owner)?;
    match &ctx.spawn {
        None => Ok(own),
        Some(link) => {
            let parent = decode_full(&link.parent, dicts, owner)?;
            Ok(own.prepend(&parent, Some(link.site)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_callgraph::analysis::classify_back_edges;
    use dacce_callgraph::encode::{encode_graph, EncodeOptions};
    use dacce_callgraph::{CallGraph, Dispatch};

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    /// Builds a dictionary from edges and returns it with the owner map.
    fn dict_of(
        edges: &[(u32, u32, u32)], // (caller, callee, site)
        roots: &[FunctionId],
    ) -> (DecodeDict, HashMap<CallSiteId, FunctionId>) {
        let mut g = CallGraph::new();
        let mut owner = HashMap::new();
        for &(a, b, cs) in edges {
            g.add_edge(f(a), f(b), s(cs), Dispatch::Direct);
            owner.insert(s(cs), f(a));
        }
        classify_back_edges(&mut g, roots);
        let enc = encode_graph(&g, roots, &EncodeOptions::default());
        (
            DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap(),
            owner,
        )
    }

    fn path(steps: &[(Option<u32>, u32)]) -> ContextPath {
        ContextPath(
            steps
                .iter()
                .map(|&(site, func)| PathStep {
                    site: site.map(s),
                    func: f(func),
                })
                .collect(),
        )
    }

    /// Figure 1 / §2.1: fully encoded diamond, no ccStack involved.
    #[test]
    fn decode_fully_encoded_diamond() {
        let (dict, owner) = dict_of(&[(0, 1, 0), (0, 2, 1), (1, 3, 2), (2, 3, 3)], &[f(0)]);
        // Path A->C->D has id = En(CD) = 1.
        let got = decode_thread(&dict, 1, f(3), f(0), &[], &owner).unwrap();
        assert_eq!(got, path(&[(None, 0), (Some(1), 2), (Some(3), 3)]));
        // Path A->B->D has id 0.
        let got = decode_thread(&dict, 0, f(3), f(0), &[], &owner).unwrap();
        assert_eq!(got, path(&[(None, 0), (Some(0), 1), (Some(2), 3)]));
    }

    /// Figure 2: edge A->D unencoded; context AD is id = maxID+1 with
    /// <0, A, D> on the stack.
    #[test]
    fn decode_fig2_unencoded_edge() {
        // Encoded graph: A->C (site 0), C->D (site 1). Unencoded A->D uses
        // site 2 which is absent from the dictionary.
        let (dict, mut owner) = dict_of(&[(0, 2, 0), (2, 3, 1)], &[f(0)]);
        owner.insert(s(2), f(0));
        assert_eq!(dict.max_id(), 0);
        let cc = [CcEntry {
            id: 0,
            site: s(2),
            target: f(3),
            count: 0,
        }];
        let got = decode_thread(&dict, 1, f(3), f(0), &cc, &owner).unwrap();
        assert_eq!(got, path(&[(None, 0), (Some(2), 3)]));
    }

    /// §3.1: two unencoded edges split A->B->C->D into three sub-paths.
    #[test]
    fn decode_two_unencoded_boundaries() {
        // Encoded: B->C (site 1). Unencoded: A->B (site 0), C->D (site 2).
        let (dict, mut owner) = dict_of(&[(1, 2, 1)], &[f(1)]);
        owner.insert(s(0), f(0));
        owner.insert(s(2), f(2));
        let max = dict.max_id();
        let cc = [
            CcEntry {
                id: 0,
                site: s(0),
                target: f(1),
                count: 0,
            },
            CcEntry {
                id: max + 1,
                site: s(2),
                target: f(3),
                count: 0,
            },
        ];
        let got = decode_thread(&dict, max + 1, f(3), f(0), &cc, &owner).unwrap();
        assert_eq!(
            got,
            path(&[(None, 0), (Some(0), 1), (Some(1), 2), (Some(2), 3)])
        );
    }

    /// §3.3 / Figure 5(a-c): recursion ADACDAD with unencoded AD and DA.
    #[test]
    fn decode_fig5_recursion_uncompressed() {
        // Encoded graph: A->C (site 0), C->D (site 1); boundary sites:
        // A->D = site 2, D->A = site 3.
        let (dict, mut owner) = dict_of(&[(0, 1, 0), (1, 3, 1)], &[f(0)]);
        owner.insert(s(2), f(0));
        owner.insert(s(3), f(3));
        let m = dict.max_id(); // 0
                               // Path A D A C D A D: boundaries AD, DA, (encoded ACD), DA, AD.
                               // Trace the pushes: <0,A,D>, <m+1,D,A>, <m+1,D,A>... matching the
                               // paper's worked example <0,A,D>,<1,D,A>,<1,D,A>,<1,A,D> with id 1.
        let cc = [
            CcEntry {
                id: 0,
                site: s(2),
                target: f(3),
                count: 0,
            },
            CcEntry {
                id: m + 1,
                site: s(3),
                target: f(0),
                count: 0,
            },
            CcEntry {
                id: m + 1,
                site: s(3),
                target: f(0),
                count: 0,
            },
            CcEntry {
                id: m + 1,
                site: s(2),
                target: f(3),
                count: 0,
            },
        ];
        // Wait: entry 3 is A->D again (site 2, target D), pushed with the
        // id A held at that time (m+1 adjusted ...). Current function D,
        // id = m+1.
        let got = decode_thread(&dict, m + 1, f(3), f(0), &cc, &owner).unwrap();
        // Expected: A -2-> D -3-> A -0-> C -1-> D -3-> A -2-> D? The paper
        // decodes ADACDAD: A D A C D A D.
        assert_eq!(
            got,
            path(&[
                (None, 0),
                (Some(2), 3),
                (Some(3), 0),
                (Some(0), 1),
                (Some(1), 3),
                (Some(3), 0),
                (Some(2), 3),
            ])
        );
    }

    /// Figure 5(d-f): after re-encoding, compressed recursion decodes with
    /// repetition expansion to A C D A D A D A D.
    #[test]
    fn decode_fig5_compressed_recursion() {
        // Encoded: A->C (site 0, En 0), C->D (site 1, En 1), A->D (site 2,
        // En 0). Back edge D->A = site 3 (in graph, flagged back).
        let mut g = CallGraph::new();
        let mut owner = HashMap::new();
        let mut edge_ids = Vec::new();
        for &(a, b, cs) in &[(0u32, 1u32, 0u32), (1, 3, 1), (0, 3, 2), (3, 0, 3)] {
            let (eid, _) = g.add_edge(f(a), f(b), s(cs), Dispatch::Direct);
            edge_ids.push(eid);
            owner.insert(s(cs), f(a));
        }
        classify_back_edges(&mut g, &[f(0)]);
        // The recursive path makes A->D the hot incoming edge of D; the
        // adaptive encoder gives it En 0, matching the paper's figure.
        let heat: HashMap<_, _> = [(edge_ids[2], 100u64)].into_iter().collect();
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::with_heat(heat));
        let dict = DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap();
        assert_eq!(dict.max_id(), 1);
        // Figure 5f final state: id = 2, ccStack (1,D,A,0) | (2,D,A,1).
        let cc = [
            CcEntry {
                id: 1,
                site: s(3),
                target: f(0),
                count: 0,
            },
            CcEntry {
                id: 2,
                site: s(3),
                target: f(0),
                count: 1,
            },
        ];
        let got = decode_thread(&dict, 2, f(3), f(0), &cc, &owner).unwrap();
        // A C D (A D) x3 = A C D A D A D A D.
        assert_eq!(
            got,
            path(&[
                (None, 0),
                (Some(0), 1),
                (Some(1), 3),
                (Some(3), 0),
                (Some(2), 3),
                (Some(3), 0),
                (Some(2), 3),
                (Some(3), 0),
                (Some(2), 3),
            ])
        );
    }

    /// §3.2 / Figure 3: indirect call boundary ACEI with id 7.
    #[test]
    fn decode_fig3_indirect_boundary() {
        // Reconstruct the figure's graph shape: A->B, A->C, B->D, C->D,
        // D->F, E->I with maxID 4 requires numCC(I)=5; we model the gist:
        // encoded sub-path E->I (En 2 within a graph of maxID 4) after an
        // unencoded C->E indirect edge. Using a simplified dictionary with
        // the same semantics: E->I encoded, boundary <0, C, E>.
        let (dict, mut owner) = dict_of(
            &[
                (0, 1, 0), // A->B
                (0, 2, 1), // A->C
                (1, 3, 2), // B->D
                (2, 3, 3), // C->D
                (3, 5, 4), // D->F
                (4, 6, 5), // E->I
            ],
            &[f(0), f(4)],
        );
        owner.insert(s(9), f(2)); // the indirect site in C targeting E
        let m = dict.max_id();
        let cc = [CcEntry {
            id: 0,
            site: s(9),
            target: f(4),
            count: 0,
        }];
        // Context A->C (id 0) | indirect to E | E->I: id = m+1 + En(EI).
        let en_ei = dict.get_edge(s(5), f(6)).unwrap().encoding;
        let got = decode_thread(&dict, m + 1 + en_ei, f(6), f(0), &cc, &owner).unwrap();
        assert_eq!(
            got,
            path(&[(None, 0), (Some(1), 2), (Some(9), 4), (Some(5), 6)])
        );
    }

    #[test]
    fn decode_errors_on_missing_dictionary() {
        let ctx = EncodedContext {
            ts: TimeStamp::new(3),
            id: 0,
            leaf: f(0),
            root: f(0),
            cc: vec![],
            spawn: None,
        };
        let dicts = DictStore::new();
        let owner = HashMap::new();
        assert_eq!(
            decode_full(&ctx, &dicts, &owner).unwrap_err(),
            DecodeError::UnknownTimestamp(TimeStamp::new(3))
        );
    }

    #[test]
    fn decode_errors_on_unknown_site_owner() {
        let (dict, _) = dict_of(&[(0, 1, 0)], &[f(0)]);
        let owner = HashMap::new(); // deliberately empty
        let cc = [CcEntry {
            id: 0,
            site: s(7),
            target: f(1),
            count: 0,
        }];
        let err = decode_thread(&dict, dict.max_id() + 1, f(1), f(0), &cc, &owner).unwrap_err();
        assert_eq!(err, DecodeError::UnknownSiteOwner(s(7)));
    }

    #[test]
    fn decode_errors_on_impossible_id() {
        let (dict, owner) = dict_of(&[(0, 1, 0)], &[f(0)]);
        // id 0 at node 1 decodes fine; id at node with no covering edge
        // errors. Node 0 with id != 0 has no incoming edge.
        let err = decode_thread(&dict, 0, f(9), f(0), &[], &owner).unwrap_err();
        assert!(matches!(err, DecodeError::NoMatchingEdge { .. }));
    }

    #[test]
    fn decode_errors_on_ccstack_underflow() {
        let (dict, owner) = dict_of(&[(0, 1, 0)], &[f(0)]);
        // onstack set (id > maxID) but empty ccStack and id adjusts to 0 at
        // a function that is not the root.
        let err = decode_thread(&dict, dict.max_id() + 1, f(1), f(0), &[], &owner).unwrap_err();
        assert!(matches!(err, DecodeError::CcStackUnderflow { .. }));
    }

    #[test]
    fn decode_full_prepends_spawn_contexts() {
        let mut g = CallGraph::new();
        let mut owner = HashMap::new();
        g.add_edge(f(0), f(1), s(0), Dispatch::Direct);
        owner.insert(s(0), f(0));
        classify_back_edges(&mut g, &[f(0)]);
        let enc = encode_graph(&g, &[f(0)], &EncodeOptions::default());
        let mut dicts = DictStore::new();
        dicts.push(DecodeDict::from_encoding(&g, &enc, TimeStamp::ZERO).unwrap());

        // Parent sampled inside f1 (path f0 -> f1); child rooted at f5.
        let parent = EncodedContext {
            ts: TimeStamp::ZERO,
            id: 0,
            leaf: f(1),
            root: f(0),
            cc: vec![],
            spawn: None,
        };
        let child = EncodedContext {
            ts: TimeStamp::ZERO,
            id: 0,
            leaf: f(5),
            root: f(5),
            cc: vec![],
            spawn: Some(crate::context::SpawnLink {
                site: s(9),
                parent: Box::new(parent),
            }),
        };
        let got = decode_full(&child, &dicts, &owner).unwrap();
        assert_eq!(got, path(&[(None, 0), (Some(0), 1), (Some(9), 5)]));
    }

    #[test]
    fn decode_error_display_is_informative() {
        let e = DecodeError::NoMatchingEdge { at: f(3), id: 7 };
        assert!(e.to_string().contains("f3"));
        assert!(e.to_string().contains('7'));
    }
}
