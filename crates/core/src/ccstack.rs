//! The encoding-context stack (`ccStack`).
//!
//! Call paths that contain unencoded or recursive edges are split into
//! acyclic sub-paths (§3 of the paper); before such an edge is taken, the
//! current encoding context `<id, callsite, target>` is pushed, and the id
//! is reset to `maxID + 1` so that decoders can tell the sub-path apart.
//! Highly repetitive recursion is compressed with a repetition counter on
//! the top entry (§3.3, Figure 5e).

use dacce_callgraph::{CallSiteId, FunctionId};

/// One `ccStack` entry: the suspended id, the call site of the unencoded /
/// recursive edge, its target, and the number of *additional* compressed
/// repetitions of the same boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CcEntry {
    /// The context id at the moment the edge was taken.
    pub id: u64,
    /// The call site of the unencoded edge.
    pub site: CallSiteId,
    /// The target function of the unencoded edge (the head of the sub-path
    /// that follows).
    pub target: FunctionId,
    /// Extra repetitions compressed into this entry (0 = pushed once).
    pub count: u64,
}

/// A per-thread encoding-context stack with operation statistics.
///
/// Under an injected overflow limit ([`CcStack::set_spill_limit`]) the
/// stack never refuses a push: once the resident region exceeds the
/// limit, the *bottom* entries — the coldest, only needed again when the
/// thread unwinds that deep — are shed to a heap spill region down to a
/// watermark of half the limit. No entry is ever dropped, so decoding is
/// unaffected; the spill is bookkeeping standing in for the mmap'd
/// overflow arena a production runtime would page cold frames into.
#[derive(Clone, Debug, Default)]
pub struct CcStack {
    entries: Vec<CcEntry>,
    ops: u64,
    max_depth: usize,
    /// Injected resident-region limit; `None` = unbounded (no fault).
    spill_limit: Option<usize>,
    /// Entries at the bottom currently shed to the spill region.
    spilled: usize,
    spill_events: u64,
    spilled_peak: usize,
}

impl CcStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current depth (number of entries).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Greatest depth ever reached.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Total push/pop/compress operations performed (Table 1's `ccStack/s`
    /// numerator).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// True when no entry is on the stack.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The top entry, if any.
    pub fn top(&self) -> Option<&CcEntry> {
        self.entries.last()
    }

    /// Pushes a plain (uncompressed) entry: the Figure 2b instrumentation.
    pub fn push(&mut self, id: u64, site: CallSiteId, target: FunctionId) {
        self.ops += 1;
        self.entries.push(CcEntry {
            id,
            site,
            target,
            count: 0,
        });
        self.max_depth = self.max_depth.max(self.entries.len());
        self.maybe_spill();
    }

    /// The compressed push of Figure 5e: if `<id, site, target>` equals the
    /// top entry, increments its repetition counter instead of pushing.
    /// Returns `true` when compression hit.
    pub fn push_compressed(&mut self, id: u64, site: CallSiteId, target: FunctionId) -> bool {
        self.ops += 1;
        if let Some(top) = self.entries.last_mut() {
            if top.id == id && top.site == site && top.target == target {
                top.count += 1;
                return true;
            }
        }
        self.entries.push(CcEntry {
            id,
            site,
            target,
            count: 0,
        });
        self.max_depth = self.max_depth.max(self.entries.len());
        self.maybe_spill();
        false
    }

    /// Pops one plain entry and returns its saved id.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty — balanced instrumentation never
    /// underflows.
    pub fn pop(&mut self) -> u64 {
        self.ops += 1;
        let id = self.entries.pop().expect("ccStack underflow").id;
        self.unspill_to_len();
        id
    }

    /// The compressed pop of Figure 5e: restores the saved id and either
    /// decrements the top counter or removes the entry.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    pub fn pop_compressed(&mut self) -> u64 {
        self.ops += 1;
        let top = self.entries.last_mut().expect("ccStack underflow");
        let id = top.id;
        if top.count > 0 {
            top.count -= 1;
        } else {
            self.entries.pop();
            self.unspill_to_len();
        }
        id
    }

    /// Truncates the stack to `len` entries (the TcStack absolute restore
    /// discards entries pushed by a tail-call chain, §5.2).
    pub fn truncate(&mut self, len: usize) {
        if len < self.entries.len() {
            self.ops += 1;
            self.entries.truncate(len);
            self.unspill_to_len();
        }
    }

    /// Resets the top entry's repetition counter (the second half of the
    /// TcStack absolute restore: a compressed push that hit the top
    /// incremented its count without growing the stack, and a tail call in
    /// the callee means no balancing pop ever ran).
    pub fn restore_top_count(&mut self, count: u64) {
        if let Some(top) = self.entries.last_mut() {
            top.count = count;
        }
    }

    /// Folds a superop's memoized ccStack effect into the statistics: a
    /// balanced window restores the entries exactly, so only the
    /// operation count and the max-depth high-water mark move. Callers
    /// must have checked that no spill limit is armed (superop guards
    /// bail to the per-event path otherwise).
    pub(crate) fn apply_bulk(&mut self, ops: u64, peak_depth: usize) {
        debug_assert!(
            self.spill_limit.is_none(),
            "superop applied with spill armed"
        );
        self.ops += ops;
        self.max_depth = self.max_depth.max(peak_depth);
    }

    /// True when an injected resident-region limit is armed (superops
    /// must then run every push/pop for real to keep spill bookkeeping).
    pub(crate) fn spill_armed(&self) -> bool {
        self.spill_limit.is_some()
    }

    /// Removes all entries (thread restart).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.spilled = 0;
    }

    /// The entries bottom-to-top (for samples and regeneration).
    pub fn entries(&self) -> &[CcEntry] {
        &self.entries
    }

    /// Logical depth counting compressed repetitions, i.e. the number of
    /// boundaries an uncompressed stack would hold.
    pub fn logical_depth(&self) -> u64 {
        self.entries.iter().map(|e| e.count + 1).sum()
    }

    /// Arms (or disarms) the injected resident-region limit. Limits below
    /// 2 are clamped so the watermark stays meaningful.
    pub fn set_spill_limit(&mut self, limit: Option<usize>) {
        self.spill_limit = limit.map(|l| l.max(2));
    }

    /// Entries currently shed to the heap spill region.
    pub fn spilled(&self) -> usize {
        self.spilled
    }

    /// Watermark shedding events performed (each sheds a batch).
    pub fn spill_events(&self) -> u64 {
        self.spill_events
    }

    /// Greatest number of entries ever resident in the spill region.
    pub fn spilled_peak(&self) -> usize {
        self.spilled_peak
    }

    /// Sheds the bottom of the stack to the spill region when the
    /// resident part exceeds the injected limit, down to a watermark of
    /// half the limit.
    fn maybe_spill(&mut self) {
        let Some(limit) = self.spill_limit else {
            return;
        };
        let resident = self.entries.len() - self.spilled;
        if resident > limit {
            let watermark = (limit / 2).max(1);
            self.spilled += resident - watermark;
            self.spill_events += 1;
            self.spilled_peak = self.spilled_peak.max(self.spilled);
        }
    }

    /// Pages entries back in as unwinding reaches the spill boundary.
    fn unspill_to_len(&mut self) {
        if self.spilled > self.entries.len() {
            self.spilled = self.entries.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }
    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut st = CcStack::new();
        st.push(7, s(1), f(2));
        st.push(9, s(3), f(4));
        assert_eq!(st.depth(), 2);
        assert_eq!(st.top().unwrap().id, 9);
        assert_eq!(st.pop(), 9);
        assert_eq!(st.pop(), 7);
        assert!(st.is_empty());
        assert_eq!(st.ops(), 4);
        assert_eq!(st.max_depth(), 2);
    }

    #[test]
    fn compression_collapses_identical_boundaries() {
        let mut st = CcStack::new();
        assert!(!st.push_compressed(2, s(1), f(0)));
        assert!(st.push_compressed(2, s(1), f(0)));
        assert!(st.push_compressed(2, s(1), f(0)));
        assert_eq!(st.depth(), 1);
        assert_eq!(st.top().unwrap().count, 2);
        assert_eq!(st.logical_depth(), 3);
        // Pops mirror the pushes.
        assert_eq!(st.pop_compressed(), 2);
        assert_eq!(st.top().unwrap().count, 1);
        assert_eq!(st.pop_compressed(), 2);
        assert_eq!(st.pop_compressed(), 2);
        assert!(st.is_empty());
    }

    #[test]
    fn compression_misses_on_different_state() {
        let mut st = CcStack::new();
        st.push_compressed(2, s(1), f(0));
        // Different id: no compression.
        assert!(!st.push_compressed(3, s(1), f(0)));
        // Different site: no compression.
        assert!(!st.push_compressed(3, s(2), f(0)));
        // Different target: no compression.
        assert!(!st.push_compressed(3, s(2), f(1)));
        assert_eq!(st.depth(), 4);
    }

    #[test]
    fn figure5_sequence_matches_paper() {
        // Figure 5f: after re-encoding, trace A C D A D A D A D produces
        // ccStack (1,D,A,0) | (2,D,A,1) with the D->A site as boundary.
        let da = s(10); // the D -> A recursive site
        let a = f(0);
        let mut st = CcStack::new();
        st.push_compressed(1, da, a); // first D -> A, id was 1
        st.push_compressed(2, da, a); // second D -> A, id was 2
        st.push_compressed(2, da, a); // third D -> A, identical state
        assert_eq!(st.depth(), 2);
        assert_eq!(
            st.entries(),
            &[
                CcEntry {
                    id: 1,
                    site: da,
                    target: a,
                    count: 0
                },
                CcEntry {
                    id: 2,
                    site: da,
                    target: a,
                    count: 1
                },
            ]
        );
    }

    #[test]
    fn truncate_discards_tail_garbage() {
        let mut st = CcStack::new();
        st.push(1, s(1), f(1));
        st.push(2, s(2), f(2));
        st.push(3, s(3), f(3));
        st.truncate(1);
        assert_eq!(st.depth(), 1);
        assert_eq!(st.top().unwrap().id, 1);
        // Truncating to a larger length is a no-op.
        let ops = st.ops();
        st.truncate(5);
        assert_eq!(st.ops(), ops);
    }

    #[test]
    #[should_panic(expected = "ccStack underflow")]
    fn pop_empty_panics() {
        CcStack::new().pop();
    }

    #[test]
    fn spill_sheds_to_watermark_and_loses_nothing() {
        let mut st = CcStack::new();
        st.set_spill_limit(Some(4));
        for i in 0..10u64 {
            st.push(i, s(1), f(1));
        }
        // Every entry is still present (soundness), but the resident
        // region was shed to the watermark at least once.
        assert_eq!(st.depth(), 10);
        assert!(st.spill_events() > 0);
        assert!(st.spilled() > 0);
        assert!(st.spilled_peak() >= st.spilled());
        assert!(st.depth() - st.spilled() <= 4);
        // Unwinding pops every id back in order; the spill region pages
        // back in as the boundary is reached.
        for i in (0..10u64).rev() {
            assert_eq!(st.pop(), i);
        }
        assert!(st.is_empty());
        assert_eq!(st.spilled(), 0);
    }

    #[test]
    fn spill_limit_is_clamped_and_optional() {
        let mut st = CcStack::new();
        st.set_spill_limit(Some(0)); // clamped to 2
        st.push(1, s(1), f(1));
        st.push(2, s(1), f(1));
        st.push(3, s(1), f(1));
        assert_eq!(st.depth(), 3);
        assert!(st.spilled() > 0);
        st.set_spill_limit(None);
        for i in 0..20u64 {
            st.push(i, s(2), f(2));
        }
        let spilled_before = st.spilled();
        assert_eq!(st.spilled(), spilled_before);
        assert_eq!(st.depth(), 23);
    }

    #[test]
    fn clear_resets_entries_but_keeps_stats() {
        let mut st = CcStack::new();
        st.push(1, s(1), f(1));
        st.clear();
        assert!(st.is_empty());
        assert_eq!(st.max_depth(), 1);
        assert_eq!(st.ops(), 1);
    }
}
