//! Shared encoding state and its published snapshots.
//!
//! This is one half of the engine split: everything that is *global* to a
//! DACCE instance — the dynamic call graph, the per-site patch states (the
//! "generated code"), the versioned decode dictionaries, `gTimeStamp`,
//! `maxID`, edge heat, re-encoding trigger state and aggregate statistics —
//! lives in [`SharedState`]. Per-thread encoding contexts are owned by the
//! other half (the [`crate::engine::DacceEngine`] facade or the concurrent
//! [`crate::tracker::Tracker`] slots) and never appear here.
//!
//! Concurrent runtimes do not read [`SharedState`] directly on their fast
//! paths: the slow path freezes it into an immutable [`EncodingSnapshot`]
//! (O(1) thanks to the copy-on-write [`PatchTable`] and the `Arc`-backed
//! [`DictStore`]) and publishes it under an epoch counter. Reader threads
//! keep a cached `Arc<EncodingSnapshot>` and revalidate it with a single
//! atomic epoch load per event — see `DESIGN.md`, "Concurrency
//! architecture".

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dacce_callgraph::analysis::classify_back_edges;
use dacce_callgraph::encode::{encode_graph, EncodeOptions, Encoding};
use dacce_callgraph::{
    CallGraph, CallSiteId, DecodeDict, DictStore, Dispatch, EdgeId, FunctionId, TimeStamp,
};
use dacce_program::runtime::CallDispatch;
use dacce_program::{ContextPath, CostModel};

use crate::config::{CompressionMode, DacceConfig};
use crate::context::EncodedContext;
use crate::decode::{decode_full, DecodeError};
use crate::dispatch::DispatchTable;
use crate::lineage::{EncodingLineage, LineageState};
use crate::observe::{self, ObsWriter, Observability};
use crate::patch::{EdgeAction, IndirectPatch, PatchTable, SitePatch};
use crate::profile::HotContextProfile;
use crate::stats::{DacceStats, ProgressPoint};
use crate::superop::{SuperOpTable, WindowOp};
use crate::warm::WarmStartReport;

/// Minimum heat for an edge to participate in the hot-path-change check;
/// filters sampling noise.
const HOT_FLOOR: u64 = 16;

/// Capacity of the continuous-profiler sample ring (weighted contexts kept
/// for decode-on-demand profiles and, behind
/// [`DacceConfig::profiler_feedback`], re-encode heat derivation).
const PROFILER_RING_CAP: usize = 256;

/// Result of one re-encoding attempt.
pub(crate) enum ReencodeOutcome {
    /// A new dictionary was published; thread states must be regenerated
    /// (eagerly by the engine, lazily by the concurrent tracker).
    Applied,
    /// The attempt aborted: either the grown graph would overflow the
    /// 64-bit id budget (old encoding stays, re-encoding permanently
    /// disabled, degraded trap-everything mode from here on) or an
    /// injected abort rolled the generation back for a later retry.
    Overflowed,
}

/// How a re-encode request was serviced when the instance is attached to a
/// shared [`EncodingLineage`].
pub(crate) enum LineageReencode {
    /// A newer generation published by another tenant was adopted instead
    /// of re-encoding locally; thread states must be regenerated exactly
    /// as after an applied re-encode.
    Adopted,
    /// The local re-encoding core ran (and, when applied and attached
    /// non-diverged, its result was published into the lineage).
    Local(ReencodeOutcome, u64),
}

/// The shared (cross-thread) half of a DACCE instance.
#[derive(Debug)]
pub(crate) struct SharedState {
    pub(crate) config: DacceConfig,
    pub(crate) cost: CostModel,
    /// The dynamic call graph, copy-on-write shared with an attached
    /// lineage: attaching is `Arc::clone`, the first local mutation after
    /// attach pays one deep clone (`Arc::make_mut`).
    pub(crate) graph: Arc<CallGraph>,
    pub(crate) dicts: DictStore,
    pub(crate) ts: TimeStamp,
    pub(crate) max_id: u64,
    pub(crate) patches: PatchTable,
    /// The patch table compiled into dense slot-indexed vectors; kept in
    /// lock step with `patches` by every mutation path (the hot-path
    /// `resolve` reads only this).
    pub(crate) dispatch: DispatchTable,
    pub(crate) site_owner: Arc<HashMap<CallSiteId, FunctionId>>,
    pub(crate) edge_heat: HashMap<EdgeId, u64>,
    pub(crate) tail_fns: HashSet<FunctionId>,
    pub(crate) roots: Vec<FunctionId>,
    // Re-encoding trigger state.
    pub(crate) new_edges: usize,
    pub(crate) events_since_reencode: u64,
    pub(crate) cur_min_events: u64,
    pub(crate) window_start_events: u64,
    pub(crate) window_start_ccops: u64,
    pub(crate) next_hot_check: u64,
    pub(crate) last_hot_choice: HashMap<FunctionId, EdgeId>,
    pub(crate) events: u64,
    pub(crate) reencode_overflowed: bool,
    /// Injected re-encode aborts that already fired, one-shot per target
    /// generation so the rolled-back attempt can succeed on retry.
    pub(crate) fired_aborts: HashSet<u32>,
    // Recent samples (ring) for heat derivation, plus the optional full log.
    pub(crate) ring: Vec<EncodedContext>,
    pub(crate) ring_pos: usize,
    pub(crate) sample_log: Vec<EncodedContext>,
    /// Continuous-profiler ring: deterministically sampled contexts with
    /// the call-event weight each one stands for (overwrite-oldest).
    pub(crate) profiler_ring: Vec<(EncodedContext, u64)>,
    pub(crate) profiler_ring_pos: usize,
    /// The flight-recorder dump captured at the first degradation trigger
    /// (degraded entry, re-encode abort, or a forced dump); first wins.
    pub(crate) postmortem: Option<String>,
    pub(crate) stats: DacceStats,
    /// Monotone publication counter; bumped whenever a snapshot observable
    /// by fast paths (patches, dictionaries, `maxID`) changed.
    pub(crate) epoch: u64,
    /// Observability handle (journal + metrics); cloned by runtimes that
    /// need to observe from other threads.
    pub(crate) obs: Observability,
    /// Journal writer for events emitted under the shared lock (traps,
    /// re-encodes, warm starts) — single-producer because the lock
    /// serialises all such emissions.
    pub(crate) obs_writer: ObsWriter,
    /// The shared encoding lineage this instance is attached to, if any.
    pub(crate) lineage: Option<EncodingLineage>,
    /// The lineage generation this instance last adopted or published.
    pub(crate) lineage_gen: u64,
    /// True once this instance grew an edge its lineage does not have —
    /// from then on it owns a private copy-on-write encoding and neither
    /// publishes into nor adopts from the lineage.
    pub(crate) diverged: bool,
    /// Fingerprint and report of the warm start already applied, so a
    /// repeated identical seeding is a cached no-op (tenant-safe
    /// idempotence) instead of double-counting edges.
    pub(crate) warm_fingerprint: Option<(u64, WarmStartReport)>,
    /// Installed superop candidate windows (mined by the workload layer,
    /// ranked best-first); recompiled into `superops` whenever the
    /// dispatch state changes.
    pub(crate) superop_candidates: Vec<Vec<WindowOp>>,
    /// The superop table compiled against the current dispatch state,
    /// shared into every published snapshot.
    pub(crate) superops: Arc<SuperOpTable>,
    /// True when the dispatch state moved since `superops` was compiled;
    /// the next snapshot recompiles (and thereby invalidates the old
    /// table, exactly like the inline cache's epoch keying).
    pub(crate) superops_dirty: bool,
}

impl SharedState {
    pub(crate) fn new(config: DacceConfig, cost: CostModel) -> Self {
        let cur_min_events = config.min_events_between_reencodes;
        let obs = Observability::from_settings(
            config.journal_ring_capacity,
            config.journal_overflow_watermark,
        );
        let obs_writer = obs.writer(u32::MAX);
        let mut dispatch = DispatchTable::new();
        dispatch.set_slot_cap(config.fault.dispatch_slot_cap);
        SharedState {
            config,
            cost,
            graph: Arc::new(CallGraph::new()),
            dicts: DictStore::new(),
            ts: TimeStamp::ZERO,
            max_id: 0,
            patches: PatchTable::new(),
            dispatch,
            site_owner: Arc::new(HashMap::new()),
            edge_heat: HashMap::new(),
            tail_fns: HashSet::new(),
            roots: Vec::new(),
            new_edges: 0,
            events_since_reencode: 0,
            cur_min_events,
            window_start_events: 0,
            window_start_ccops: 0,
            next_hot_check: 0,
            last_hot_choice: HashMap::new(),
            events: 0,
            reencode_overflowed: false,
            fired_aborts: HashSet::new(),
            ring: Vec::new(),
            ring_pos: 0,
            sample_log: Vec::new(),
            profiler_ring: Vec::new(),
            profiler_ring_pos: 0,
            postmortem: None,
            stats: DacceStats::default(),
            epoch: 0,
            obs,
            obs_writer,
            lineage: None,
            lineage_gen: 0,
            diverged: false,
            warm_fingerprint: None,
            superop_candidates: Vec::new(),
            superops: Arc::new(SuperOpTable::default()),
            superops_dirty: false,
        }
    }

    /// Installs mined superop candidate windows (ranked best-first,
    /// replacing any previous set) and marks the table for recompilation
    /// at the next snapshot.
    pub(crate) fn install_superop_candidates(&mut self, windows: &[Vec<WindowOp>]) {
        self.superop_candidates = windows.to_vec();
        self.superops_dirty = true;
    }

    /// §3: the initial graph contains only `main`; freeze dictionary 0.
    pub(crate) fn attach_main(&mut self, main: FunctionId) {
        Arc::make_mut(&mut self.graph).ensure_node(main);
        self.roots.push(main);
        let enc = encode_graph(&self.graph, &self.roots, &EncodeOptions::default());
        let dict = DecodeDict::from_encoding(&self.graph, &enc, TimeStamp::ZERO)
            .expect("trivial graph cannot overflow");
        self.dicts.push(dict);
        self.max_id = enc.max_id;
        self.next_hot_check = self.config.hot_check_every;
        self.stats.progress.push(ProgressPoint {
            calls: 0,
            nodes: self.graph.node_count(),
            edges: self.graph.edge_count(),
            max_id: self.max_id,
        });
        self.obs.record_generation(
            self.ts.raw(),
            self.graph.node_count() as u32,
            self.graph.edge_count() as u32,
            self.max_id,
            0,
        );
    }

    /// Adds a (thread) root function to the graph and root set.
    pub(crate) fn register_root(&mut self, root: FunctionId) {
        if !self.graph.contains_node(root) {
            Arc::make_mut(&mut self.graph).ensure_node(root);
        }
        if !self.roots.contains(&root) {
            self.roots.push(root);
        }
    }

    /// One call/return event's trigger bookkeeping.
    pub(crate) fn note_event(&mut self) {
        self.events += 1;
        self.events_since_reencode += 1;
    }

    /// Batched variant for concurrent runtimes flushing local counters.
    pub(crate) fn note_events(&mut self, n: u64) {
        self.events += n;
        self.events_since_reencode += n;
    }

    /// Looks up everything the generated code at `(site, callee)` does in
    /// one compiled-table probe (a bounds-checked array index for
    /// monomorphic sites). `None` means the site (or this target) traps.
    pub(crate) fn lookup_action(
        &self,
        site: CallSiteId,
        callee: FunctionId,
    ) -> Option<ResolvedSite> {
        self.dispatch.resolve(site, callee, &self.cost)
    }

    /// The runtime handler (§3): invoked on the first execution of a call
    /// edge. Adds the edge to the call graph, patches the site, performs
    /// tail-call discovery, and returns the action the freshly generated
    /// code executes for this very invocation — plus, when this trap
    /// revealed a *new* tail-calling function, that function, so the caller
    /// can retrofit active frames (shared state has no thread access).
    pub(crate) fn handle_trap(
        &mut self,
        tid: u32,
        site: CallSiteId,
        caller: FunctionId,
        callee: FunctionId,
        dispatch: CallDispatch,
        tail: bool,
    ) -> (EdgeAction, Option<FunctionId>) {
        let timer = observe::start_timer();
        self.stats.traps += 1;
        let prev_owner = Arc::make_mut(&mut self.site_owner).insert(site, caller);
        debug_assert!(
            prev_owner.is_none() || prev_owner == Some(caller),
            "call site {site} observed in two functions ({prev_owner:?} and {caller}); \
             each static call location needs its own CallSiteId"
        );
        let graph_dispatch = match dispatch {
            CallDispatch::Direct => Dispatch::Direct,
            CallDispatch::Indirect => Dispatch::Indirect,
            CallDispatch::Plt => Dispatch::Plt,
        };
        let (eid, is_new) =
            Arc::make_mut(&mut self.graph).add_edge(caller, callee, site, graph_dispatch);
        if is_new {
            self.new_edges += 1;
            self.mark_diverged();
        }
        *self.edge_heat.entry(eid).or_insert(0) += 1;

        // In degraded mode newly discovered edges can never be encoded —
        // re-encoding is off for good — so the callee's subgraph runs
        // trap-everything (first call traps, later calls take the plain
        // sub-path push, all decodable through `[maxID+1, 2*maxID+1]`).
        if self.stats.degraded.active {
            self.stats.degraded.note_trap_node(callee.raw());
            self.stats.degraded.degraded_traps += 1;
            self.obs.on_degraded_trap();
        }

        // §5.2: the first tail call inside `caller` reveals that `caller`'s
        // callers must save/restore the encoding context absolutely.
        let newly_tail = if tail && self.config.handle_tail_calls && self.tail_fns.insert(caller) {
            self.wrap_caller_sites(caller);
            Some(caller)
        } else {
            None
        };

        // Patch the site. New edges stay unencoded until the next
        // re-encoding (§3: "that edge is not encoded until the next
        // re-encoding process").
        let action = EdgeAction::Unencoded;
        let inline_max = self.config.indirect_inline_max;
        let tc_wrap = self.config.handle_tail_calls && self.tail_fns.contains(&callee);
        let mut converted = false;
        let state = self.patches.site_mut(site);
        if tc_wrap {
            state.tc_wrap = true;
        }
        match dispatch {
            CallDispatch::Direct | CallDispatch::Plt => {
                state.patch = SitePatch::Direct(callee, action);
            }
            CallDispatch::Indirect => {
                let p = match &mut state.patch {
                    SitePatch::Indirect(p) => p,
                    _ => {
                        state.patch = SitePatch::Indirect(IndirectPatch::default());
                        match &mut state.patch {
                            SitePatch::Indirect(p) => p,
                            _ => unreachable!(),
                        }
                    }
                };
                let before = p.hashed.is_some();
                p.add_target(callee, action, inline_max);
                if !before && p.hashed.is_some() {
                    converted = true;
                }
            }
        }
        if converted {
            self.stats.hash_conversions += 1;
        }
        self.dispatch
            .sync_site(site, self.patches.get(site).expect("site patched above"));
        self.superops_dirty = true;
        self.sync_slot_failures();
        let (occupied, span) = self.dispatch.occupancy();
        self.obs.record_dispatch(occupied, span);

        self.obs.on_trap(timer.elapsed_ns());
        self.obs.on_site_patched();
        if is_new {
            self.obs.on_edge_discovered();
        }
        if self.obs_writer.enabled() {
            let (s, cr, ce) = (site.raw(), caller.raw(), callee.raw());
            self.obs_writer.trap(tid, s, cr, ce);
            if is_new {
                self.obs_writer.edge_discovered(tid, s, cr, ce);
            }
            let targets = match &self.patches.get(site).expect("site patched above").patch {
                SitePatch::Indirect(p) => p.target_count() as u32,
                _ => 1,
            };
            self.obs_writer.site_patched(tid, s, targets);
        }
        (action, newly_tail)
    }

    /// Marks every known site targeting `tail_fn` for TcStack wrapping (the
    /// per-thread frame retrofit is the caller's job).
    fn wrap_caller_sites(&mut self, tail_fn: FunctionId) {
        let mut sites_to_wrap: Vec<CallSiteId> = Vec::new();
        for &eid in self.graph.incoming(tail_fn) {
            sites_to_wrap.push(self.graph.edge(eid).site);
        }
        for site in sites_to_wrap {
            if let Some(state) = self.patches.existing_mut(site) {
                state.tc_wrap = true;
            }
            if let Some(state) = self.patches.get(site) {
                self.dispatch.sync_site(site, state);
                self.superops_dirty = true;
            }
        }
    }

    /// Records one sample: counters, heat ring, optional full log.
    pub(crate) fn record_sample(&mut self, snap: &EncodedContext) {
        self.stats.samples += 1;
        self.stats.cc_depths.push(snap.cc_depth() as u32);
        self.obs.on_sample(snap.cc_depth() as u32, snap.id);
        self.push_ring(snap);
    }

    /// Feeds a sample into the heat ring (and the optional log) without
    /// counting it — concurrent trackers count samples in per-thread shards
    /// and flush their sample backlog here from the slow path.
    pub(crate) fn push_ring(&mut self, snap: &EncodedContext) {
        if self.config.sample_ring > 0 {
            if self.ring.len() < self.config.sample_ring {
                self.ring.push(snap.clone());
            } else {
                self.ring[self.ring_pos % self.config.sample_ring] = snap.clone();
            }
            self.ring_pos += 1;
        }
        if self.config.keep_sample_log {
            self.sample_log.push(snap.clone());
        }
    }

    /// Records one continuous-profiler sample: counters, metrics and the
    /// profiler ring. Journal emission is the caller's job (the engine
    /// emits under the shared writer; trackers emit on their own ring).
    pub(crate) fn record_profiler_sample(&mut self, snap: &EncodedContext, weight: u64) {
        self.stats.profiler_samples += 1;
        self.stats.profiler_sample_weight += weight;
        self.obs
            .on_profiler_sample(snap.cc_depth() as u32, snap.id, weight);
        self.push_profiler_ring(snap, weight);
    }

    /// Feeds a weighted sample into the profiler ring without counting it
    /// (trackers count in per-thread shards and flush backlogs here).
    pub(crate) fn push_profiler_ring(&mut self, snap: &EncodedContext, weight: u64) {
        if self.profiler_ring.len() < PROFILER_RING_CAP {
            self.profiler_ring.push((snap.clone(), weight));
        } else {
            self.profiler_ring[self.profiler_ring_pos % PROFILER_RING_CAP] = (snap.clone(), weight);
        }
        self.profiler_ring_pos += 1;
    }

    /// Decodes the profiler ring into an aggregated hot-context profile.
    /// Each sample contributes its captured weight; samples from older
    /// generations decode against their own versioned dictionary.
    pub(crate) fn profiler_profile(&mut self) -> HotContextProfile {
        let mut prof = HotContextProfile::new();
        let ring = std::mem::take(&mut self.profiler_ring);
        for (samp, weight) in &ring {
            match decode_full(samp, &self.dicts, &self.site_owner) {
                Ok(path) => prof.record_weighted(&path, *weight),
                Err(_) => self.stats.decode_errors += 1,
            }
        }
        self.profiler_ring = ring;
        prof
    }

    /// Captures a flight-recorder postmortem (first trigger wins): peeks
    /// the journal without consuming it, stitches the recent re-encode
    /// spans and renders the versioned dump document. A no-op when a dump
    /// was already captured or observability is compiled out.
    pub(crate) fn capture_postmortem(&mut self, reason: &str) {
        if self.postmortem.is_some() {
            return;
        }
        self.postmortem =
            self.obs
                .render_postmortem(reason, self.ts.raw(), self.max_id, &self.stats.degraded);
    }

    /// Decodes an encoded context against the recorded dictionaries.
    pub(crate) fn decode(&self, ctx: &EncodedContext) -> Result<ContextPath, DecodeError> {
        decode_full(ctx, &self.dicts, &self.site_owner)
    }

    /// Mirrors the dispatch table's slot-refusal counter into
    /// [`crate::stats::DegradedState`] and the obs metrics (delta-based,
    /// so every mutation path can call it idempotently).
    pub(crate) fn sync_slot_failures(&mut self) {
        let total = self.dispatch.slot_failures();
        let prev = self.stats.degraded.slot_failures;
        if total > prev {
            self.obs.on_slot_failures(total - prev);
            self.stats.degraded.slot_failures = total;
        }
    }

    /// Switches the instance into permanent degraded mode: the current
    /// encoding is the last one, and every edge discovered from here on
    /// runs trap-everything (sound via the sub-path mechanism).
    fn enter_degraded(&mut self) {
        self.reencode_overflowed = true;
        self.stats.degraded.active = true;
    }

    /// Cheap pre-gate for the §4 triggers: worth evaluating them at all?
    pub(crate) fn reencode_check_due(&self) -> bool {
        self.config.reencode_enabled
            && !self.reencode_overflowed
            && self.events_since_reencode >= self.cur_min_events
    }

    /// Evaluates the three §4 triggers. `live_thread_ccops` supplies the
    /// ccStack-operation total of currently live threads (evaluated lazily —
    /// it is only needed when the rate window elapsed).
    pub(crate) fn should_reencode(&mut self, live_thread_ccops: &dyn Fn() -> u64) -> bool {
        if !self.reencode_check_due() {
            return false;
        }
        let mut fire = false;

        // Injected reencode-storm fault: force the triggers on a fixed
        // event cadence (the backoff floor in `reencode_check_due` still
        // applies, so aborted generations keep their retry discipline).
        if let Some(every) = self.config.fault.force_reencode_every {
            if self.events_since_reencode >= every {
                fire = true;
            }
        }

        // Trigger 1: the number of identified call edges reached a threshold.
        if self.new_edges >= self.config.edge_threshold {
            fire = true;
        }

        // Trigger 3: the ccStack is frequently accessed.
        if self.events - self.window_start_events >= self.config.ccstack_rate_window {
            let ccops_now = self.stats.ccstack_ops + live_thread_ccops();
            let devents = self.events - self.window_start_events;
            let dops = ccops_now.saturating_sub(self.window_start_ccops);
            let rate = dops as f64 / devents as f64;
            self.window_start_events = self.events;
            self.window_start_ccops = ccops_now;
            if rate > self.config.ccstack_rate_threshold && self.has_unencoded_hot_state() {
                fire = true;
            }
        }

        // Trigger 2: the frequently invoked call paths have changed.
        if self.events >= self.next_hot_check {
            self.next_hot_check = self.events + self.config.hot_check_every;
            if self.hot_choices_changed() >= self.config.hot_change_nodes {
                fire = true;
            }
        }

        fire
    }

    /// True when re-encoding could plausibly reduce ccStack traffic: there
    /// are unencoded non-back edges, or hot back edges still lacking
    /// compression.
    fn has_unencoded_hot_state(&self) -> bool {
        if self.new_edges > 0 {
            return true;
        }
        if self.config.compression == CompressionMode::Adaptive {
            for (eid, e) in self.graph.edges() {
                if !e.back {
                    continue;
                }
                let heat = self.edge_heat.get(&eid).copied().unwrap_or(0);
                if heat < self.config.compression_min_heat {
                    continue;
                }
                if let Some(state) = self.patches.get(e.site) {
                    let action = match &state.patch {
                        SitePatch::Direct(t, a) if *t == e.callee => Some(*a),
                        SitePatch::Indirect(p) => p.lookup(e.callee).map(|(a, _, _)| a),
                        _ => None,
                    };
                    if action == Some(EdgeAction::Unencoded) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// The hottest non-back incoming edge of `node`, if any clears the
    /// noise floor.
    fn hottest_incoming(&self, node: FunctionId) -> Option<EdgeId> {
        let mut best: Option<(u64, EdgeId)> = None;
        for &eid in self.graph.incoming(node) {
            if self.graph.edge(eid).back {
                continue;
            }
            let heat = self.edge_heat.get(&eid).copied().unwrap_or(0);
            if heat < HOT_FLOOR {
                continue;
            }
            if best.is_none_or(|(h, e)| heat > h || (heat == h && eid < e)) {
                best = Some((heat, eid));
            }
        }
        best.map(|(_, eid)| eid)
    }

    /// Counts nodes whose hottest incoming edge differs from the one chosen
    /// at the last encoding.
    fn hot_choices_changed(&self) -> usize {
        let mut changed = 0;
        for &node in self.graph.nodes() {
            if let (Some(best_eid), Some(&prev)) =
                (self.hottest_incoming(node), self.last_hot_choice.get(&node))
            {
                if best_eid != prev {
                    changed += 1;
                }
            }
        }
        changed
    }

    /// Derives edge heat from the recent-sample ring (§4, first bullet).
    fn heat_from_ring(&mut self) {
        let ring = std::mem::take(&mut self.ring);
        for samp in &ring {
            if let Ok(path) = decode_full(samp, &self.dicts, &self.site_owner) {
                for w in path.0.windows(2) {
                    if let Some(site) = w[1].site {
                        if let Some(eid) = self.graph.edge_id(site, w[1].func) {
                            *self.edge_heat.entry(eid).or_insert(0) += 4;
                        }
                    }
                }
            } else {
                self.stats.decode_errors += 1;
            }
        }
        self.ring = ring;
    }

    /// Folds the continuous profiler's weighted samples into edge heat —
    /// the adaptive feedback loop behind
    /// [`DacceConfig::profiler_feedback`]. Each sampled context adds its
    /// weight to every path-window edge it decodes through, so the
    /// hottest-incoming-edge selection of the next encoding sees sampled
    /// hotness, not just trap counts and the heat ring.
    fn heat_from_profiler(&mut self) {
        let ring = std::mem::take(&mut self.profiler_ring);
        for (samp, weight) in &ring {
            if let Ok(path) = decode_full(samp, &self.dicts, &self.site_owner) {
                for w in path.0.windows(2) {
                    if let Some(site) = w[1].site {
                        if let Some(eid) = self.graph.edge_id(site, w[1].func) {
                            *self.edge_heat.entry(eid).or_insert(0) += *weight;
                        }
                    }
                }
            } else {
                self.stats.decode_errors += 1;
            }
        }
        self.profiler_ring = ring;
    }

    /// The shared core of the re-encoding procedure (§4): derives heat,
    /// re-classifies back edges, re-encodes the grown graph, freezes a new
    /// dictionary under `gTimeStamp + 1` and regenerates every site patch.
    ///
    /// Thread-state regeneration is the caller's job: decode live contexts
    /// under the *old* dictionary before calling this, replay them under
    /// the new patches afterwards (see [`crate::fastpath::replay`]), then
    /// call [`SharedState::reset_triggers`].
    pub(crate) fn reencode_core(&mut self) -> (ReencodeOutcome, u64) {
        let cost = self.graph.edge_count() as u64 * self.cost.reencode_per_edge;
        self.stats.reencodes += 1;
        self.stats.reencode_cost += cost;
        self.obs_writer.reencode_begin(self.ts.raw());

        self.heat_from_ring();
        if self.config.profiler_feedback {
            self.heat_from_profiler();
        }

        // Re-classify and re-encode the grown graph.
        classify_back_edges(Arc::make_mut(&mut self.graph), &self.roots);
        let opts = if self.config.heat_ordering {
            EncodeOptions::with_heat(self.edge_heat.clone())
        } else {
            EncodeOptions::default()
        };
        let enc = encode_graph(&self.graph, &self.roots, &opts);
        // Injected id-space exhaustion: treat an encoding past the cap
        // exactly like a genuine 64-bit overflow.
        let exhausted = enc.overflow
            || self
                .config
                .fault
                .max_id_cap
                .is_some_and(|cap| enc.max_id > cap);
        // Injected abort of this target generation: one-shot, so the
        // rolled-back attempt can succeed when retried.
        let target_gen = self.ts.raw() + 1;
        let injected_abort =
            self.config.fault.aborts_generation(target_gen) && self.fired_aborts.insert(target_gen);
        if exhausted || injected_abort {
            self.stats.overflow_aborts += 1;
            if exhausted {
                // A 64-bit-overflowing dynamic graph cannot be re-encoded;
                // keep the old encoding, stop trying for good (Table 1
                // reports this for PCCE; DACCE graphs stay far below the
                // budget) and degrade the rest of the run to
                // trap-everything on newly discovered edges.
                self.enter_degraded();
            } else {
                // Generation rollback is implicit — no dictionary was
                // pushed and `gTimeStamp` never advanced. Re-arm the
                // trigger with one extra (capped) backoff step so the
                // retry is exponential, not immediate.
                self.stats.degraded.reencode_retries += 1;
                self.obs.on_reencode_retry();
                let next = (self.cur_min_events as f64 * self.config.reencode_backoff) as u64;
                self.cur_min_events = next.min(self.config.reencode_interval_cap);
            }
            self.obs.on_reencode(false, cost);
            self.obs_writer
                .reencode_end(self.ts.raw(), false, cost, 0, 0, 0);
            // Flight recorder: the aborted span is in the journal now, so
            // the postmortem's span timeline includes this very abort.
            self.capture_postmortem(if exhausted {
                "degraded-entry"
            } else {
                "reencode-abort"
            });
            return (ReencodeOutcome::Overflowed, cost);
        }

        let new_ts = self.ts.next();
        let dict =
            DecodeDict::from_encoding(&self.graph, &enc, new_ts).expect("overflow checked above");
        self.dicts.push(dict);
        self.ts = new_ts;
        self.max_id = enc.max_id;
        self.stats.max_max_id = self.stats.max_max_id.max(self.max_id);

        self.rebuild_sites(&enc);

        // Remember the per-node hot choice this encoding was built with.
        self.last_hot_choice.clear();
        for &node in self.graph.nodes() {
            if let Some(eid) = self.hottest_incoming(node) {
                self.last_hot_choice.insert(node, eid);
            }
        }

        self.stats.progress.push(ProgressPoint {
            calls: self.stats.calls,
            nodes: self.graph.node_count(),
            edges: self.graph.edge_count(),
            max_id: self.max_id,
        });

        // Decay heat *after* it drove this encoding, so the next
        // re-encoding weighs recent behaviour over old phases.
        for h in self.edge_heat.values_mut() {
            *h /= 2;
        }

        self.obs.on_reencode(true, cost);
        self.obs.record_generation(
            self.ts.raw(),
            self.graph.node_count() as u32,
            self.graph.edge_count() as u32,
            self.max_id,
            cost,
        );
        self.obs_writer.reencode_end(
            self.ts.raw(),
            true,
            cost,
            self.graph.node_count() as u32,
            self.graph.edge_count() as u32,
            self.max_id,
        );

        (ReencodeOutcome::Applied, cost)
    }

    /// Re-arms the §4 triggers after a re-encoding (or an overflow abort).
    /// `live_thread_ccops` is the ccStack-operation total of live threads
    /// *after* any replay, so the next rate window starts clean.
    pub(crate) fn reset_triggers(&mut self, live_thread_ccops: u64) {
        self.new_edges = 0;
        self.events_since_reencode = 0;
        self.window_start_events = self.events;
        self.window_start_ccops = self.stats.ccstack_ops + live_thread_ccops;
        // Back off: re-encoding is cheap to trigger early (small graph,
        // everything to gain) and increasingly rare once stable.
        let next = (self.cur_min_events as f64 * self.config.reencode_backoff) as u64;
        self.cur_min_events = next.min(self.config.reencode_interval_cap);
    }

    /// Marks this instance as diverged from its lineage (first new edge
    /// the lineage does not have). Idempotent; a no-op without a lineage.
    fn mark_diverged(&mut self) {
        if self.diverged {
            return;
        }
        if let Some(lineage) = &self.lineage {
            self.diverged = true;
            self.stats.lineage_divergences += 1;
            lineage.note_divergence();
            self.obs.on_lineage_diverge();
        }
    }

    /// Freezes the complete encodable state for founding or publishing
    /// into a lineage. Cheap: every constituent is `Arc`-backed or small.
    pub(crate) fn export_lineage_state(&self) -> LineageState {
        LineageState {
            graph: Arc::clone(&self.graph),
            dicts: self.dicts.clone(),
            ts: self.ts,
            max_id: self.max_id,
            patches: self.patches.clone(),
            dispatch: self.dispatch.clone(),
            site_owner: Arc::clone(&self.site_owner),
            tail_fns: self.tail_fns.clone(),
            roots: self.roots.clone(),
            warm: self.warm_fingerprint,
            generation: self.lineage_gen,
        }
    }

    /// Replaces this instance's encodable state with a lineage generation.
    /// Per-instance trigger bookkeeping, statistics and observability are
    /// kept; thread states migrate lazily through the published snapshot
    /// (the adopted `ts` differs, so `refresh` decodes under the old
    /// dictionary and replays under the adopted patches).
    pub(crate) fn adopt_lineage_state(&mut self, state: &LineageState) {
        self.graph = Arc::clone(&state.graph);
        self.dicts = state.dicts.clone();
        self.ts = state.ts;
        self.max_id = state.max_id;
        self.patches = state.patches.clone();
        self.dispatch = state.dispatch.clone();
        self.superops_dirty = true;
        // The lineage's table was compiled under the founder's config;
        // this tenant's (possibly fault-injected) slot cap must survive.
        self.dispatch
            .set_slot_cap(self.config.fault.dispatch_slot_cap);
        self.site_owner = Arc::clone(&state.site_owner);
        self.tail_fns.clone_from(&state.tail_fns);
        for &r in &state.roots {
            if !self.roots.contains(&r) {
                self.roots.push(r);
            }
        }
        // Roots this tenant registered beyond the lineage's set must keep
        // their graph nodes (the adopted graph may not contain them).
        let missing: Vec<FunctionId> = self
            .roots
            .iter()
            .copied()
            .filter(|&r| !self.graph.contains_node(r))
            .collect();
        if !missing.is_empty() {
            let g = Arc::make_mut(&mut self.graph);
            for r in missing {
                g.ensure_node(r);
            }
        }
        self.warm_fingerprint = state.warm;
        self.lineage_gen = state.generation;
        self.stats.max_max_id = self.stats.max_max_id.max(self.max_id);
        self.last_hot_choice.clear();
        self.next_hot_check = self.events + self.config.hot_check_every;
        self.stats.progress.push(ProgressPoint {
            calls: self.stats.calls,
            nodes: self.graph.node_count(),
            edges: self.graph.edge_count(),
            max_id: self.max_id,
        });
        self.obs.record_generation(
            self.ts.raw(),
            self.graph.node_count() as u32,
            self.graph.edge_count() as u32,
            self.max_id,
            0,
        );
    }

    /// Adopts the latest lineage generation if one was published past the
    /// generation this instance holds. Returns `true` if state changed
    /// (the caller must republish its snapshot so threads migrate).
    pub(crate) fn adopt_pending_lineage(&mut self) -> bool {
        let Some(lineage) = self.lineage.clone() else {
            return false;
        };
        if self.diverged || lineage.generation() == self.lineage_gen {
            return false;
        }
        let state = lineage.current();
        if state.generation <= self.lineage_gen {
            return false;
        }
        self.adopt_lineage_state(&state);
        self.stats.lineage_adoptions += 1;
        self.obs.on_lineage_adopt();
        true
    }

    /// Routes a due re-encode through the shared lineage: if another
    /// tenant already published a newer generation, adopt it (one
    /// background re-encode serves every attached tenant); otherwise run
    /// the local core and — when applied and still on the shared lineage —
    /// publish the result as the next generation. Detached or diverged
    /// instances fall through to the plain local core.
    pub(crate) fn reencode_via_lineage(&mut self) -> LineageReencode {
        let lineage = match (&self.lineage, self.diverged) {
            (Some(l), false) => l.clone(),
            _ => {
                let (outcome, cost) = self.reencode_core();
                return LineageReencode::Local(outcome, cost);
            }
        };
        let mut guard = lineage.lock_state();
        if guard.generation > self.lineage_gen {
            let state = guard.clone();
            drop(guard);
            self.adopt_lineage_state(&state);
            self.stats.lineage_adoptions += 1;
            self.obs.on_lineage_adopt();
            return LineageReencode::Adopted;
        }
        let (outcome, cost) = self.reencode_core();
        if matches!(outcome, ReencodeOutcome::Applied) && !self.diverged {
            self.lineage_gen = lineage.publish_into(&mut guard, self.export_lineage_state());
            self.stats.lineage_publishes += 1;
            self.obs.on_lineage_publish();
        }
        LineageReencode::Local(outcome, cost)
    }

    /// The action the new encoding assigns to one graph edge.
    fn action_for_edge(&self, eid: EdgeId, back: bool, enc: &Encoding) -> EdgeAction {
        if back {
            let compress = match self.config.compression {
                CompressionMode::Always => true,
                CompressionMode::Never => false,
                CompressionMode::Adaptive => {
                    self.edge_heat.get(&eid).copied().unwrap_or(0)
                        >= self.config.compression_min_heat
                }
            };
            if compress {
                EdgeAction::UnencodedCompressed
            } else {
                EdgeAction::Unencoded
            }
        } else {
            EdgeAction::Encoded {
                delta: enc.encoding_u64(eid).expect("non-overflowing encoding"),
            }
        }
    }

    /// Regenerates all site patch states from the new encoding.
    pub(crate) fn rebuild_sites(&mut self, enc: &Encoding) {
        // Group edges per site.
        let mut by_site: HashMap<CallSiteId, Vec<EdgeId>> = HashMap::new();
        for (eid, e) in self.graph.edges() {
            by_site.entry(e.site).or_default().push(eid);
        }

        let mut rebuilt: HashMap<CallSiteId, crate::patch::SiteState> =
            HashMap::with_capacity(by_site.len());
        for (site, eids) in by_site {
            let indirect = eids
                .iter()
                .any(|&eid| self.graph.edge(eid).dispatch == Dispatch::Indirect);
            let tc_wrap = self.config.handle_tail_calls
                && eids
                    .iter()
                    .any(|&eid| self.tail_fns.contains(&self.graph.edge(eid).callee));

            let patch = if indirect {
                // Order known targets hottest-first for the compare chain.
                let mut ordered: Vec<(u64, EdgeId)> = eids
                    .iter()
                    .map(|&eid| (self.edge_heat.get(&eid).copied().unwrap_or(0), eid))
                    .collect();
                ordered.sort_by_key(|&(h, eid)| (std::cmp::Reverse(h), eid.index()));
                let mut p = IndirectPatch::default();
                for &(_, eid) in &ordered {
                    let e = self.graph.edge(eid);
                    let action = self.action_for_edge(eid, e.back, enc);
                    p.add_target(e.callee, action, self.config.indirect_inline_max);
                }
                if p.hashed.is_some() {
                    // Conversion accounting only when the site was inline
                    // before (or new).
                    let was_hashed = matches!(
                        self.patches.get(site).map(|s| &s.patch),
                        Some(SitePatch::Indirect(old)) if old.hashed.is_some()
                    );
                    if !was_hashed {
                        self.stats.hash_conversions += 1;
                    }
                }
                SitePatch::Indirect(p)
            } else {
                let eid = eids[0];
                let e = self.graph.edge(eid);
                let action = self.action_for_edge(eid, e.back, enc);
                SitePatch::Direct(e.callee, action)
            };

            rebuilt.insert(site, crate::patch::SiteState { tc_wrap, patch });
        }
        self.patches.replace_all(rebuilt);
        self.dispatch.rebuild(&self.patches);
        self.superops_dirty = true;
        self.sync_slot_failures();
        let (occupied, span) = self.dispatch.occupancy();
        self.obs.record_dispatch(occupied, span);
    }

    /// Freezes the current encoding into an immutable snapshot for
    /// publication to reader threads. Cheap: the patch table and the
    /// dictionary store are both `Arc`-backed. When the dispatch state
    /// moved since the superop table was compiled, the table is
    /// recompiled here — compile-on-republish — so a published snapshot
    /// can never carry superops folded under a stale encoding.
    pub(crate) fn snapshot(&mut self) -> EncodingSnapshot {
        self.stats.superop_republishes += 1;
        self.obs.on_superop_republish();
        if self.superops_dirty {
            self.superops_dirty = false;
            let dropped = self.superops.len();
            if dropped > 0 {
                self.stats.superop_invalidations += dropped as u64;
                self.obs.on_superop_invalidations(dropped as u64);
            }
            let table = if self.config.superops_enabled && !self.superop_candidates.is_empty() {
                SuperOpTable::compile(
                    &|site, callee| self.dispatch.resolve(site, callee, &self.cost),
                    self.max_id,
                    &self.superop_candidates,
                    self.config.superop_max_window,
                    self.config.superop_max_table,
                )
            } else {
                SuperOpTable::default()
            };
            self.stats.superop_compiled = table.len() as u64;
            self.obs
                .record_superops(table.len() as u64, self.superop_candidates.len() as u64);
            self.superops = Arc::new(table);
        }
        EncodingSnapshot {
            epoch: self.epoch,
            ts: self.ts,
            max_id: self.max_id,
            dispatch: self.dispatch.clone(),
            site_owner: Arc::clone(&self.site_owner),
            dicts: self.dicts.clone(),
            cost: self.cost.clone(),
            handle_tail_calls: self.config.handle_tail_calls,
            superops: Arc::clone(&self.superops),
        }
    }
}

/// An immutable, shareable view of the encoding state at one publication
/// epoch. Everything a thread needs to execute call/return instrumentation
/// over already-encoded edges — and to decode or migrate its own context —
/// without touching any shared lock.
#[derive(Clone, Debug)]
pub(crate) struct EncodingSnapshot {
    /// Publication epoch this snapshot was built at.
    pub(crate) epoch: u64,
    /// `gTimeStamp` of the encoding the snapshot captures.
    pub(crate) ts: TimeStamp,
    /// `maxID` of that encoding.
    pub(crate) max_id: u64,
    /// The compiled, slot-indexed dispatch table the fast path resolves
    /// against (the logical patch table stays behind the shared lock; a
    /// snapshot carries only the flattened form).
    pub(crate) dispatch: DispatchTable,
    /// Call-site owner table (for decoding).
    pub(crate) site_owner: Arc<HashMap<CallSiteId, FunctionId>>,
    /// Every dictionary recorded up to `ts` — samples stamped with older
    /// timestamps decode against their own dictionary.
    pub(crate) dicts: DictStore,
    pub(crate) cost: CostModel,
    pub(crate) handle_tail_calls: bool,
    /// Superops compiled against this snapshot's dispatch state; a
    /// republish hands out a table recompiled for the new state, so
    /// stale superops die with the old snapshot (the epoch-invalidation
    /// rule the inline cache also follows).
    pub(crate) superops: Arc<SuperOpTable>,
}

impl EncodingSnapshot {
    /// Resolves `(site, callee)` against the snapshot's compiled dispatch
    /// table; `None` means the site traps into the slow path.
    pub(crate) fn resolve(&self, site: CallSiteId, callee: FunctionId) -> Option<ResolvedSite> {
        self.dispatch.resolve(site, callee, &self.cost)
    }

    /// Decodes an encoded context against the snapshot's dictionaries.
    pub(crate) fn decode(&self, ctx: &EncodedContext) -> Result<ContextPath, DecodeError> {
        decode_full(ctx, &self.dicts, &self.site_owner)
    }

    /// The dictionary for this snapshot's own timestamp.
    pub(crate) fn dict(&self) -> &DecodeDict {
        self.dicts
            .get(self.ts)
            .expect("snapshot timestamp has a recorded dictionary")
    }
}

/// Everything one patch-table probe tells the fast path about a call
/// through `(site, callee)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ResolvedSite {
    /// The action the generated code executes.
    pub(crate) action: EdgeAction,
    /// Cost of resolving the target (inline comparisons / hash probe for
    /// indirect sites; 0 for direct).
    pub(crate) dispatch_cost: u64,
    /// Whether the site wraps its frames with a TcStack save/restore
    /// (§5.2).
    pub(crate) tc_wrap: bool,
}

/// A compact fingerprint of an encoded context's ccStack shape, journaled
/// with each profiler sample so offline consumers can tell distinct deep
/// contexts apart even when only the fixed-width wire record survives.
pub(crate) fn context_fingerprint(snap: &EncodedContext) -> u32 {
    observe::fingerprint64(std::iter::once(snap.id).chain(snap.cc.iter().flat_map(|e| {
        [
            e.id,
            (u64::from(e.site.raw()) << 32) | u64::from(e.target.raw()),
        ]
    })))
}

/// Patch-table lookup shared by [`SharedState`] and [`EncodingSnapshot`]:
/// resolves `(site, callee)` in a single probe.
pub(crate) fn lookup_in(
    patches: &PatchTable,
    cost: &CostModel,
    site: CallSiteId,
    callee: FunctionId,
) -> Option<ResolvedSite> {
    let state = patches.get(site)?;
    match &state.patch {
        SitePatch::Trap => None,
        SitePatch::Direct(target, action) => {
            if *target == callee {
                Some(ResolvedSite {
                    action: *action,
                    dispatch_cost: 0,
                    tc_wrap: state.tc_wrap,
                })
            } else {
                None
            }
        }
        SitePatch::Indirect(p) => match p.lookup(callee) {
            Some((action, cmps, hashed)) => {
                let dispatch_cost = if hashed {
                    cost.hash_lookup
                } else {
                    u64::from(cmps) * cost.compare
                };
                Some(ResolvedSite {
                    action,
                    dispatch_cost,
                    tc_wrap: state.tc_wrap,
                })
            }
            None => None,
        },
    }
}
