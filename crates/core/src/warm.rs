//! Warm starting: pre-seeding the dynamic engine from a static call graph.
//!
//! DACCE's graph is normally discovered one trap at a time (§3.1). A sound
//! static over-approximation — built ahead of time by `dacce-analyze` —
//! can be loaded into the engine *before* the first call executes: every
//! seeded `(site, callee)` pair gets an encoded patch immediately, so
//! statically known edges never trap and the early re-encoding churn
//! disappears.
//!
//! Seeding must happen after `main` is attached and before any thread
//! runs. If the static graph is too large to encode within the 64-bit id
//! budget (the PCCE failure mode of Table 1), the engine prunes the
//! highest-`numCC` callees from the seed until the rest encodes; pruned
//! edges simply fall back to normal trap-time discovery.

use std::sync::Arc;

use dacce_callgraph::analysis::classify_back_edges;
use dacce_callgraph::encode::{encode_graph, EncodeOptions};
use dacce_callgraph::{CallSiteId, DecodeDict, Dispatch, FunctionId, TimeStamp};

use crate::shared::SharedState;
use crate::stats::ProgressPoint;

/// One static call edge to pre-seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedEdge {
    /// The calling function.
    pub caller: FunctionId,
    /// The called function.
    pub callee: FunctionId,
    /// The call site inside the caller.
    pub site: CallSiteId,
    /// Dispatch kind of the site.
    pub dispatch: Dispatch,
}

/// A static pre-seed for the dynamic engine: roots (main plus spawn
/// targets), call edges, and statically known tail-calling functions.
///
/// `tail_fns` matters for correctness, not just warmth: the engine only
/// discovers tail-calling functions inside its trap handler, and seeded
/// sites never trap — so the seed must carry the static tail set or
/// tail-call contexts would corrupt (Figure 7a of the paper).
#[derive(Clone, Debug, Default)]
pub struct WarmStartSeed {
    /// Entry functions to register ahead of time.
    pub roots: Vec<FunctionId>,
    /// Static call edges.
    pub edges: Vec<SeedEdge>,
    /// Functions statically known to contain tail calls.
    pub tail_fns: Vec<FunctionId>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

fn fnv_u64(hash: u64, value: u64) -> u64 {
    let mut h = hash;
    for byte in value.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl WarmStartSeed {
    /// A content fingerprint (FNV-1a over the definition stream) used to
    /// recognise a repeated identical seed: warm-starting the same engine
    /// twice with an equal seed is an idempotent no-op, so two tenants
    /// racing to seed one instance cannot double-count edges.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv_u64(h, self.roots.len() as u64);
        for r in &self.roots {
            h = fnv_u64(h, u64::from(r.raw()));
        }
        h = fnv_u64(h, self.edges.len() as u64);
        for e in &self.edges {
            h = fnv_u64(h, u64::from(e.caller.raw()));
            h = fnv_u64(h, u64::from(e.callee.raw()));
            h = fnv_u64(h, u64::from(e.site.raw()));
            h = fnv_u64(h, e.dispatch as u64);
        }
        h = fnv_u64(h, self.tail_fns.len() as u64);
        for t in &self.tail_fns {
            h = fnv_u64(h, u64::from(t.raw()));
        }
        h
    }
}

/// What a warm start actually loaded.
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmStartReport {
    /// Edges seeded with encoded patches.
    pub seeded_edges: usize,
    /// Edges dropped to stay inside the 64-bit id budget (they will be
    /// discovered by traps as usual).
    pub pruned_edges: usize,
    /// `maxID` of the seeded encoding.
    pub max_id: u64,
}

impl SharedState {
    /// Seeds the engine from `seed`. Must run after [`Self::attach_main`]
    /// and before any call event; publishes the seeded encoding as
    /// dictionary 1 (dictionary 0 stays the trivial `main`-only one).
    pub(crate) fn warm_start(&mut self, seed: &WarmStartSeed) -> WarmStartReport {
        // Idempotence: re-seeding with the identical seed (recognised by
        // content fingerprint) returns the cached report without touching
        // stats, obs counters or the graph — tenant-safe for fleets where
        // several registrants may race to seed the same program.
        let fingerprint = seed.fingerprint();
        if let Some((prev, report)) = self.warm_fingerprint {
            assert_eq!(
                prev, fingerprint,
                "warm_start repeated with a different seed"
            );
            return report;
        }
        assert!(
            !self.dicts.is_empty(),
            "warm_start requires attach_main first"
        );
        assert_eq!(
            self.ts,
            TimeStamp::ZERO,
            "warm_start must precede any re-encoding"
        );
        assert_eq!(self.events, 0, "warm_start must precede execution");

        for &r in &seed.roots {
            self.register_root(r);
        }
        if self.config.handle_tail_calls {
            self.tail_fns.extend(seed.tail_fns.iter().copied());
        }

        // Spawn pseudo-edges never materialize as call events; drop them
        // defensively in case a caller hands us a richer graph.
        let mut edges: Vec<&SeedEdge> = seed
            .edges
            .iter()
            .filter(|e| e.dispatch != Dispatch::Spawn)
            .collect();
        let total = edges.len();

        loop {
            let mut g = (*self.graph).clone();
            for e in &edges {
                g.add_edge(e.caller, e.callee, e.site, e.dispatch);
            }
            classify_back_edges(&mut g, &self.roots);
            let enc = encode_graph(&g, &self.roots, &EncodeOptions::default());
            if enc.overflow {
                // Prune the callee with the largest context count — the
                // node driving the blowup — and try again. Its edges fall
                // back to dynamic discovery.
                let worst = enc
                    .num_cc
                    .iter()
                    .max_by_key(|(f, cc)| (**cc, std::cmp::Reverse(f.raw())))
                    .map(|(f, _)| *f);
                let before = edges.len();
                if let Some(w) = worst {
                    edges.retain(|e| e.callee != w);
                }
                if edges.len() == before {
                    // Cannot happen for a well-formed encoding, but never
                    // loop forever on a corrupt one.
                    edges.clear();
                }
                continue;
            }

            self.graph = Arc::new(g);
            let owners = Arc::make_mut(&mut self.site_owner);
            for e in &edges {
                owners.insert(e.site, e.caller);
            }
            let new_ts = self.ts.next();
            let dict = DecodeDict::from_encoding(&self.graph, &enc, new_ts)
                .expect("overflow checked above");
            self.dicts.push(dict);
            self.ts = new_ts;
            self.max_id = enc.max_id;
            self.stats.max_max_id = self.stats.max_max_id.max(self.max_id);
            self.rebuild_sites(&enc);
            self.last_hot_choice.clear();
            self.stats.progress.push(ProgressPoint {
                calls: 0,
                nodes: self.graph.node_count(),
                edges: self.graph.edge_count(),
                max_id: self.max_id,
            });
            let report = WarmStartReport {
                seeded_edges: edges.len(),
                pruned_edges: total - edges.len(),
                max_id: self.max_id,
            };
            self.obs
                .on_warm_start(report.seeded_edges as u64, report.pruned_edges as u64);
            self.obs.record_generation(
                self.ts.raw(),
                self.graph.node_count() as u32,
                self.graph.edge_count() as u32,
                self.max_id,
                0,
            );
            self.obs_writer.warm_seed(
                report.seeded_edges as u32,
                report.pruned_edges as u32,
                self.max_id,
            );
            self.warm_fingerprint = Some((fingerprint, report));
            return report;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DacceConfig;
    use crate::engine::DacceEngine;
    use dacce_program::runtime::CallDispatch;
    use dacce_program::{CostModel, ThreadId};

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    fn edge(caller: u32, callee: u32, site: u32) -> SeedEdge {
        SeedEdge {
            caller: f(caller),
            callee: f(callee),
            site: s(site),
            dispatch: Dispatch::Direct,
        }
    }

    #[test]
    fn seeded_edges_do_not_trap() {
        let mut engine = DacceEngine::new(DacceConfig::default(), CostModel::default());
        engine.attach_main(f(0));
        let report = engine.warm_start(&WarmStartSeed {
            roots: vec![f(0)],
            edges: vec![edge(0, 1, 0), edge(1, 2, 1)],
            tail_fns: Vec::new(),
        });
        assert_eq!(report.seeded_edges, 2);
        assert_eq!(report.pruned_edges, 0);
        let tid = ThreadId::MAIN;
        engine.thread_start(tid, f(0), None);
        engine.call(tid, s(0), f(0), f(1), CallDispatch::Direct, false);
        engine.call(tid, s(1), f(1), f(2), CallDispatch::Direct, false);
        assert_eq!(engine.stats().traps, 0, "seeded calls must not trap");
        let (ctx, _) = engine.sample(tid);
        let path = engine.decode(&ctx).unwrap();
        assert_eq!(path.0.len(), 3);
        engine.check_invariants().unwrap();
    }

    #[test]
    fn unseeded_edges_still_trap_and_decode() {
        let mut engine = DacceEngine::new(DacceConfig::default(), CostModel::default());
        engine.attach_main(f(0));
        engine.warm_start(&WarmStartSeed {
            roots: vec![f(0)],
            edges: vec![edge(0, 1, 0)],
            tail_fns: Vec::new(),
        });
        let tid = ThreadId::MAIN;
        engine.thread_start(tid, f(0), None);
        engine.call(tid, s(0), f(0), f(1), CallDispatch::Direct, false);
        engine.call(tid, s(7), f(1), f(9), CallDispatch::Direct, false);
        assert_eq!(engine.stats().traps, 1);
        let (ctx, _) = engine.sample(tid);
        let path = engine.decode(&ctx).unwrap();
        assert_eq!(path.0.len(), 3);
        engine.check_invariants().unwrap();
    }

    #[test]
    fn overflowing_seed_is_pruned_not_fatal() {
        // A wide layered graph whose full static encoding overflows u64:
        // 64 layers of 2 nodes with all 4 cross edges per layer would give
        // 2^64 contexts at the bottom; keep building until overflow is
        // certain.
        let mut edges = Vec::new();
        let mut site = 0u32;
        let layers = 70u32;
        for l in 0..layers {
            let (a, b) = (1 + 2 * l, 2 + 2 * l);
            let (c, d) = (1 + 2 * (l + 1), 2 + 2 * (l + 1));
            for &(x, y) in &[(a, c), (a, d), (b, c), (b, d)] {
                edges.push(edge(x, y, site));
                site += 1;
            }
        }
        edges.push(edge(0, 1, site));
        edges.push(edge(0, 2, site + 1));
        let total = edges.len();

        let mut engine = DacceEngine::new(DacceConfig::default(), CostModel::default());
        engine.attach_main(f(0));
        let report = engine.warm_start(&WarmStartSeed {
            roots: vec![f(0)],
            edges,
            tail_fns: Vec::new(),
        });
        assert!(report.pruned_edges > 0, "seed must be pruned");
        assert!(report.seeded_edges < total);
        assert!(u128::from(report.max_id) <= dacce_callgraph::encode::MAX_ENCODABLE_ID);
        engine.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "precede thread_start")]
    fn warm_start_after_threads_panics() {
        let mut engine = DacceEngine::new(DacceConfig::default(), CostModel::default());
        engine.attach_main(f(0));
        engine.thread_start(ThreadId::MAIN, f(0), None);
        engine.warm_start(&WarmStartSeed::default());
    }
}
