//! Per-thread encoding state.
//!
//! Each thread owns its context identifier and `ccStack` (allocated in TLS
//! in the paper's prototype, §5.3). Additionally the engine keeps a *shadow
//! stack* mirroring the thread's physical frames; it stands in for the
//! machine-stack access a DBI runtime handler has (return-address rewriting
//! at re-encoding, retroactive `TcStack` fix-up when the first tail call of
//! a function traps — see `DESIGN.md`). Only operations on frames whose
//! `wrapped` flag is set are charged as `TcStack` cost; the rest of the
//! shadow is free bookkeeping that real instrumentation keeps on the machine
//! stack itself.

use dacce_callgraph::{CallSiteId, FunctionId};

use crate::ccstack::CcStack;
use crate::context::SpawnLink;
use crate::patch::EdgeAction;

/// Number of [`InlineCache`] entries. A power of two; the dispatch slot
/// masked by `IC_SIZE - 1` picks the entry (direct-mapped).
const IC_SIZE: usize = 64;

/// One inline-cache entry: the last `(site, target)` resolved through a
/// polymorphic (indirect) dispatch slot, stamped with the encoding epoch
/// it was filled under.
#[derive(Clone, Copy, Debug)]
struct IcEntry {
    /// Snapshot epoch the entry was filled under; `u64::MAX` = empty.
    epoch: u64,
    site: CallSiteId,
    target: FunctionId,
    action: EdgeAction,
    tc_wrap: bool,
}

const IC_EMPTY: IcEntry = IcEntry {
    epoch: u64::MAX,
    site: CallSiteId::new(u32::MAX),
    target: FunctionId::new(u32::MAX),
    action: EdgeAction::Unencoded,
    tc_wrap: false,
};

/// A per-thread direct-mapped cache over polymorphic (indirect) call
/// sites: last callee → resolved action. Entries are stamped with the
/// encoding epoch they were filled under, so publishing a new snapshot
/// invalidates every entry for free — no cross-thread shootdown.
///
/// Monomorphic sites never come through here: their dispatch record *is*
/// the resolution, so caching would only add a compare.
#[derive(Clone, Debug)]
pub struct InlineCache {
    entries: Box<[IcEntry; IC_SIZE]>,
}

impl Default for InlineCache {
    fn default() -> Self {
        InlineCache {
            entries: Box::new([IC_EMPTY; IC_SIZE]),
        }
    }
}

impl InlineCache {
    /// Looks up `(site, target)` at dispatch slot `slot` under `epoch`.
    /// A stale epoch, a colliding slot or a different callee all miss.
    #[inline]
    pub(crate) fn probe(
        &self,
        slot: u32,
        epoch: u64,
        site: CallSiteId,
        target: FunctionId,
    ) -> Option<(EdgeAction, bool)> {
        let e = &self.entries[slot as usize & (IC_SIZE - 1)];
        (e.epoch == epoch && e.site == site && e.target == target).then_some((e.action, e.tc_wrap))
    }

    /// Installs the resolution for `(site, target)` at slot `slot`,
    /// evicting whatever shared the entry.
    #[inline]
    pub(crate) fn fill(
        &mut self,
        slot: u32,
        epoch: u64,
        site: CallSiteId,
        target: FunctionId,
        action: EdgeAction,
        tc_wrap: bool,
    ) {
        self.entries[slot as usize & (IC_SIZE - 1)] = IcEntry {
            epoch,
            site,
            target,
            action,
            tc_wrap,
        };
    }

    /// Drops every entry (thread reset).
    pub(crate) fn clear(&mut self) {
        *self.entries = [IC_EMPTY; IC_SIZE];
    }
}

/// One shadow frame: a physical, still-active call.
#[derive(Clone, Copy, Debug)]
pub struct ShadowFrame {
    /// The call site that created the frame.
    pub site: CallSiteId,
    /// The target invoked at call time (stays the original even if tail
    /// calls later replaced the physical frame's function).
    pub callee: FunctionId,
    /// `id` before the site's before-call instrumentation ran.
    pub saved_id: u64,
    /// `ccStack` depth before the site's before-call instrumentation ran.
    pub saved_cc_len: usize,
    /// Repetition count of the `ccStack` top entry before the call. A
    /// compressed push increments the top's counter without changing the
    /// stack length, so the `TcStack` absolute restore must reinstate the
    /// count as well as the length (§3.3 meets §5.2).
    pub saved_top_count: u64,
    /// Whether the site's `TcStack` save executed for this frame (§5.2).
    pub wrapped: bool,
}

/// The complete encoding state of one thread.
#[derive(Clone, Debug)]
pub struct ThreadCtx {
    /// The context identifier (`id`).
    pub id: u64,
    /// The encoding-context stack.
    pub cc: CcStack,
    /// The function currently executing (tracked from call/return events;
    /// a real runtime reads it off the PC).
    pub current: FunctionId,
    /// The thread's root function.
    pub root: FunctionId,
    /// Shadow of the physical frames, oldest first.
    pub shadow: Vec<ShadowFrame>,
    /// Thread-creation context (§5.3), `None` for the initial thread.
    pub spawn: Option<SpawnLink>,
    /// `TcStack` save/restore operations performed.
    pub tc_ops: u64,
    /// Indirect-call inline cache (epoch-stamped, see [`InlineCache`]).
    pub icache: InlineCache,
}

impl ThreadCtx {
    /// Fresh state for a thread rooted at `root`.
    pub fn new(root: FunctionId, spawn: Option<SpawnLink>) -> Self {
        ThreadCtx {
            id: 0,
            cc: CcStack::new(),
            current: root,
            root,
            shadow: Vec::with_capacity(64),
            spawn,
            tc_ops: 0,
            icache: InlineCache::default(),
        }
    }

    /// True when the encoding state is back at its initial value — the
    /// invariant after a fully unwound (balanced) execution.
    pub fn is_clean(&self) -> bool {
        self.id == 0 && self.cc.is_empty() && self.shadow.is_empty()
    }

    /// Resets to the initial state (main-loop restart).
    pub fn reset(&mut self) {
        self.id = 0;
        self.cc.clear();
        self.shadow.clear();
        self.current = self.root;
        self.icache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }

    #[test]
    fn new_thread_is_clean() {
        let ctx = ThreadCtx::new(f(3), None);
        assert!(ctx.is_clean());
        assert_eq!(ctx.current, f(3));
        assert_eq!(ctx.root, f(3));
    }

    #[test]
    fn dirty_state_detected_and_reset() {
        let mut ctx = ThreadCtx::new(f(0), None);
        ctx.id = 5;
        ctx.current = f(2);
        ctx.shadow.push(ShadowFrame {
            site: CallSiteId::new(1),
            callee: f(2),
            saved_id: 0,
            saved_cc_len: 0,
            saved_top_count: 0,
            wrapped: false,
        });
        assert!(!ctx.is_clean());
        ctx.reset();
        assert!(ctx.is_clean());
        assert_eq!(ctx.current, f(0));
    }

    #[test]
    fn icache_hits_only_exact_epoch_site_target() {
        let mut ic = InlineCache::default();
        let site = CallSiteId::new(9);
        let action = EdgeAction::Encoded { delta: 7 };
        assert!(ic.probe(3, 1, site, f(2)).is_none());
        ic.fill(3, 1, site, f(2), action, true);
        assert_eq!(ic.probe(3, 1, site, f(2)), Some((action, true)));
        // Different callee, stale epoch, colliding slot with another site:
        // all miss.
        assert!(ic.probe(3, 1, site, f(5)).is_none());
        assert!(ic.probe(3, 2, site, f(2)).is_none());
        assert!(ic.probe(3 + 64, 1, CallSiteId::new(10), f(2)).is_none());
        ic.clear();
        assert!(ic.probe(3, 1, site, f(2)).is_none());
    }

    #[test]
    fn icache_slot_collision_evicts() {
        let mut ic = InlineCache::default();
        let a = CallSiteId::new(1);
        let b = CallSiteId::new(2);
        ic.fill(5, 1, a, f(1), EdgeAction::Unencoded, false);
        ic.fill(5 + 64, 1, b, f(2), EdgeAction::Unencoded, false);
        assert!(ic.probe(5, 1, a, f(1)).is_none());
        assert!(ic.probe(5 + 64, 1, b, f(2)).is_some());
    }
}
