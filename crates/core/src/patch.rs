//! Per-call-site patch states.
//!
//! DACCE is built on dynamic binary instrumentation: every call site starts
//! as a trap into the runtime handler and is progressively patched with the
//! cheapest instrumentation its role allows (§3). This module models the
//! generated code as data: a [`SiteState`] describes exactly which operations
//! execute before and after the call instruction at one site.

use std::collections::HashMap;
use std::sync::Arc;

use dacce_callgraph::{CallSiteId, FunctionId};

/// What the generated code does for one concrete call edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeAction {
    /// Figure 2b: push `<id, cs, target>`, set `id = maxID + 1`; restore by
    /// popping.
    Unencoded,
    /// Figure 5e: like [`EdgeAction::Unencoded`] but compressing repetitive
    /// boundaries with a counter.
    UnencodedCompressed,
    /// Encoded edge: `id += delta` before, `id -= delta` after. A delta of 0
    /// emits no code at all — the adaptive goal for hot edges.
    Encoded {
        /// `En(e)` for this edge.
        delta: u64,
    },
}

impl EdgeAction {
    /// True when the action touches the ccStack.
    pub fn uses_ccstack(self) -> bool {
        matches!(
            self,
            EdgeAction::Unencoded | EdgeAction::UnencodedCompressed
        )
    }
}

/// Instrumentation of an indirect call site (§3.2).
///
/// Known targets are dispatched either through an inline compare chain
/// (Figure 3d) ordered hottest-first, or through a hash table (Figure 4)
/// once the chain exceeds the configured threshold. Unknown targets fall
/// through to the runtime handler.
#[derive(Clone, Debug, Default)]
pub struct IndirectPatch {
    /// Inline compare chain in evaluation order.
    pub inline: Vec<(FunctionId, EdgeAction)>,
    /// Hash-table dispatch; `Some` once the target count crossed the
    /// threshold.
    pub hashed: Option<HashMap<FunctionId, EdgeAction>>,
}

impl IndirectPatch {
    /// Looks up the action for `target` and the number of inline
    /// comparisons executed to find it (`None` if unknown). The second
    /// component of the `Some` payload is `(comparisons, used_hash)`.
    pub fn lookup(&self, target: FunctionId) -> Option<(EdgeAction, u32, bool)> {
        for (i, (t, a)) in self.inline.iter().enumerate() {
            if *t == target {
                return Some((*a, i as u32 + 1, false));
            }
        }
        if let Some(h) = &self.hashed {
            if let Some(a) = h.get(&target) {
                return Some((*a, self.inline.len() as u32, true));
            }
        }
        None
    }

    /// Number of known targets.
    pub fn target_count(&self) -> usize {
        self.inline.len() + self.hashed.as_ref().map_or(0, HashMap::len)
    }

    /// Iterates every known `(target, action)` pair: the compare chain in
    /// evaluation order, then the hash table in unspecified order.
    pub fn targets(&self) -> impl Iterator<Item = (FunctionId, EdgeAction)> + '_ {
        self.inline.iter().copied().chain(
            self.hashed
                .iter()
                .flat_map(|h| h.iter().map(|(t, a)| (*t, *a))),
        )
    }

    /// Registers a newly discovered target with the given action, keeping it
    /// in the hash table when one exists or appending to the chain.
    pub fn add_target(&mut self, target: FunctionId, action: EdgeAction, inline_max: usize) {
        if let Some(h) = &mut self.hashed {
            h.insert(target, action);
            return;
        }
        self.inline.push((target, action));
        if self.inline.len() > inline_max {
            let h: HashMap<FunctionId, EdgeAction> = self.inline.drain(..).collect();
            self.hashed = Some(h);
        }
    }
}

/// Dispatch portion of a site's generated code.
#[derive(Clone, Debug)]
pub enum SitePatch {
    /// Never executed: the call instruction is replaced by a trap into the
    /// runtime handler.
    Trap,
    /// Direct (or PLT-resolved) call with a single known target.
    Direct(FunctionId, EdgeAction),
    /// Indirect call with runtime target dispatch.
    Indirect(IndirectPatch),
}

/// Full instrumentation state of one call site.
#[derive(Clone, Debug)]
pub struct SiteState {
    /// §5.2: save the encoding context absolutely before the call and
    /// restore it after, because the callee contains tail calls.
    pub tc_wrap: bool,
    /// The dispatch/action code.
    pub patch: SitePatch,
}

impl SiteState {
    /// The initial state of every site.
    pub fn trap() -> Self {
        SiteState {
            tc_wrap: false,
            patch: SitePatch::Trap,
        }
    }
}

impl Default for SiteState {
    fn default() -> Self {
        Self::trap()
    }
}

/// Copy-on-write table of every call site's instrumentation state.
///
/// The table is the shared half of the "generated code": the slow path
/// mutates it under the engine lock (via [`Arc::make_mut`], cloning only
/// when a published snapshot still references the old version), while
/// snapshots hand read-only clones to reader threads in O(1).
#[derive(Clone, Debug, Default)]
pub struct PatchTable {
    sites: Arc<HashMap<CallSiteId, SiteState>>,
}

impl PatchTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The state of `site`, if it ever trapped.
    pub fn get(&self, site: CallSiteId) -> Option<&SiteState> {
        self.sites.get(&site)
    }

    /// Mutable access to `site`'s state, inserting the initial trap state
    /// on first touch. Clones the underlying map iff a snapshot still
    /// shares it.
    pub fn site_mut(&mut self, site: CallSiteId) -> &mut SiteState {
        Arc::make_mut(&mut self.sites).entry(site).or_default()
    }

    /// Mutable access to `site`'s state only if it already exists (never
    /// inserts). Clones the underlying map iff a snapshot still shares it.
    pub fn existing_mut(&mut self, site: CallSiteId) -> Option<&mut SiteState> {
        if !self.sites.contains_key(&site) {
            return None;
        }
        Arc::make_mut(&mut self.sites).get_mut(&site)
    }

    /// Replaces the whole table (used when a re-encoding regenerates every
    /// site's code).
    pub fn replace_all(&mut self, sites: HashMap<CallSiteId, SiteState>) {
        self.sites = Arc::new(sites);
    }

    /// Iterates over all known sites in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&CallSiteId, &SiteState)> {
        self.sites.iter()
    }

    /// Number of sites that have trapped at least once.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when no site has trapped yet.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }

    #[test]
    fn edge_action_classification() {
        assert!(EdgeAction::Unencoded.uses_ccstack());
        assert!(EdgeAction::UnencodedCompressed.uses_ccstack());
        assert!(!EdgeAction::Encoded { delta: 3 }.uses_ccstack());
    }

    #[test]
    fn inline_chain_lookup_counts_comparisons() {
        let mut p = IndirectPatch::default();
        p.add_target(f(1), EdgeAction::Encoded { delta: 0 }, 4);
        p.add_target(f(2), EdgeAction::Encoded { delta: 5 }, 4);
        let (a, cmps, hashed) = p.lookup(f(2)).unwrap();
        assert_eq!(a, EdgeAction::Encoded { delta: 5 });
        assert_eq!(cmps, 2);
        assert!(!hashed);
        assert!(p.lookup(f(9)).is_none());
        assert_eq!(p.target_count(), 2);
    }

    #[test]
    fn chain_converts_to_hash_beyond_threshold() {
        let mut p = IndirectPatch::default();
        for i in 0..5 {
            p.add_target(f(i), EdgeAction::Unencoded, 3);
        }
        assert!(p.hashed.is_some(), "chain must convert past inline_max");
        assert!(p.inline.is_empty());
        assert_eq!(p.target_count(), 5);
        let (_, cmps, hashed) = p.lookup(f(4)).unwrap();
        assert!(hashed);
        assert_eq!(cmps, 0, "no inline comparisons remain");
        // New targets go straight to the hash.
        p.add_target(f(9), EdgeAction::Unencoded, 3);
        assert_eq!(p.target_count(), 6);
    }

    #[test]
    fn site_state_defaults_to_trap() {
        let s = SiteState::default();
        assert!(!s.tc_wrap);
        assert!(matches!(s.patch, SitePatch::Trap));
    }

    #[test]
    fn patch_table_copy_on_write() {
        let site = CallSiteId::new(7);
        let mut table = PatchTable::new();
        assert!(table.is_empty());
        table.site_mut(site).patch = SitePatch::Direct(f(1), EdgeAction::Encoded { delta: 2 });
        let snapshot = table.clone();
        // Mutating after a snapshot was taken must not leak into it.
        table.site_mut(site).patch = SitePatch::Trap;
        table.site_mut(CallSiteId::new(8)).tc_wrap = true;
        assert!(matches!(
            snapshot.get(site).unwrap().patch,
            SitePatch::Direct(_, _)
        ));
        assert!(snapshot.get(CallSiteId::new(8)).is_none());
        assert_eq!(table.len(), 2);
        assert_eq!(snapshot.len(), 1);
    }
}
