//! Offline export of decode state and collected contexts.
//!
//! The deployment story of the paper is *record online, decode offline*:
//! the instrumented process only appends tiny encoded contexts to its log;
//! the decode dictionaries are dumped once (plus once per re-encoding) and
//! the expensive reconstruction happens in a separate analysis process.
//! This module provides that boundary as a plain-text, line-oriented
//! format (no external dependencies, stable across versions of this
//! crate):
//!
//! ```text
//! dacce-export v1
//! dict <ts> <maxID>
//! node <func> <numCC>
//! edge <caller> <callee> <site> <encoding> <back> <dispatch>
//! enddict
//! owner <site> <func>
//! dispatch <site> <slot> <kind> <target|-> <action|-> <tcwrap>
//! degraded <active> <traps> <retries> <spills> <spilledpeak> <poisonings> <slotfail> <batcherr>
//! degradednode <func>
//! superop <calls> <ccops> <compresshits> <ccpeak> <c:site:target|r ...>
//! sample <ts> <id> <leaf> <root> <cc-entries> | <spawn-site> <parent...>
//! ```
//!
//! `dispatch` lines dump the compiled dispatch table of the *current*
//! generation (one line per known target for polymorphic sites; `kind` is
//! `trap`, `mono` or `poly`; `action` is `enc:<delta>`, `cc` or `ccc`).
//! They let an offline verifier check the flat table edge-for-edge against
//! the latest dictionary (`dacce-lint --dispatch`).
//!
//! `superop` lines dump the compiled superop table of the current
//! generation: the call/return window (`c:<site>:<target>` and `r`
//! tokens) followed by the memoized net effect the runtime applies on a
//! hit. `dacce-lint --superops` re-folds each window event-by-event
//! through the exported dispatch records and rejects a net effect that
//! does not match.
//!
//! [`export_state`] dumps an engine's dictionaries and site-owner table;
//! [`export_samples`] appends contexts; [`import`] parses everything back
//! into an [`OfflineDecoder`] that can decode without the engine.

use std::collections::HashMap;
use std::fmt::Write as _;

use dacce_callgraph::{CallSiteId, DecodeDict, DictStore, Dispatch, FunctionId, TimeStamp};
use dacce_program::ContextPath;

use crate::ccstack::CcEntry;
use crate::context::{EncodedContext, SpawnLink};
use crate::decode::{decode_full, DecodeError};
use crate::dispatch::CompiledDispatch;
use crate::engine::DacceEngine;
use crate::patch::EdgeAction;
use crate::stats::DegradedState;
use crate::superop::WindowOp;

/// Header line of the export format.
pub const HEADER: &str = "dacce-export v1";

/// Errors from [`import`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImportError {
    /// The header line is missing or has the wrong version.
    BadHeader,
    /// A line could not be parsed; carries the 1-based line number and a
    /// description.
    BadLine(usize, String),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::BadHeader => write!(f, "missing or unsupported export header"),
            ImportError::BadLine(n, what) => write!(f, "line {n}: {what}"),
        }
    }
}

impl std::error::Error for ImportError {}

fn dispatch_tag(d: Dispatch) -> &'static str {
    match d {
        Dispatch::Direct => "direct",
        Dispatch::Indirect => "indirect",
        Dispatch::Plt => "plt",
        Dispatch::Spawn => "spawn",
    }
}

fn parse_dispatch(s: &str) -> Option<Dispatch> {
    Some(match s {
        "direct" => Dispatch::Direct,
        "indirect" => Dispatch::Indirect,
        "plt" => Dispatch::Plt,
        "spawn" => Dispatch::Spawn,
        _ => return None,
    })
}

fn action_tag(a: EdgeAction) -> String {
    match a {
        EdgeAction::Encoded { delta } => format!("enc:{delta}"),
        EdgeAction::Unencoded => "cc".into(),
        EdgeAction::UnencodedCompressed => "ccc".into(),
    }
}

fn parse_action(s: &str) -> Option<EdgeAction> {
    Some(match s {
        "cc" => EdgeAction::Unencoded,
        "ccc" => EdgeAction::UnencodedCompressed,
        _ => EdgeAction::Encoded {
            delta: s.strip_prefix("enc:")?.parse().ok()?,
        },
    })
}

/// Serialises the engine's decode dictionaries and site owners.
pub fn export_state(engine: &DacceEngine) -> String {
    export_shared(&engine.shared, &engine.stats().degraded)
}

/// Serialises a [`crate::Tracker`]'s shared encoding state in the same
/// `dacce-export v1` format as [`export_state`]. Pending per-thread
/// deltas are absorbed first, so the dump reflects everything the tracker
/// has observed. Used by fleet tooling to compare a shared-lineage
/// tenant's decode state against a standalone twin.
pub fn export_tracker_state(tracker: &crate::Tracker) -> String {
    let degraded = tracker.stats().degraded;
    tracker.with_shared(|sh| export_shared(sh, &degraded))
}

/// The format body, over the shared state both fronts wrap.
pub(crate) fn export_shared(
    shared: &crate::shared::SharedState,
    degraded: &DegradedState,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    for ts_idx in 0..shared.dicts.len() {
        let ts = TimeStamp::new(ts_idx as u32);
        let dict = shared.dicts.get(ts).expect("indexed in range");
        let _ = writeln!(out, "dict {} {}", ts.raw(), dict.max_id());
        // Nodes: emit numCC for every function the dictionary knows.
        let mut nodes: Vec<FunctionId> = dict
            .edges()
            .iter()
            .flat_map(|e| [e.caller, e.callee])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        for f in nodes {
            if let Some(cc) = dict.num_cc(f) {
                let _ = writeln!(out, "node {} {}", f.raw(), cc);
            }
        }
        // Also cover isolated nodes (e.g. `main` before any edge).
        for f in shared.graph.nodes() {
            if dict.num_cc(*f).is_some() && dict.incoming(*f).next().is_none() {
                let known = dict
                    .edges()
                    .iter()
                    .any(|e| e.caller == *f || e.callee == *f);
                if !known {
                    let _ = writeln!(
                        out,
                        "node {} {}",
                        f.raw(),
                        dict.num_cc(*f).expect("checked")
                    );
                }
            }
        }
        for e in dict.edges() {
            let _ = writeln!(
                out,
                "edge {} {} {} {} {} {}",
                e.caller.raw(),
                e.callee.raw(),
                e.site.raw(),
                e.encoding,
                u8::from(e.back),
                dispatch_tag(e.dispatch),
            );
        }
        let _ = writeln!(out, "enddict");
    }
    let mut owners: Vec<(&CallSiteId, &FunctionId)> = shared.site_owner.iter().collect();
    owners.sort_by_key(|(s, _)| s.raw());
    for (site, func) in owners {
        let _ = writeln!(out, "owner {} {}", site.raw(), func.raw());
    }
    // The compiled dispatch table of the current generation, one line per
    // resolvable target (polymorphic targets sorted for stable output).
    for (site, slot, cs) in shared.dispatch.iter_compiled() {
        match cs.dispatch {
            CompiledDispatch::Trap => {
                let _ = writeln!(
                    out,
                    "dispatch {} {slot} trap - - {}",
                    site.raw(),
                    u8::from(cs.tc_wrap)
                );
            }
            CompiledDispatch::Mono { target, action } => {
                let _ = writeln!(
                    out,
                    "dispatch {} {slot} mono {} {} {}",
                    site.raw(),
                    target.raw(),
                    action_tag(action),
                    u8::from(cs.tc_wrap)
                );
            }
            CompiledDispatch::Poly { index } => {
                let mut targets: Vec<(FunctionId, EdgeAction)> =
                    shared.dispatch.poly_patch(index).targets().collect();
                targets.sort_by_key(|(t, _)| t.raw());
                for (target, action) in targets {
                    let _ = writeln!(
                        out,
                        "dispatch {} {slot} poly {} {} {}",
                        site.raw(),
                        target.raw(),
                        action_tag(action),
                        u8::from(cs.tc_wrap)
                    );
                }
            }
        }
    }
    // The compiled superop table of the current generation: window trace
    // plus memoized net effect, one line per superop.
    for so in shared.superops.iter() {
        let _ = write!(
            out,
            "superop {} {} {} {}",
            so.calls, so.cc_ops, so.compress_hits, so.cc_peak
        );
        for op in &so.window {
            match *op {
                WindowOp::Call { site, target } => {
                    let _ = write!(out, " c:{}:{}", site.raw(), target.raw());
                }
                WindowOp::Ret => out.push_str(" r"),
            }
        }
        out.push('\n');
    }
    // Degraded-state record: lets offline tools audit a run that survived
    // injected faults (one `degradednode` line per demoted function).
    let d = degraded;
    if d.any() {
        let _ = writeln!(
            out,
            "degraded {} {} {} {} {} {} {} {}",
            u8::from(d.active),
            d.degraded_traps,
            d.reencode_retries,
            d.cc_spill_events,
            d.cc_spilled_peak,
            d.lock_poisonings,
            d.slot_failures,
            d.batch_errors,
        );
        for n in &d.trap_nodes {
            let _ = writeln!(out, "degradednode {n}");
        }
    }
    out
}

pub(crate) fn write_ctx(out: &mut String, ctx: &EncodedContext) {
    let _ = write!(
        out,
        "{} {} {} {}",
        ctx.ts.raw(),
        ctx.id,
        ctx.leaf.raw(),
        ctx.root.raw()
    );
    for e in &ctx.cc {
        let _ = write!(
            out,
            " {}:{}:{}:{}",
            e.id,
            e.site.raw(),
            e.target.raw(),
            e.count
        );
    }
    if let Some(link) = &ctx.spawn {
        let _ = write!(out, " | {} ", link.site.raw());
        write_ctx(out, &link.parent);
    }
}

/// Serialises collected contexts, one `sample` line each.
pub fn export_samples<'a>(samples: impl IntoIterator<Item = &'a EncodedContext>) -> String {
    let mut out = String::new();
    for ctx in samples {
        out.push_str("sample ");
        write_ctx(&mut out, ctx);
        out.push('\n');
    }
    out
}

/// Kind of a [`DispatchRecord`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchKind {
    /// The site still traps into the runtime handler.
    Trap,
    /// Monomorphic: exactly one known target.
    Mono,
    /// Polymorphic: one record line per known target.
    Poly,
}

/// One line of the export's compiled dispatch table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchRecord {
    /// The call site the record compiles.
    pub site: CallSiteId,
    /// The dense slot assigned to the site.
    pub slot: u32,
    /// Record kind.
    pub kind: DispatchKind,
    /// The resolved target (`None` for trap records).
    pub target: Option<FunctionId>,
    /// The action compiled for `target` (`None` for trap records).
    pub action: Option<EdgeAction>,
    /// §5.2 TcStack wrap flag of the site.
    pub tc_wrap: bool,
}

/// One line of the export's compiled superop table: the call/return
/// window plus the memoized net effect the runtime applies on a hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuperOpRecord {
    /// The window trace the superop matches.
    pub window: Vec<WindowOp>,
    /// Call events the window covers.
    pub calls: u64,
    /// ccStack operations (pushes + pops) the window performs.
    pub cc_ops: u64,
    /// Compressed-recursion hits inside the window.
    pub compress_hits: u64,
    /// Peak ccStack depth inside the window, relative to entry.
    pub cc_peak: usize,
}

/// Offline decoding state reassembled from an export.
#[derive(Debug, Default)]
pub struct OfflineDecoder {
    dicts: DictStore,
    owners: HashMap<CallSiteId, FunctionId>,
    samples: Vec<EncodedContext>,
    dispatch: Vec<DispatchRecord>,
    superops: Vec<SuperOpRecord>,
    degraded: DegradedState,
}

impl OfflineDecoder {
    /// The imported dictionaries.
    pub fn dicts(&self) -> &DictStore {
        &self.dicts
    }

    /// The imported samples, in input order.
    pub fn samples(&self) -> &[EncodedContext] {
        &self.samples
    }

    /// The imported call-site owner table.
    pub fn owners(&self) -> &HashMap<CallSiteId, FunctionId> {
        &self.owners
    }

    /// The imported compiled dispatch table, in input order.
    pub fn dispatch(&self) -> &[DispatchRecord] {
        &self.dispatch
    }

    /// The imported compiled superop table, in input order.
    pub fn superops(&self) -> &[SuperOpRecord] {
        &self.superops
    }

    /// The imported degraded-state record (all-zero when the export
    /// carried none — the run saw no faults).
    pub fn degraded(&self) -> &DegradedState {
        &self.degraded
    }

    /// Decodes one context against the imported dictionaries.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for contexts inconsistent with the import.
    pub fn decode(&self, ctx: &EncodedContext) -> Result<ContextPath, DecodeError> {
        decode_full(ctx, &self.dicts, &self.owners)
    }
}

pub(crate) fn parse_ctx(
    tokens: &mut std::iter::Peekable<std::str::SplitWhitespace<'_>>,
    lineno: usize,
) -> Result<EncodedContext, ImportError> {
    let mut next_num = |what: &str| -> Result<u64, ImportError> {
        tokens
            .next()
            .ok_or_else(|| ImportError::BadLine(lineno, format!("missing {what}")))?
            .parse::<u64>()
            .map_err(|_| ImportError::BadLine(lineno, format!("bad {what}")))
    };
    let ts = TimeStamp::new(next_num("ts")? as u32);
    let id = next_num("id")?;
    let leaf = FunctionId::new(next_num("leaf")? as u32);
    let root = FunctionId::new(next_num("root")? as u32);
    let mut cc = Vec::new();
    let mut spawn = None;
    while let Some(&tok) = tokens.peek() {
        if tok == "|" {
            tokens.next();
            let site = CallSiteId::new(
                tokens
                    .next()
                    .ok_or_else(|| ImportError::BadLine(lineno, "missing spawn site".into()))?
                    .parse::<u32>()
                    .map_err(|_| ImportError::BadLine(lineno, "bad spawn site".into()))?,
            );
            let parent = parse_ctx(tokens, lineno)?;
            spawn = Some(SpawnLink {
                site,
                parent: Box::new(parent),
            });
            break;
        }
        let tok = tokens.next().expect("peeked");
        let parts: Vec<&str> = tok.split(':').collect();
        if parts.len() != 4 {
            return Err(ImportError::BadLine(lineno, format!("bad cc entry {tok}")));
        }
        let nums: Result<Vec<u64>, _> = parts.iter().map(|p| p.parse::<u64>()).collect();
        let nums = nums.map_err(|_| ImportError::BadLine(lineno, format!("bad cc entry {tok}")))?;
        cc.push(CcEntry {
            id: nums[0],
            site: CallSiteId::new(nums[1] as u32),
            target: FunctionId::new(nums[2] as u32),
            count: nums[3],
        });
    }
    Ok(EncodedContext {
        ts,
        id,
        leaf,
        root,
        cc,
        spawn,
    })
}

/// Parses an export (state and/or samples, in any order after the header).
///
/// # Errors
///
/// Returns [`ImportError`] on malformed input.
pub fn import(text: &str) -> Result<OfflineDecoder, ImportError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(ImportError::BadHeader),
    }

    let mut out = OfflineDecoder::default();
    // Dictionary assembly state: timestamp, maxID, graph, numCC table, and
    // the edge encodings in insertion order.
    type DictState = (
        TimeStamp,
        u64,
        dacce_callgraph::CallGraph,
        HashMap<FunctionId, u128>,
        Vec<u64>,
    );
    let mut current: Option<DictState> = None;

    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace().peekable();
        let kind = tokens.next().expect("non-empty line");
        match kind {
            "dict" => {
                let ts: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ImportError::BadLine(lineno, "bad dict ts".into()))?;
                let max_id: u64 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ImportError::BadLine(lineno, "bad dict maxID".into()))?;
                current = Some((
                    TimeStamp::new(ts),
                    max_id,
                    dacce_callgraph::CallGraph::new(),
                    HashMap::new(),
                    Vec::new(),
                ));
            }
            "node" => {
                let (_, _, graph, num_cc, _) = current
                    .as_mut()
                    .ok_or_else(|| ImportError::BadLine(lineno, "node outside dict".into()))?;
                let f: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ImportError::BadLine(lineno, "bad node".into()))?;
                let cc: u128 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ImportError::BadLine(lineno, "bad numCC".into()))?;
                graph.ensure_node(FunctionId::new(f));
                num_cc.insert(FunctionId::new(f), cc);
            }
            "edge" => {
                let (_, _, graph, _, encodings) = current
                    .as_mut()
                    .ok_or_else(|| ImportError::BadLine(lineno, "edge outside dict".into()))?;
                let nums: Vec<&str> = tokens.by_ref().collect();
                if nums.len() != 6 {
                    return Err(ImportError::BadLine(lineno, "edge needs 6 fields".into()));
                }
                let caller: u32 = nums[0]
                    .parse()
                    .map_err(|_| ImportError::BadLine(lineno, "bad caller".into()))?;
                let callee: u32 = nums[1]
                    .parse()
                    .map_err(|_| ImportError::BadLine(lineno, "bad callee".into()))?;
                let site: u32 = nums[2]
                    .parse()
                    .map_err(|_| ImportError::BadLine(lineno, "bad site".into()))?;
                let _encoding: u64 = nums[3]
                    .parse()
                    .map_err(|_| ImportError::BadLine(lineno, "bad encoding".into()))?;
                let back = nums[4] == "1";
                let dispatch = parse_dispatch(nums[5])
                    .ok_or_else(|| ImportError::BadLine(lineno, "bad dispatch".into()))?;
                let (eid, _) = graph.add_edge(
                    FunctionId::new(caller),
                    FunctionId::new(callee),
                    CallSiteId::new(site),
                    dispatch,
                );
                graph.edge_mut(eid).back = back;
                encodings.push(_encoding);
            }
            "enddict" => {
                let (ts, max_id, graph, num_cc, encodings) = current
                    .take()
                    .ok_or_else(|| ImportError::BadLine(lineno, "enddict without dict".into()))?;
                let mut enc = dacce_callgraph::encode::Encoding {
                    max_id,
                    overflow: false,
                    num_cc,
                    edge_encoding: HashMap::new(),
                };
                for (i, (eid, e)) in graph.edges().enumerate() {
                    if !e.back {
                        enc.edge_encoding.insert(eid, u128::from(encodings[i]));
                    }
                }
                let dict = DecodeDict::from_encoding(&graph, &enc, ts)
                    .map_err(|e| ImportError::BadLine(lineno, e.to_string()))?;
                out.dicts.push(dict);
            }
            "owner" => {
                let site: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ImportError::BadLine(lineno, "bad owner site".into()))?;
                let func: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ImportError::BadLine(lineno, "bad owner func".into()))?;
                out.owners
                    .insert(CallSiteId::new(site), FunctionId::new(func));
            }
            "dispatch" => {
                let fields: Vec<&str> = tokens.by_ref().collect();
                if fields.len() != 6 {
                    return Err(ImportError::BadLine(
                        lineno,
                        "dispatch needs 6 fields".into(),
                    ));
                }
                let site: u32 = fields[0]
                    .parse()
                    .map_err(|_| ImportError::BadLine(lineno, "bad dispatch site".into()))?;
                let slot: u32 = fields[1]
                    .parse()
                    .map_err(|_| ImportError::BadLine(lineno, "bad dispatch slot".into()))?;
                let kind = match fields[2] {
                    "trap" => DispatchKind::Trap,
                    "mono" => DispatchKind::Mono,
                    "poly" => DispatchKind::Poly,
                    other => {
                        return Err(ImportError::BadLine(
                            lineno,
                            format!("bad dispatch kind {other}"),
                        ))
                    }
                };
                let target = match fields[3] {
                    "-" => None,
                    t => Some(FunctionId::new(t.parse().map_err(|_| {
                        ImportError::BadLine(lineno, "bad dispatch target".into())
                    })?)),
                };
                let action = match fields[4] {
                    "-" => None,
                    a => Some(parse_action(a).ok_or_else(|| {
                        ImportError::BadLine(lineno, format!("bad dispatch action {a}"))
                    })?),
                };
                let want_payload = kind != DispatchKind::Trap;
                if target.is_some() != want_payload || action.is_some() != want_payload {
                    return Err(ImportError::BadLine(
                        lineno,
                        "dispatch target/action must be '-' iff kind is trap".into(),
                    ));
                }
                let tc_wrap = fields[5] == "1";
                out.dispatch.push(DispatchRecord {
                    site: CallSiteId::new(site),
                    slot,
                    kind,
                    target,
                    action,
                    tc_wrap,
                });
            }
            "superop" => {
                let mut next_num = |what: &str| -> Result<u64, ImportError> {
                    tokens
                        .next()
                        .ok_or_else(|| ImportError::BadLine(lineno, format!("missing {what}")))?
                        .parse::<u64>()
                        .map_err(|_| ImportError::BadLine(lineno, format!("bad {what}")))
                };
                let calls = next_num("superop calls")?;
                let cc_ops = next_num("superop ccops")?;
                let compress_hits = next_num("superop compresshits")?;
                let cc_peak = next_num("superop ccpeak")? as usize;
                let mut window = Vec::new();
                for tok in tokens.by_ref() {
                    if tok == "r" {
                        window.push(WindowOp::Ret);
                        continue;
                    }
                    let rest = tok.strip_prefix("c:").ok_or_else(|| {
                        ImportError::BadLine(lineno, format!("bad superop token {tok}"))
                    })?;
                    let (site, target) = rest.split_once(':').ok_or_else(|| {
                        ImportError::BadLine(lineno, format!("bad superop token {tok}"))
                    })?;
                    let site: u32 = site.parse().map_err(|_| {
                        ImportError::BadLine(lineno, format!("bad superop site {tok}"))
                    })?;
                    let target: u32 = target.parse().map_err(|_| {
                        ImportError::BadLine(lineno, format!("bad superop target {tok}"))
                    })?;
                    window.push(WindowOp::Call {
                        site: CallSiteId::new(site),
                        target: FunctionId::new(target),
                    });
                }
                if window.is_empty() {
                    return Err(ImportError::BadLine(
                        lineno,
                        "superop needs a window".into(),
                    ));
                }
                out.superops.push(SuperOpRecord {
                    window,
                    calls,
                    cc_ops,
                    compress_hits,
                    cc_peak,
                });
            }
            "degraded" => {
                let fields: Vec<&str> = tokens.by_ref().collect();
                if fields.len() != 8 {
                    return Err(ImportError::BadLine(
                        lineno,
                        "degraded needs 8 fields".into(),
                    ));
                }
                let nums: Result<Vec<u64>, _> = fields.iter().map(|t| t.parse::<u64>()).collect();
                let nums =
                    nums.map_err(|_| ImportError::BadLine(lineno, "bad degraded counter".into()))?;
                out.degraded.active = nums[0] != 0;
                out.degraded.degraded_traps = nums[1];
                out.degraded.reencode_retries = nums[2];
                out.degraded.cc_spill_events = nums[3];
                out.degraded.cc_spilled_peak = nums[4];
                out.degraded.lock_poisonings = nums[5];
                out.degraded.slot_failures = nums[6];
                out.degraded.batch_errors = nums[7];
            }
            "degradednode" => {
                let n: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ImportError::BadLine(lineno, "bad degraded node".into()))?;
                out.degraded.note_trap_node(n);
            }
            "sample" => {
                out.samples.push(parse_ctx(&mut tokens, lineno)?);
            }
            other => {
                return Err(ImportError::BadLine(
                    lineno,
                    format!("unknown record {other}"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DacceConfig;
    use dacce_program::runtime::CallDispatch;
    use dacce_program::{CostModel, ThreadId};

    fn f(i: u32) -> FunctionId {
        FunctionId::new(i)
    }
    fn s(i: u32) -> CallSiteId {
        CallSiteId::new(i)
    }

    fn engine_with_history() -> DacceEngine {
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            keep_sample_log: true,
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        let _ = e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(1),
            CallDispatch::Direct,
            false,
        );
        let _ = e.sample(ThreadId::MAIN);
        let _ = e.call(
            ThreadId::MAIN,
            s(1),
            f(1),
            f(2),
            CallDispatch::Direct,
            false,
        );
        let _ = e.sample(ThreadId::MAIN);
        let _ = e.call(
            ThreadId::MAIN,
            s(2),
            f(2),
            f(2),
            CallDispatch::Direct,
            false,
        );
        let _ = e.sample(ThreadId::MAIN);
        e
    }

    #[test]
    fn export_import_roundtrip_decodes_identically() {
        let e = engine_with_history();
        let text = format!(
            "{}{}",
            export_state(&e),
            export_samples(e.sample_log().iter())
        );
        let offline = import(&text).expect("imports");
        assert_eq!(offline.dicts().len(), e.dicts().len());
        assert_eq!(offline.samples().len(), e.sample_log().len());
        for (orig, imported) in e.sample_log().iter().zip(offline.samples()) {
            assert_eq!(orig, imported, "sample round-trips structurally");
            let a = e.decode(orig).expect("engine decodes");
            let b = offline.decode(imported).expect("offline decodes");
            assert_eq!(a, b, "offline decode matches engine decode");
        }
    }

    #[test]
    fn dispatch_records_roundtrip() {
        let mut e = engine_with_history();
        // Add an indirect site with two targets so a poly record appears.
        let _ = e.call(
            ThreadId::MAIN,
            s(9),
            f(2),
            f(3),
            CallDispatch::Indirect,
            false,
        );
        let _ = e.ret(ThreadId::MAIN, s(9), f(2), f(3));
        let _ = e.call(
            ThreadId::MAIN,
            s(9),
            f(2),
            f(4),
            CallDispatch::Indirect,
            false,
        );
        let text = export_state(&e);
        let offline = import(&text).expect("imports");
        let records = offline.dispatch();
        assert!(!records.is_empty(), "export carries dispatch records");
        // One record per (site, target) pair for non-trap sites; the poly
        // site contributes one line per known target.
        let poly: Vec<_> = records
            .iter()
            .filter(|r| r.kind == DispatchKind::Poly)
            .collect();
        assert_eq!(poly.len(), 2, "both indirect targets exported");
        assert!(poly.iter().all(|r| r.site == s(9)));
        assert!(poly
            .iter()
            .all(|r| r.target.is_some() && r.action.is_some()));
        // Slots are stable per site: all lines of one site share a slot and
        // no two sites share one.
        let mut slot_of: HashMap<CallSiteId, u32> = HashMap::new();
        for r in records {
            match slot_of.get(&r.site) {
                Some(&slot) => assert_eq!(slot, r.slot, "slot consistent within site"),
                None => {
                    assert!(
                        slot_of.values().all(|&used| used != r.slot),
                        "slot unique across sites"
                    );
                    slot_of.insert(r.site, r.slot);
                }
            }
        }
        // Every record's action must agree with the engine's live resolution.
        for r in records.iter().filter(|r| r.kind != DispatchKind::Trap) {
            let resolved = e
                .shared
                .lookup_action(r.site, r.target.unwrap())
                .expect("record target resolves live");
            assert_eq!(resolved.action, r.action.unwrap());
            assert_eq!(resolved.tc_wrap, r.tc_wrap);
        }
    }

    #[test]
    fn malformed_dispatch_lines_are_rejected() {
        for bad in [
            "dacce-export v1\ndispatch 0 0 mono 1 enc:3\n", // 5 fields
            "dacce-export v1\ndispatch 0 0 wat 1 enc:3 0\n", // bad kind
            "dacce-export v1\ndispatch 0 0 mono - enc:3 0\n", // mono needs target
            "dacce-export v1\ndispatch 0 0 trap 1 enc:3 0\n", // trap forbids target
            "dacce-export v1\ndispatch 0 0 mono 1 huh 0\n", // bad action
            "dacce-export v1\ndispatch x 0 mono 1 enc:3 0\n", // bad site
        ] {
            assert!(import(bad).is_err(), "must reject: {bad:?}");
        }
    }

    #[test]
    fn spawned_contexts_roundtrip() {
        let mut e = engine_with_history();
        e.thread_start(ThreadId::new(7), f(9), Some((ThreadId::MAIN, s(5))));
        let _ = e.call(
            ThreadId::new(7),
            s(6),
            f(9),
            f(1),
            CallDispatch::Direct,
            false,
        );
        let (snap, _) = e.sample(ThreadId::new(7));
        assert!(snap.spawn.is_some());
        let text = format!("{}{}", export_state(&e), export_samples([&snap]));
        let offline = import(&text).expect("imports");
        let a = e.decode(&snap).expect("engine decodes");
        let b = offline
            .decode(&offline.samples()[0])
            .expect("offline decodes");
        assert_eq!(a, b);
    }

    #[test]
    fn degraded_state_roundtrips() {
        use crate::fault::FaultPlan;
        let cfg = DacceConfig {
            edge_threshold: 2,
            min_events_between_reencodes: 1,
            fault: FaultPlan {
                max_id_cap: Some(0),
                ..FaultPlan::default()
            },
            ..DacceConfig::default()
        };
        let mut e = DacceEngine::new(cfg, CostModel::default());
        e.attach_main(f(0));
        e.thread_start(ThreadId::MAIN, f(0), None);
        // Build a diamond (f0->f1->f3 and f0->f2->f3) so f3 has two
        // calling contexts and the encoding needs ids past the cap.
        let walk = [
            (s(0), f(0), f(1)),
            (s(1), f(1), f(3)),
            (s(2), f(0), f(2)),
            (s(3), f(2), f(3)),
        ];
        for chunk in walk.chunks(2) {
            for &(site, caller, callee) in chunk {
                let _ = e.call(
                    ThreadId::MAIN,
                    site,
                    caller,
                    callee,
                    CallDispatch::Direct,
                    false,
                );
            }
            for &(site, caller, callee) in chunk.iter().rev() {
                let _ = e.ret(ThreadId::MAIN, site, caller, callee);
            }
        }
        // Past exhaustion: new edges stay unencoded and are recorded as
        // degraded traps.
        let _ = e.call(
            ThreadId::MAIN,
            s(4),
            f(0),
            f(4),
            CallDispatch::Direct,
            false,
        );
        let _ = e.call(
            ThreadId::MAIN,
            s(5),
            f(4),
            f(5),
            CallDispatch::Direct,
            false,
        );
        let d = e.stats().degraded;
        assert!(d.active, "maxID cap 0 must force degraded mode");
        assert!(d.degraded_traps > 0, "post-exhaustion edges trap degraded");
        assert!(!d.trap_nodes.is_empty());
        let offline = import(&export_state(&e)).expect("imports");
        assert_eq!(offline.degraded(), &d, "degraded record round-trips");
    }

    #[test]
    fn superop_records_roundtrip() {
        let tracker = crate::Tracker::new();
        let main_fn = tracker.define_function("main");
        let callee = tracker.define_function("callee");
        let site = tracker.define_call_site();
        let th = tracker.register_thread(main_fn);
        // Warm the site so the window resolves and compiles.
        th.run_batch(&[
            crate::BatchOp::Call {
                site,
                target: callee,
            },
            crate::BatchOp::Ret,
        ])
        .expect("warm batch runs");
        let window = vec![
            WindowOp::Call {
                site,
                target: callee,
            },
            WindowOp::Ret,
        ];
        assert_eq!(tracker.install_superops(std::slice::from_ref(&window)), 1);
        let offline = import(&export_tracker_state(&tracker)).expect("imports");
        assert_eq!(offline.superops().len(), 1, "superop line round-trips");
        let rec = &offline.superops()[0];
        assert_eq!(rec.window, window);
        assert_eq!(rec.calls, 1);
    }

    #[test]
    fn malformed_superop_lines_are_rejected() {
        for bad in [
            "dacce-export v1\nsuperop 1 2 3\n",         // missing ccpeak
            "dacce-export v1\nsuperop 1 2 3 4\n",       // empty window
            "dacce-export v1\nsuperop 1 2 3 4 x\n",     // bad token
            "dacce-export v1\nsuperop 1 2 3 4 c:1\n",   // token missing target
            "dacce-export v1\nsuperop 1 2 3 4 c:a:b\n", // non-numeric
        ] {
            assert!(import(bad).is_err(), "must reject: {bad:?}");
        }
    }

    #[test]
    fn malformed_degraded_lines_are_rejected() {
        for bad in [
            "dacce-export v1\ndegraded 1 2 3 4 5 6 7\n",   // 7 fields
            "dacce-export v1\ndegraded 1 2 3 4 5 6 7 x\n", // bad counter
            "dacce-export v1\ndegradednode nope\n",        // bad node id
        ] {
            assert!(import(bad).is_err(), "must reject: {bad:?}");
        }
    }

    #[test]
    fn import_rejects_bad_header() {
        assert_eq!(import("nope\n").unwrap_err(), ImportError::BadHeader);
        assert_eq!(import("").unwrap_err(), ImportError::BadHeader);
    }

    #[test]
    fn import_reports_line_numbers() {
        let text = format!("{HEADER}\nbogus record\n");
        let err = import(&text).unwrap_err();
        if let ImportError::BadLine(n, what) = err {
            assert_eq!(n, 2);
            assert!(what.contains("bogus"));
        } else {
            panic!("unexpected {err:?}");
        }
    }

    #[test]
    fn import_rejects_records_outside_dict() {
        let text = format!("{HEADER}\nnode 1 1\n");
        assert!(matches!(
            import(&text).unwrap_err(),
            ImportError::BadLine(2, _)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ImportError::BadLine(3, "bad callee".into());
        assert!(e.to_string().contains("line 3"));
        assert!(ImportError::BadHeader.to_string().contains("header"));
    }
}
