//! The synchronisation shim every lock-free protocol in this crate (and
//! `dacce-obs`, `dacce-fleet`) routes through.
//!
//! Re-exports [`dacce_sync`]: with the `mc` feature off these names are
//! direct std / `parking_lot` re-exports (zero cost); with it on they are
//! hook-instrumented wrappers reporting each operation and its declared
//! [`Ordering`](dacce_sync::Ordering) to a registered
//! [`SyncHook`](dacce_sync::SyncHook). The [`protocol`](dacce_sync::protocol)
//! module names the orderings of every release/acquire pair — the same
//! constants the `dacce-mc` bounded protocol models check.

pub use dacce_sync::*;
