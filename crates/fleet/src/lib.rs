//! # dacce-fleet — a multi-tenant calling-context fleet
//!
//! Hosting thousands of independent [`Tracker`](dacce::Tracker) instances
//! — one per tenant service, plugin or sandbox — naively multiplies every
//! cost DACCE already paid once: each instance re-discovers the same call
//! graph trap by trap, re-encodes it on the same triggers, and keeps its
//! own copy of the dictionaries and dispatch tables. A fleet deduplicates
//! all of it.
//!
//! The [`Fleet`] registry is sharded (tenant lookup never takes a global
//! lock) and *content-addressed*: tenants registering the same
//! [`ProgramDef`] — recognised by an FNV-1a hash over the function/edge
//! definition stream — attach to one shared, refcounted
//! [`EncodingLineage`](dacce::EncodingLineage) instead of building their
//! own encoding. The first registrant *founds* the lineage (paying the
//! warm-start encode once); every later registrant adopts the founder's
//! state wholesale, so the Nth tenant starts with **zero cold-start
//! traps**. Re-encodings published by any attached tenant are adopted by
//! the rest ([`Fleet::poll`] / lazily on their next slow path), and a
//! tenant whose dynamic behaviour grows an edge the lineage does not have
//! *diverges* — copy-on-write — onto a private encoding without disturbing
//! its siblings.
//!
//! ```
//! use dacce_fleet::{DefEdge, Fleet, ProgramDef};
//!
//! let def = ProgramDef {
//!     functions: vec!["main".into(), "handler".into()],
//!     main: 0,
//!     call_sites: 1,
//!     edges: vec![DefEdge { caller: 0, callee: 1, site: 0, indirect: false }],
//!     tail_fns: vec![],
//!     extra_roots: vec![],
//! };
//! let fleet = Fleet::new();
//! let a = fleet.register("svc-a", &def); // founds the lineage
//! let b = fleet.register("svc-b", &def); // attaches: no traps ahead
//! assert_eq!(fleet.fleet_stats().lineages, 1);
//! # let _ = (a, b);
//! ```

pub mod program;
pub mod registry;

pub use program::{DefEdge, ProgramDef};
pub use registry::{Fleet, FleetStats, TenantId};
