//! Content-addressed program definitions.
//!
//! A [`ProgramDef`] is the portable description of one instrumented
//! program: its function names, call sites, static call edges and tail
//! sets, all by index. Two tenants handing the fleet byte-identical
//! definitions produce the same [`content_hash`](ProgramDef::content_hash)
//! and therefore share one encoding lineage. Because every tenant declares
//! the definition in the same deterministic order, the `FunctionId`s and
//! `CallSiteId`s a tenant's tracker allocates line up index-for-index with
//! every sibling's — a shared dictionary decodes any of their contexts.

use dacce::{SeedEdge, WarmStartSeed};
use dacce_callgraph::{CallSiteId, Dispatch, FunctionId};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, value: u64) -> u64 {
    fnv_bytes(h, &value.to_le_bytes())
}

/// One static call edge of a [`ProgramDef`], by function/site index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefEdge {
    /// Index of the calling function in [`ProgramDef::functions`].
    pub caller: usize,
    /// Index of the called function.
    pub callee: usize,
    /// Call-site index (`0..call_sites`).
    pub site: usize,
    /// Whether the site dispatches indirectly (function pointer, vtable).
    pub indirect: bool,
}

/// The definition stream of one program: what a tenant declares to its
/// tracker, in deterministic order. The fleet content-addresses lineages
/// by [`Self::content_hash`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramDef {
    /// Function names; index is the `FunctionId` the tracker allocates.
    pub functions: Vec<String>,
    /// Index of the entry function.
    pub main: usize,
    /// Number of call sites to allocate (`CallSiteId`s `0..call_sites`).
    pub call_sites: usize,
    /// Static call edges, seeded at founding time so no attached tenant
    /// ever traps on them.
    pub edges: Vec<DefEdge>,
    /// Indices of functions statically known to contain tail calls.
    pub tail_fns: Vec<usize>,
    /// Extra root functions (thread entry points) beyond `main`.
    pub extra_roots: Vec<usize>,
}

impl ProgramDef {
    /// FNV-1a content hash over the whole definition stream (names,
    /// entry, sites, edges, tail set, roots). Identical definitions —
    /// and only those — share an encoding lineage.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv_u64(h, self.functions.len() as u64);
        for name in &self.functions {
            h = fnv_u64(h, name.len() as u64);
            h = fnv_bytes(h, name.as_bytes());
        }
        h = fnv_u64(h, self.main as u64);
        h = fnv_u64(h, self.call_sites as u64);
        h = fnv_u64(h, self.edges.len() as u64);
        for e in &self.edges {
            h = fnv_u64(h, e.caller as u64);
            h = fnv_u64(h, e.callee as u64);
            h = fnv_u64(h, e.site as u64);
            h = fnv_u64(h, u64::from(e.indirect));
        }
        h = fnv_u64(h, self.tail_fns.len() as u64);
        for &t in &self.tail_fns {
            h = fnv_u64(h, t as u64);
        }
        h = fnv_u64(h, self.extra_roots.len() as u64);
        for &r in &self.extra_roots {
            h = fnv_u64(h, r as u64);
        }
        h
    }

    /// Checks that every index is in range.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range index.
    pub fn validate(&self) -> Result<(), String> {
        let nf = self.functions.len();
        if self.main >= nf {
            return Err(format!(
                "main index {} out of range ({nf} functions)",
                self.main
            ));
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.caller >= nf || e.callee >= nf {
                return Err(format!("edge {i} references function out of range"));
            }
            if e.site >= self.call_sites {
                return Err(format!(
                    "edge {i} site {} out of range ({} sites)",
                    e.site, self.call_sites
                ));
            }
        }
        if let Some(&t) = self.tail_fns.iter().find(|&&t| t >= nf) {
            return Err(format!("tail function index {t} out of range"));
        }
        if let Some(&r) = self.extra_roots.iter().find(|&&r| r >= nf) {
            return Err(format!("root index {r} out of range"));
        }
        Ok(())
    }

    /// The `FunctionId` a tenant's tracker allocates for function index
    /// `i` (declaration order is deterministic).
    #[must_use]
    pub fn function(&self, i: usize) -> FunctionId {
        debug_assert!(i < self.functions.len());
        FunctionId::new(u32::try_from(i).expect("function index fits in u32"))
    }

    /// The `CallSiteId` for call-site index `i`.
    #[must_use]
    pub fn site(&self, i: usize) -> CallSiteId {
        debug_assert!(i < self.call_sites);
        CallSiteId::new(u32::try_from(i).expect("site index fits in u32"))
    }

    /// The `FunctionId` of the entry function.
    #[must_use]
    pub fn main_fn(&self) -> FunctionId {
        self.function(self.main)
    }

    /// The warm-start seed the founding tenant loads: every static edge
    /// pre-encoded, roots and tail sets registered.
    #[must_use]
    pub fn seed(&self) -> WarmStartSeed {
        let mut roots = vec![self.main_fn()];
        roots.extend(self.extra_roots.iter().map(|&r| self.function(r)));
        WarmStartSeed {
            roots,
            edges: self
                .edges
                .iter()
                .map(|e| SeedEdge {
                    caller: self.function(e.caller),
                    callee: self.function(e.callee),
                    site: self.site(e.site),
                    dispatch: if e.indirect {
                        Dispatch::Indirect
                    } else {
                        Dispatch::Direct
                    },
                })
                .collect(),
            tail_fns: self.tail_fns.iter().map(|&t| self.function(t)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def() -> ProgramDef {
        ProgramDef {
            functions: vec!["main".into(), "a".into(), "b".into()],
            main: 0,
            call_sites: 2,
            edges: vec![
                DefEdge {
                    caller: 0,
                    callee: 1,
                    site: 0,
                    indirect: false,
                },
                DefEdge {
                    caller: 1,
                    callee: 2,
                    site: 1,
                    indirect: true,
                },
            ],
            tail_fns: vec![2],
            extra_roots: vec![],
        }
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let d = def();
        assert_eq!(d.content_hash(), d.clone().content_hash());
        let mut renamed = def();
        renamed.functions[2] = "c".into();
        assert_ne!(d.content_hash(), renamed.content_hash());
        let mut rewired = def();
        rewired.edges[1].indirect = false;
        assert_ne!(d.content_hash(), rewired.content_hash());
    }

    #[test]
    fn validate_catches_out_of_range_indices() {
        assert!(def().validate().is_ok());
        let mut bad = def();
        bad.edges.push(DefEdge {
            caller: 9,
            callee: 0,
            site: 0,
            indirect: false,
        });
        assert!(bad.validate().is_err());
        let mut bad = def();
        bad.edges[0].site = 7;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn seed_mirrors_the_definition() {
        let d = def();
        let seed = d.seed();
        assert_eq!(seed.roots, vec![d.main_fn()]);
        assert_eq!(seed.edges.len(), 2);
        assert_eq!(seed.edges[1].dispatch, Dispatch::Indirect);
        assert_eq!(seed.tail_fns, vec![d.function(2)]);
    }
}
