//! The sharded tenant registry.
//!
//! [`Fleet`] maps stable [`TenantId`]s to tracker instances across a fixed
//! set of shards, so tenant lookup, registration and eviction contend only
//! per shard. The lineage table — content hash to
//! [`EncodingLineage`](dacce::EncodingLineage) — is the single shared
//! structure: registration consults it to decide between *founding* a new
//! lineage (first tenant of a program: pays the warm-start encode) and
//! *attaching* to an existing one (every later tenant: adopts the shared
//! state wholesale, zero cold-start traps). Eviction detaches from the
//! lineage and drops it when the last tenant leaves; attach/detach happen
//! under the lineage-table lock so a racing register can never attach to a
//! lineage an evict is about to free.

use dacce::sync::{AtomicU64, Mutex, Ordering};
use dacce::{DacceConfig, EncodingLineage, Tracker};
use std::collections::HashMap;
use std::fmt;

use crate::program::ProgramDef;

/// Shard count; a power of two so the shard index is a mask.
const SHARDS: usize = 16;

/// A stable fleet-wide tenant identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u64);

impl TenantId {
    /// The raw id value.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

#[derive(Debug)]
struct Tenant {
    label: String,
    hash: u64,
    tracker: Tracker,
}

/// Aggregate registry statistics (see [`Fleet::fleet_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Tenants currently registered.
    pub tenants: usize,
    /// Distinct encoding lineages currently alive.
    pub lineages: usize,
    /// Registrations that founded a new lineage (paid the encode).
    pub founded: u64,
    /// Registrations that attached to an existing lineage (zero-trap).
    pub attached: u64,
    /// Tenants currently diverged (copy-on-write) off their lineage.
    pub diverged: usize,
    /// Lineage generations adopted across all tenants.
    pub adoptions: u64,
    /// Lineage generations published across all tenants.
    pub publishes: u64,
}

/// A sharded, content-addressed registry of tracker tenants.
#[derive(Debug)]
pub struct Fleet {
    config: DacceConfig,
    shards: Vec<Mutex<HashMap<u64, Tenant>>>,
    /// Content hash -> shared lineage. Attach/detach refcounting happens
    /// under this lock (see module docs).
    lineages: Mutex<HashMap<u64, EncodingLineage>>,
    next_tenant: AtomicU64,
    founded: AtomicU64,
    attached: AtomicU64,
}

impl Default for Fleet {
    fn default() -> Self {
        Self::new()
    }
}

impl Fleet {
    /// A fleet whose tenants run the default engine configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(DacceConfig::default())
    }

    /// A fleet whose tenants run `config` (fault plans included: each
    /// tenant arms its own copy, so injected degradation stays
    /// per-tenant).
    #[must_use]
    pub fn with_config(config: DacceConfig) -> Self {
        Fleet {
            config,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            lineages: Mutex::new(HashMap::new()),
            next_tenant: AtomicU64::new(0),
            founded: AtomicU64::new(0),
            attached: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: TenantId) -> &Mutex<HashMap<u64, Tenant>> {
        &self.shards[(id.0 as usize) & (SHARDS - 1)]
    }

    /// Registers a tenant running `def` and returns its id. The first
    /// tenant of a definition founds the lineage (building the seeded
    /// encoding once); every later tenant attaches to it and starts with
    /// zero cold-start traps.
    ///
    /// # Panics
    ///
    /// Panics if `def` fails [`ProgramDef::validate`].
    pub fn register(&self, label: &str, def: &ProgramDef) -> TenantId {
        def.validate().expect("program definition is well-formed");
        let hash = def.content_hash();
        let tracker = {
            let mut lineages = self.lineages.lock();
            if let Some(lineage) = lineages.get(&hash) {
                lineage.attach();
                self.attached.fetch_add(1, Ordering::Relaxed);
                let tracker = Tracker::with_lineage(self.config.clone(), lineage);
                declare(&tracker, def);
                tracker
            } else {
                // Founding serialises on the lineage table: the encode runs
                // under the lock so a racing twin attaches instead of
                // founding a duplicate.
                let tracker = Tracker::with_config(self.config.clone());
                declare(&tracker, def);
                let _ = tracker.warm_start(def.main_fn(), &def.seed());
                let lineage = tracker.found_lineage(hash);
                lineage.attach();
                lineages.insert(hash, lineage);
                self.founded.fetch_add(1, Ordering::Relaxed);
                tracker
            }
        };
        let id = TenantId(self.next_tenant.fetch_add(1, Ordering::Relaxed));
        self.shard(id).lock().insert(
            id.0,
            Tenant {
                label: label.to_string(),
                hash,
                tracker,
            },
        );
        id
    }

    /// The tenant's tracker (a cheap clone of the shared handle).
    #[must_use]
    pub fn tracker(&self, id: TenantId) -> Option<Tracker> {
        self.shard(id).lock().get(&id.0).map(|t| t.tracker.clone())
    }

    /// The tenant's registration label.
    #[must_use]
    pub fn label(&self, id: TenantId) -> Option<String> {
        self.shard(id).lock().get(&id.0).map(|t| t.label.clone())
    }

    /// Evicts a tenant, detaching it from its lineage; the lineage is
    /// dropped when its last tenant leaves. Returns whether the tenant
    /// existed.
    pub fn evict(&self, id: TenantId) -> bool {
        let Some(tenant) = self.shard(id).lock().remove(&id.0) else {
            return false;
        };
        if let Some(lineage) = tenant.tracker.lineage() {
            let mut lineages = self.lineages.lock();
            if lineage.detach() == 0 {
                lineages.remove(&tenant.hash);
            }
        }
        true
    }

    /// Number of registered tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the fleet has no tenants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of every tenant: id, label and tracker handle (cheap
    /// clones; used by observability pumps and maintenance sweeps).
    #[must_use]
    pub fn tenants(&self) -> Vec<(TenantId, String, Tracker)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (&raw, t) in shard.lock().iter() {
                out.push((TenantId(raw), t.label.clone(), t.tracker.clone()));
            }
        }
        out.sort_by_key(|(id, _, _)| *id);
        out
    }

    /// Maintenance sweep: every attached, non-diverged tenant adopts any
    /// newer generation its lineage published. Returns how many tenants
    /// adopted. (Tenants also adopt lazily on their own slow paths; the
    /// sweep just bounds the staleness.)
    pub fn poll(&self) -> usize {
        self.tenants()
            .iter()
            .filter(|(_, _, tracker)| tracker.poll_lineage())
            .count()
    }

    /// Forces a re-encoding on one tenant (see
    /// [`Tracker::request_reencode`]); on a shared lineage the result is
    /// published for — and adopted by — every sibling. The background
    /// maintenance analogue of the §4 triggers.
    pub fn reencode(&self, id: TenantId) -> bool {
        self.tracker(id).is_some_and(|t| t.request_reencode())
    }

    /// Aggregate fleet statistics. Drains each tenant's tracker stats, so
    /// the call is heavier than a counter read — intended for dashboards
    /// and tests, not per-op paths.
    #[must_use]
    pub fn fleet_stats(&self) -> FleetStats {
        let tenants = self.tenants();
        let mut out = FleetStats {
            tenants: tenants.len(),
            lineages: self.lineages.lock().len(),
            founded: self.founded.load(Ordering::Relaxed),
            attached: self.attached.load(Ordering::Relaxed),
            ..FleetStats::default()
        };
        for (_, _, tracker) in &tenants {
            let stats = tracker.stats();
            out.adoptions += stats.lineage_adoptions;
            out.publishes += stats.lineage_publishes;
            if tracker.diverged() {
                out.diverged += 1;
            }
        }
        out
    }
}

/// Declares the definition on a fresh tracker in deterministic order, so
/// the allocated ids line up with every sibling tenant's.
fn declare(tracker: &Tracker, def: &ProgramDef) {
    for name in &def.functions {
        let _ = tracker.define_function(name);
    }
    for _ in 0..def.call_sites {
        let _ = tracker.define_call_site();
    }
}
