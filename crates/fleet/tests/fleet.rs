//! Fleet registry behaviour: content-addressed sharing, zero-trap
//! attachment, shared-lineage re-encoding, copy-on-write divergence,
//! eviction, and per-tenant fault containment.

use dacce::{DacceConfig, FaultPlan, Tracker};
use dacce_fleet::{DefEdge, Fleet, ProgramDef};

/// A small fan-out program: `main` calls `k` leaves through distinct
/// direct sites, leaf 1 calls a shared helper.
fn fan_def(k: usize) -> ProgramDef {
    let mut functions = vec!["main".to_string()];
    for i in 1..=k {
        functions.push(format!("leaf{i}"));
    }
    functions.push("helper".to_string());
    let helper = k + 1;
    let mut edges: Vec<DefEdge> = (1..=k)
        .map(|i| DefEdge {
            caller: 0,
            callee: i,
            site: i - 1,
            indirect: false,
        })
        .collect();
    edges.push(DefEdge {
        caller: 1,
        callee: helper,
        site: k,
        indirect: false,
    });
    ProgramDef {
        functions,
        main: 0,
        call_sites: k + 1,
        edges,
        tail_fns: vec![],
        extra_roots: vec![],
    }
}

/// Drives every definition edge once from a fresh thread.
fn drive_all_edges(tracker: &Tracker, def: &ProgramDef) {
    let thread = tracker.register_thread(def.main_fn());
    for i in 1..def.functions.len() - 1 {
        let guard = thread.call(def.site(i - 1), def.function(i));
        if i == 1 {
            let inner = thread.call(
                def.site(def.call_sites - 1),
                def.function(def.functions.len() - 1),
            );
            drop(inner);
        }
        drop(guard);
    }
}

#[test]
fn nth_tenant_attaches_with_zero_cold_start_traps() {
    let def = fan_def(6);
    let fleet = Fleet::new();
    let founder = fleet.register("founder", &def);
    drive_all_edges(&fleet.tracker(founder).unwrap(), &def);
    assert_eq!(
        fleet.tracker(founder).unwrap().stats().traps,
        0,
        "the founder is warm-started; seeded edges never trap"
    );

    for n in 0..20 {
        let id = fleet.register(&format!("svc-{n}"), &def);
        let tracker = fleet.tracker(id).unwrap();
        drive_all_edges(&tracker, &def);
        assert_eq!(tracker.stats().traps, 0, "tenant {n} must not trap");
        tracker.check_invariants().unwrap();
    }

    let stats = fleet.fleet_stats();
    assert_eq!(stats.tenants, 21);
    assert_eq!(stats.lineages, 1, "all tenants share one lineage");
    assert_eq!(stats.founded, 1);
    assert_eq!(stats.attached, 20);
    assert_eq!(stats.diverged, 0);
}

#[test]
fn distinct_definitions_get_distinct_lineages() {
    let fleet = Fleet::new();
    fleet.register("a", &fan_def(3));
    fleet.register("b", &fan_def(3));
    fleet.register("c", &fan_def(5));
    let stats = fleet.fleet_stats();
    assert_eq!(stats.lineages, 2);
    assert_eq!(stats.founded, 2);
    assert_eq!(stats.attached, 1);
}

#[test]
fn one_reencode_serves_every_attached_tenant() {
    let def = fan_def(4);
    let fleet = Fleet::new();
    let founder = fleet.register("founder", &def);
    let siblings: Vec<_> = (0..5)
        .map(|n| fleet.register(&format!("svc-{n}"), &def))
        .collect();

    // Drive the founder, then force a maintenance re-encode: the new
    // generation is published into the lineage.
    drive_all_edges(&fleet.tracker(founder).unwrap(), &def);
    assert!(fleet.reencode(founder), "forced re-encode must apply");

    // The sweep adopts it everywhere; a second sweep finds nothing new.
    assert_eq!(fleet.poll(), siblings.len());
    assert_eq!(fleet.poll(), 0);

    let stats = fleet.fleet_stats();
    assert_eq!(stats.publishes, 1, "exactly one tenant paid the encode");
    assert_eq!(stats.adoptions, siblings.len() as u64);

    // Every sibling keeps decoding exactly on the adopted generation.
    for id in siblings {
        let tracker = fleet.tracker(id).unwrap();
        let thread = tracker.register_thread(def.main_fn());
        let _g = thread.call(def.site(1), def.function(2));
        let path = tracker.decode(&thread.sample()).unwrap();
        assert_eq!(tracker.format_path(&path), "main -> leaf2");
        assert_eq!(tracker.stats().traps, 0);
        tracker.check_invariants().unwrap();
    }
}

#[test]
fn divergence_is_copy_on_write_and_private() {
    let def = fan_def(3);
    let fleet = Fleet::new();
    let a = fleet.register("steady", &def);
    let b = fleet.register("wanderer", &def);

    // Tenant B grows an edge the definition does not have: a private
    // function behind a private indirect site. That traps, diverges B
    // off the lineage, and must not disturb A.
    let tb = fleet.tracker(b).unwrap();
    let priv_fn = tb.define_function("private");
    let priv_site = tb.define_call_site();
    let thread_b = tb.register_thread(def.main_fn());
    {
        let _leaf = thread_b.call(def.site(0), def.function(1));
        let _private = thread_b.call_indirect(priv_site, priv_fn);
        let path = tb.decode(&thread_b.sample()).unwrap();
        assert_eq!(tb.format_path(&path), "main -> leaf1 -> private");
    }
    assert!(tb.diverged());
    assert_eq!(tb.stats().lineage_divergences, 1);
    tb.check_invariants().unwrap();

    let ta = fleet.tracker(a).unwrap();
    assert!(!ta.diverged());
    drive_all_edges(&ta, &def);
    assert_eq!(ta.stats().traps, 0, "sibling keeps its zero-trap encoding");
    ta.check_invariants().unwrap();

    // A diverged tenant's re-encodes stay local: the shared lineage sees
    // no publication, and the steady tenant has nothing to adopt.
    tb.request_reencode();
    assert!(!ta.poll_lineage());
    assert_eq!(fleet.fleet_stats().diverged, 1);
    assert_eq!(fleet.fleet_stats().publishes, 0);
}

#[test]
fn eviction_drops_the_lineage_with_its_last_tenant() {
    let def = fan_def(2);
    let fleet = Fleet::new();
    let ids: Vec<_> = (0..3)
        .map(|n| fleet.register(&format!("svc-{n}"), &def))
        .collect();
    assert_eq!(fleet.fleet_stats().lineages, 1);

    assert!(fleet.evict(ids[0]));
    assert!(fleet.evict(ids[1]));
    assert_eq!(fleet.fleet_stats().lineages, 1, "one tenant still attached");
    assert!(fleet.evict(ids[2]));
    assert!(!fleet.evict(ids[2]), "double evict is a no-op");
    let stats = fleet.fleet_stats();
    assert_eq!(stats.tenants, 0);
    assert_eq!(stats.lineages, 0, "last eviction frees the lineage");

    // Re-registering founds a fresh lineage.
    fleet.register("svc-again", &def);
    let stats = fleet.fleet_stats();
    assert_eq!(stats.lineages, 1);
    assert_eq!(stats.founded, 2);
}

#[test]
fn repeated_warm_start_on_an_attached_tenant_is_idempotent() {
    let def = fan_def(3);
    let fleet = Fleet::new();
    fleet.register("founder", &def);
    let id = fleet.register("twin", &def);
    let tracker = fleet.tracker(id).unwrap();

    // The attached tenant adopted the founder's warm-started state; an
    // identical warm start must be recognised and return the cached
    // report instead of double-seeding (or tripping the "must precede
    // registration" guard).
    let r1 = tracker.warm_start(def.main_fn(), &def.seed());
    let r2 = tracker.warm_start(def.main_fn(), &def.seed());
    assert_eq!(r1.seeded_edges, def.edges.len());
    assert_eq!(r1.seeded_edges, r2.seeded_edges);
    assert_eq!(r1.max_id, r2.max_id);

    drive_all_edges(&tracker, &def);
    assert_eq!(tracker.stats().traps, 0);
    tracker.check_invariants().unwrap();
}

#[test]
fn fault_degradation_stays_per_tenant() {
    // Arm an id-space cap low enough that a diverging tenant's re-encode
    // exhausts it. Only the tenant that actually grows its graph and
    // re-encodes degrades; its seven siblings — same config, same armed
    // plan — stay clean, and the shared lineage never sees the
    // overflowed generation.
    let plan = FaultPlan {
        max_id_cap: Some(24),
        ..FaultPlan::default()
    };
    let def = fan_def(3);
    let fleet = Fleet::with_config(DacceConfig::with_fault(plan));
    let ids: Vec<_> = (0..8)
        .map(|n| fleet.register(&format!("svc-{n}"), &def))
        .collect();

    // Tenant 0 wanders: a private sink gains a new caller per iteration,
    // so its calling-context count — and with it `maxID` — grows past the
    // cap and the forced re-encode hits the id-exhaustion path.
    let t0 = fleet.tracker(ids[0]).unwrap();
    let sink = t0.define_function("sink");
    let thread = t0.register_thread(def.main_fn());
    for i in 0..30 {
        let f = t0.define_function(&format!("wild{i}"));
        let s_wild = t0.define_call_site();
        let s_sink = t0.define_call_site();
        let wild = thread.call_indirect(s_wild, f);
        drop(thread.call(s_sink, sink));
        drop(wild);
        t0.request_reencode();
    }
    assert!(t0.diverged());
    let degraded = t0.stats();
    assert!(
        degraded.overflow_aborts > 0 || degraded.degraded.any(),
        "the capped tenant must hit its overflow path"
    );

    for &id in &ids[1..] {
        let tracker = fleet.tracker(id).unwrap();
        drive_all_edges(&tracker, &def);
        let stats = tracker.stats();
        assert_eq!(stats.traps, 0, "sibling {id} must stay zero-trap");
        assert!(!stats.degraded.any(), "sibling {id} must not degrade");
        assert_eq!(stats.lineage_adoptions, 0, "nothing was published to adopt");
        tracker.check_invariants().unwrap();
    }
    assert_eq!(fleet.fleet_stats().publishes, 0);
}
