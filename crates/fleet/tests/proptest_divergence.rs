//! Property test: copy-on-write divergence in a shared-lineage fleet.
//!
//! For arbitrary layered programs and arbitrary tenant behaviour — some
//! tenants stay on the definition, some grow random private indirect
//! edges — every tenant's sampled context decodes to exactly the path it
//! walked, before and after a shared-lineage re-encode, and every
//! tracker's invariants hold. Divergence must be observed precisely on
//! the tenants that patched off-definition, and only there.

use proptest::prelude::*;

use dacce::Tracker;
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_fleet::{DefEdge, Fleet, ProgramDef};

/// A layered program: `main` is layer 0; every node of layer `l` calls
/// every node of layer `l+1` through its own site.
fn layered_def(widths: &[usize]) -> ProgramDef {
    let mut functions = vec!["main".to_string()];
    let mut layers: Vec<Vec<usize>> = vec![vec![0]];
    for (l, &w) in widths.iter().enumerate() {
        let mut layer = Vec::new();
        for j in 0..w {
            layer.push(functions.len());
            functions.push(format!("f{l}_{j}"));
        }
        layers.push(layer);
    }
    let mut edges = Vec::new();
    let mut site = 0usize;
    for pair in layers.windows(2) {
        for &caller in &pair[0] {
            for &callee in &pair[1] {
                edges.push(DefEdge {
                    caller,
                    callee,
                    site,
                    indirect: false,
                });
                site += 1;
            }
        }
    }
    ProgramDef {
        functions,
        main: 0,
        call_sites: site,
        edges,
        tail_fns: vec![],
        extra_roots: vec![],
    }
}

/// The site wired from `caller` to `callee` in a [`layered_def`].
fn def_site(def: &ProgramDef, caller: usize, callee: usize) -> usize {
    def.edges
        .iter()
        .find(|e| e.caller == caller && e.callee == callee)
        .map(|e| e.site)
        .expect("layered definitions are fully wired")
}

/// One tenant's behaviour: which callee it picks at every layer on each
/// of its two walks, and whether (and how deep) it patches a private
/// indirect edge off-definition on the first walk.
#[derive(Clone, Debug)]
struct TenantPlan {
    walk_a: Vec<u8>,
    walk_b: Vec<u8>,
    diverges: bool,
    diverge_depth: u8,
}

fn tenant_strategy(depth: usize) -> impl Strategy<Value = TenantPlan> {
    (
        prop::collection::vec(0u8..8, depth),
        prop::collection::vec(0u8..8, depth),
        prop::bool::weighted(0.4),
        0u8..depth.max(1) as u8,
    )
        .prop_map(|(walk_a, walk_b, diverges, diverge_depth)| TenantPlan {
            walk_a,
            walk_b,
            diverges,
            diverge_depth,
        })
}

/// Walks the definition per `choices`, optionally patching a private
/// indirect call at `diverge_at`, and checks the sampled context decodes
/// to exactly the walked path. Returns whether the walk went
/// off-definition.
fn walk_and_check(
    tracker: &Tracker,
    def: &ProgramDef,
    widths: &[usize],
    choices: &[u8],
    diverge_at: Option<u8>,
    private: Option<(CallSiteId, FunctionId, &str)>,
) -> bool {
    let thread = tracker.register_thread(def.main_fn());
    let mut guards = Vec::new();
    let mut expected = vec!["main".to_string()];
    let mut caller = 0usize; // function index of the current frame
    let mut offdef = false;
    let mut fn_base = 1usize; // index of the first function of the layer
    for (l, &w) in widths.iter().enumerate() {
        let pick = choices[l] as usize % w;
        let callee = fn_base + pick;
        let site = def_site(def, caller, callee);
        guards.push(thread.call(def.site(site), def.function(callee)));
        expected.push(def.functions[callee].clone());
        caller = callee;
        fn_base += w;
        if diverge_at == Some(l as u8) {
            let (psite, pfn, pname) = private.expect("divergent plans carry a private edge");
            guards.push(thread.call_indirect(psite, pfn));
            expected.push(pname.to_string());
            offdef = true;
            break;
        }
    }
    let path = tracker
        .decode(&thread.sample())
        .expect("walked context decodes");
    assert_eq!(tracker.format_path(&path), expected.join(" -> "));
    // Unwind innermost-first.
    while let Some(g) = guards.pop() {
        drop(g);
    }
    offdef
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn divergent_tenants_split_off_exactly_and_decode_exactly(
        widths in prop::collection::vec(1usize..3, 1..4),
        plans in prop::collection::vec(tenant_strategy(4), 2..6),
    ) {
        let def = layered_def(&widths);
        let fleet = Fleet::new();
        let tenants: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(i, _)| fleet.register(&format!("svc-{i}"), &def))
            .collect();

        // Tenant 0 is the maintenance tenant: it must stay on the
        // definition so its forced re-encode publishes into the lineage.
        let mut expect_diverged = vec![false; plans.len()];
        for (i, (plan, id)) in plans.iter().zip(&tenants).enumerate() {
            let tracker = fleet.tracker(*id).unwrap();
            let diverge_at = (i != 0 && plan.diverges)
                .then_some(plan.diverge_depth % widths.len() as u8);
            let private = diverge_at.map(|_| {
                let name = format!("private{i}");
                let pfn = tracker.define_function(&name);
                let psite = tracker.define_call_site();
                (psite, pfn, name)
            });
            expect_diverged[i] = walk_and_check(
                &tracker,
                &def,
                &widths,
                &plan.walk_a,
                diverge_at,
                private.as_ref().map(|(s, f, n)| (*s, *f, n.as_str())),
            );
            prop_assert_eq!(tracker.diverged(), expect_diverged[i]);
        }

        // One shared-lineage re-encode from the steady tenant; every
        // attached non-diverged tenant adopts it (eagerly via the sweep).
        prop_assert!(fleet.reencode(tenants[0]));
        let steady = expect_diverged.iter().filter(|d| !**d).count();
        prop_assert_eq!(fleet.poll(), steady - 1);

        // Every tenant — adopted, publishing or diverged — still decodes
        // its walks exactly and passes a full audit.
        for (i, (plan, id)) in plans.iter().zip(&tenants).enumerate() {
            let tracker = fleet.tracker(*id).unwrap();
            walk_and_check(&tracker, &def, &widths, &plan.walk_b, None, None);
            prop_assert_eq!(tracker.diverged(), expect_diverged[i]);
            tracker.check_invariants().unwrap();
        }
        let stats = fleet.fleet_stats();
        prop_assert_eq!(stats.lineages, 1);
        prop_assert_eq!(stats.diverged, expect_diverged.iter().filter(|d| **d).count());
        prop_assert_eq!(stats.publishes, 1);
    }
}
