//! Regenerates **Table 1** of the paper: per-benchmark characteristics of
//! PCCE and DACCE.
//!
//! Columns follow the paper: call-graph nodes and edges, the maximum
//! context id (`overflow` when PCCE's full static encoding exceeds 64
//! bits), ccStack operation density, mean ccStack depth at samples, the
//! number of re-encodings (`gTS`) with their total cost, and the call
//! density ("calls/s" analog: calls per million base-work units).
//!
//! ```text
//! cargo run -p dacce-bench --release --bin table1 [-- --scale 1.0]
//! ```

use dacce_bench::Options;
use dacce_metrics::{sci, Table};
use dacce_workloads::{all_benchmarks, run_benchmark, DriverConfig};

fn main() {
    let opts = Options::from_args();
    let cfg = DriverConfig {
        scale: opts.scale,
        ..DriverConfig::default()
    };

    let mut table = Table::new([
        "benchmark",
        "P.nodes",
        "P.edges",
        "P.maxID",
        "P.cc/M",
        "P.depth",
        "D.nodes",
        "D.edges",
        "D.maxID",
        "D.cc/M",
        "D.depth",
        "gTS",
        "costs",
        "calls/M",
    ]);

    let mut all_valid = true;
    for spec in opts.select(all_benchmarks()) {
        let out = run_benchmark(&spec, &cfg);
        if !out.fully_validated() {
            all_valid = false;
            eprintln!(
                "WARNING: {} failed validation: dacce {:?} pcce {:?}",
                out.name, out.dacce_report.mismatch_examples, out.pcce_report.mismatch_examples
            );
        }
        let (pcce_cc, dacce_cc) = out.ccstack_density();
        table.row([
            out.name.to_string(),
            out.pcce_stats.nodes.to_string(),
            out.pcce_stats.edges.to_string(),
            sci(out.pcce_stats.max_num_cc, out.pcce_stats.overflowed),
            format!("{pcce_cc:.0}"),
            format!("{:.2}", out.pcce_stats.mean_cc_depth()),
            out.dacce_graph.0.to_string(),
            out.dacce_graph.1.to_string(),
            sci(u128::from(out.dacce_stats.max_max_id), false),
            format!("{dacce_cc:.0}"),
            format!("{:.2}", out.dacce_stats.mean_cc_depth()),
            out.dacce_stats.reencodes.to_string(),
            out.dacce_stats.reencode_cost.to_string(),
            format!("{:.0}", out.call_density()),
        ]);
        eprintln!("done: {}", out.name);
    }

    println!("\nTable 1: Characteristics of SPEC CPU2006 and PARSEC 2.1 analogs");
    println!("(cc/M = ccStack ops per million work units; calls/M analog of calls/s)\n");
    println!("{}", table.render());
    let path = opts.write_csv("table1.csv", &table.to_csv());
    println!("CSV written to {}", path.display());
    if !all_valid {
        eprintln!("NOTE: some benchmarks failed sample validation (see warnings)");
        std::process::exit(1);
    }
}
