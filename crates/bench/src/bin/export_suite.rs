//! Exports DACCE engine state for every workload-suite benchmark.
//!
//! Each benchmark runs cold under DACCE with the sample log retained; the
//! final engine state (decode dictionaries, discovered graph, site owners)
//! plus every sampled context is written as one `dacce-export v1` file per
//! benchmark. These artifacts feed `dacce-lint`, which re-verifies the
//! encoding invariants offline — the CI `lint-encodings` job runs exactly
//! this pipeline.
//!
//! ```text
//! cargo run -p dacce-bench --release --bin export_suite -- \
//!     --scale 0.05 --out target/exports
//! cargo run -p dacce-analyze --release --bin dacce-lint -- \
//!     target/exports/*.export
//! ```

use dacce::{export_samples, export_state};
use dacce_bench::Options;
use dacce_workloads::{all_benchmarks, run_dacce_runtime, DriverConfig};

fn main() {
    let opts = Options::from_args();
    let specs = opts.select(all_benchmarks());
    std::fs::create_dir_all(&opts.out).expect("create output dir");

    for spec in &specs {
        let cfg = DriverConfig {
            scale: opts.scale,
            keep_sample_log: true,
            ..DriverConfig::default()
        };
        let (report, rt) = run_dacce_runtime(spec, &cfg);
        let engine = rt.engine();
        let mut text = export_state(engine);
        text.push_str(&export_samples(engine.sample_log().iter()));
        let path = opts.out.join(format!("{}.export", spec.name));
        std::fs::write(&path, &text).expect("write export");
        println!(
            "{}: {} calls, {} dicts, {} samples -> {}",
            spec.name,
            report.calls,
            engine.dicts().len(),
            engine.sample_log().len(),
            path.display()
        );
    }
    println!(
        "exported {} benchmark(s) to {}",
        specs.len(),
        opts.out.display()
    );
}
