//! Related-work comparison (§7 of the paper): DACCE and PCCE against
//! stack walking, calling-context trees, and probabilistic calling
//! contexts, on a few representative benchmarks.
//!
//! The qualitative relations to reproduce: per-sample stack walking is
//! essentially free at low sample rates but walking at every event
//! (Valgrind regime) is prohibitive; CCT maintenance costs on every call
//! dwarf encoding approaches; PCC is the cheapest of all but cannot be
//! decoded (and can collide); inferred `(function, depth)` identifiers are
//! free but ambiguous.
//!
//! ```text
//! cargo run -p dacce-bench --release --bin related_work [-- --scale 1.0]
//! ```

use dacce_baselines::{CctRuntime, InferredRuntime, PccRuntime, StackWalkRuntime};
use dacce_bench::Options;
use dacce_metrics::{percent, Table};
use dacce_pcce::{PcceRuntime, ProfilingRuntime};
use dacce_program::CostModel;
use dacce_workloads::{all_benchmarks, run_with, DriverConfig};

const SELECTED: [&str; 4] = ["458.sjeng", "464.h264ref", "471.omnetpp", "445.gobmk"];

fn main() {
    let opts = Options::from_args();
    let cfg = DriverConfig {
        scale: opts.scale,
        ..DriverConfig::default()
    };

    let mut table = Table::new([
        "benchmark",
        "dacce",
        "pcce",
        "cct",
        "walk(sampled)",
        "walk(valgrind)",
        "pcc",
        "pcc collisions",
        "cct contexts",
        "inferred ambig.",
    ]);

    for name in SELECTED {
        let spec = all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .expect("benchmark exists");

        let mut dacce = dacce::DacceRuntime::with_defaults();
        let dacce_oh = run_with(&spec, &cfg, &mut dacce).warm_overhead();

        let mut profiler = ProfilingRuntime::new();
        let _ = run_with(&spec, &cfg, &mut profiler);
        let mut pcce = PcceRuntime::new(profiler.into_data(), CostModel::default());
        let pcce_oh = run_with(&spec, &cfg, &mut pcce).warm_overhead();

        let mut cct = CctRuntime::new(CostModel::default());
        let cct_oh = run_with(&spec, &cfg, &mut cct).warm_overhead();

        let mut walk = StackWalkRuntime::new(CostModel::default());
        let walk_oh = run_with(&spec, &cfg, &mut walk).warm_overhead();

        let mut walk_vg = StackWalkRuntime::valgrind_mode(CostModel::default());
        let walk_vg_oh = run_with(&spec, &cfg, &mut walk_vg).warm_overhead();

        let mut pcc = PccRuntime::new(CostModel::default());
        let pcc_oh = run_with(&spec, &cfg, &mut pcc).warm_overhead();
        let pcc_stats = pcc.stats();

        let mut inferred = InferredRuntime::new(CostModel::default());
        let _ = run_with(&spec, &cfg, &mut inferred);
        let inf = inferred.stats();

        table.row([
            name.to_string(),
            percent(dacce_oh),
            percent(pcce_oh),
            percent(cct_oh),
            percent(walk_oh),
            percent(walk_vg_oh),
            percent(pcc_oh),
            format!("{}/{}", pcc_stats.collisions, pcc_stats.samples),
            cct.distinct_contexts().to_string(),
            format!("{}/{}", inf.ambiguous_identifiers, inf.identifiers),
        ]);
        eprintln!("done: {name}");
    }

    println!("\nRelated work (§7): overhead of context identification approaches\n");
    println!("{}", table.render());
    let path = opts.write_csv("related_work.csv", &table.to_csv());
    println!("CSV written to {}", path.display());
}
