//! Warm-start ablation: cold engine vs. engine pre-seeded with the static
//! call graph (`dacce-analyze`'s `warm_seed`).
//!
//! A cold DACCE engine traps on the first invocation of every edge (§3.1);
//! the static graph is a sound over-approximation of everything the engine
//! can discover, so seeding it ahead of time removes those traps — at the
//! price of encoding cold code and points-to false positives, which can
//! inflate ids (and, on the overflow-prone analogs, force the seeder to
//! prune back to the dynamic core). This binary measures that trade per
//! benchmark: trap counts, re-encode counts, seed size and pruning, and
//! final id width.
//!
//! ```text
//! cargo run -p dacce-bench --release --bin warmstart [-- --scale 1.0]
//! ```

use dacce_bench::Options;
use dacce_metrics::Table;
use dacce_workloads::{all_benchmarks, run_dacce_only, run_dacce_warm, DriverConfig};

fn main() {
    let opts = Options::from_args();
    let specs = opts.select(all_benchmarks());

    let mut t = Table::new([
        "benchmark",
        "cold traps",
        "warm traps",
        "cold gTS",
        "warm gTS",
        "seeded",
        "pruned",
        "bad samples",
    ]);
    let mut total_cold = 0u64;
    let mut total_warm = 0u64;
    let mut regressions = 0usize;

    for spec in &specs {
        let cfg = DriverConfig {
            scale: opts.scale,
            ..DriverConfig::default()
        };
        let (_, cold) = run_dacce_only(spec, &cfg);
        let (report, rt) = run_dacce_warm(spec, &cfg);
        let warm = rt.stats();
        let wr = *rt.warm_report().expect("warm run has a report");
        let bad = report.mismatches + report.unsupported;
        total_cold += cold.traps;
        total_warm += warm.traps;
        if warm.traps >= cold.traps {
            regressions += 1;
        }
        t.row([
            spec.name.to_string(),
            cold.traps.to_string(),
            warm.traps.to_string(),
            cold.reencodes.to_string(),
            warm.reencodes.to_string(),
            wr.seeded_edges.to_string(),
            wr.pruned_edges.to_string(),
            bad.to_string(),
        ]);
    }

    println!("{}", t.render());
    println!(
        "totals: cold traps {total_cold}, warm traps {total_warm}, \
         benchmarks where warm >= cold: {regressions}/{}",
        specs.len()
    );
    let path = opts.write_csv("warmstart.csv", &t.to_csv());
    println!("CSV written to {}", path.display());
}
