//! Dumps Graphviz views of a benchmark's call graphs: the static
//! whole-program graph PCCE must encode versus the dynamic graph DACCE
//! actually discovered at runtime. Useful for eyeballing why Table 1's
//! graph columns differ so much.
//!
//! ```text
//! cargo run -p dacce-bench --release --bin dotgraph -- --bench 429.mcf
//! ```
//!
//! Writes `<out>/<bench>.dacce.dot` and `<out>/<bench>.static.dot`.

use dacce::DacceRuntime;
use dacce_analyze::graph::build_static_graph;
use dacce_bench::Options;
use dacce_callgraph::dot::to_dot;
use dacce_program::Interpreter;
use dacce_workloads::{all_benchmarks, driver, DriverConfig};

fn main() {
    let opts = Options::from_args();
    let specs = opts.select(all_benchmarks());
    assert!(
        !specs.is_empty(),
        "no benchmark matched; use --bench <substring>"
    );
    for spec in specs {
        let program = driver::program_of(&spec);
        let name = |f: dacce_callgraph::FunctionId| program.name(f).to_string();

        let sg = build_static_graph(&program);
        let static_dot = to_dot(&sg.graph, None, name);

        let mut rt = DacceRuntime::with_defaults();
        let cfg = driver::interp_config(
            &spec,
            &DriverConfig {
                scale: opts.scale,
                ..DriverConfig::default()
            },
        );
        let _ = Interpreter::new(&program, cfg).run(&mut rt);
        let dyn_dot = to_dot(rt.engine().graph(), None, |f| program.name(f).to_string());

        let p1 = opts.write_csv(&format!("{}.static.dot", spec.name), &static_dot);
        let p2 = opts.write_csv(&format!("{}.dacce.dot", spec.name), &dyn_dot);
        println!(
            "{}: static {} nodes / {} edges -> {}",
            spec.name,
            sg.graph.node_count(),
            sg.graph.edge_count(),
            p1.display()
        );
        println!(
            "{}: dynamic {} nodes / {} edges -> {}",
            spec.name,
            rt.engine().graph().node_count(),
            rt.engine().graph().edge_count(),
            p2.display()
        );
    }
}
