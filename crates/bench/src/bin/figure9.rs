//! Regenerates **Figure 9** of the paper: the progress of encodings under
//! DACCE over time for four representative benchmarks — the number of
//! encoded nodes and edges and the maximum encoding context id after every
//! re-encoding.
//!
//! The paper's observations to reproduce: re-encoding fires more frequently
//! at the beginning; the encoding reaches a relatively steady state
//! quickly; and late re-encodings still adjust when hot paths change or new
//! paths appear (the phase shift at mid-run). For `483.xalancbmk` the paper
//! notes the maximum id can *decrease* when a newly identified edge turns a
//! previously encoded edge into a back edge.
//!
//! ```text
//! cargo run -p dacce-bench --release --bin figure9 [-- --scale 1.0]
//! ```

use dacce_bench::Options;
use dacce_metrics::Table;
use dacce_workloads::{all_benchmarks, run_benchmark, DriverConfig};

const SELECTED: [&str; 4] = ["445.gobmk", "483.xalancbmk", "458.sjeng", "433.milc"];

fn main() {
    let opts = Options::from_args();
    let cfg = DriverConfig {
        scale: opts.scale,
        ..DriverConfig::default()
    };

    let mut csv = Table::new(["benchmark", "calls", "nodes", "edges", "maxID"]);
    for name in SELECTED {
        let spec = all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .expect("selected benchmark exists");
        let out = run_benchmark(&spec, &cfg);
        let progress = &out.dacce_stats.progress;

        println!("\nFigure 9 — {name}: encoding progress over time");
        let mut t = Table::new(["calls", "nodes", "edges", "maxID"]);
        for p in progress {
            t.row([
                p.calls.to_string(),
                p.nodes.to_string(),
                p.edges.to_string(),
                p.max_id.to_string(),
            ]);
            csv.row([
                name.to_string(),
                p.calls.to_string(),
                p.nodes.to_string(),
                p.edges.to_string(),
                p.max_id.to_string(),
            ]);
        }
        println!("{}", t.render());

        // The paper's qualitative observations.
        let n = progress.len();
        if n >= 4 {
            let first_half_gap = progress[n / 2].calls / (n as u64 / 2).max(1);
            let last_gap = progress[n - 1].calls - progress[n - 2].calls;
            println!(
                "re-encodings: {} (mean gap first half ~{} calls, last gap {} calls)",
                n - 1,
                first_half_gap,
                last_gap
            );
        }
        if let Some(w) = progress.windows(2).find(|w| w[1].max_id < w[0].max_id) {
            println!(
                "maxID decreased after a re-encoding ({} -> {}), as the paper observed \
                 for 483.xalancbmk",
                w[0].max_id, w[1].max_id
            );
        }
    }

    let path = opts.write_csv("figure9.csv", &csv.to_csv());
    println!("\nCSV written to {}", path.display());
}
