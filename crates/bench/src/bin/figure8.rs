//! Regenerates **Figure 8** of the paper: runtime overhead of PCCE vs
//! DACCE per benchmark, plus the geometric mean.
//!
//! The paper measures wall-clock overhead on the authors' Xeon testbed;
//! this reproduction charges a deterministic cost model (see `DESIGN.md`)
//! and reports instrumentation cost relative to base work. The headline
//! shape to reproduce: geomean overhead of a few percent with DACCE at or
//! below PCCE; PCCE clearly worse on the `400.perlbench`, `483.xalancbmk`
//! and `x264` analogs; DACCE slightly worse where offline profiles are
//! perfectly representative and runs are short (`458.sjeng`, `433.milc`,
//! `434.zeusmp` analogs).
//!
//! ```text
//! cargo run -p dacce-bench --release --bin figure8 [-- --scale 1.0]
//! ```

use dacce_bench::Options;
use dacce_metrics::{geomean, percent, Table};
use dacce_workloads::{all_benchmarks, run_benchmark, DriverConfig};

fn main() {
    let opts = Options::from_args();
    let cfg = DriverConfig {
        scale: opts.scale,
        ..DriverConfig::default()
    };

    let mut table = Table::new(["benchmark", "PCCE", "DACCE", "winner"]);
    let mut pcce_all = Vec::new();
    let mut dacce_all = Vec::new();
    let mut all_valid = true;

    for spec in opts.select(all_benchmarks()) {
        let out = run_benchmark(&spec, &cfg);
        if !out.fully_validated() {
            all_valid = false;
            eprintln!("WARNING: {} failed validation", out.name);
        }
        let p = out.pcce_overhead();
        let d = out.dacce_overhead();
        pcce_all.push(p);
        dacce_all.push(d);
        let winner = if (p - d).abs() < 1e-4 {
            "tie"
        } else if d < p {
            "DACCE"
        } else {
            "PCCE"
        };
        table.row([
            out.name.to_string(),
            percent(p),
            percent(d),
            winner.to_string(),
        ]);
        eprintln!("done: {}", out.name);
    }

    table.row([
        "geomean".to_string(),
        percent(geomean(&pcce_all)),
        percent(geomean(&dacce_all)),
        if geomean(&dacce_all) <= geomean(&pcce_all) {
            "DACCE".to_string()
        } else {
            "PCCE".to_string()
        },
    ]);

    println!("\nFigure 8: Runtime overhead of PCCE and DACCE (cost-model units)\n");
    println!("{}", table.render());
    let path = opts.write_csv("figure8.csv", &table.to_csv());
    println!("CSV written to {}", path.display());
    if !all_valid {
        std::process::exit(1);
    }
}
