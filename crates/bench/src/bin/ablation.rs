//! Ablation studies over DACCE's design choices (DESIGN.md per-experiment
//! index). Each ablation switches off or sweeps one mechanism the paper
//! motivates and shows its effect:
//!
//! 1. **adaptive re-encoding** (§4) — off, nothing is ever encoded: every
//!    call pushes the ccStack;
//! 2. **heat ordering** (§4) — off, hot edges pay `id` arithmetic that the
//!    adaptive encoder would have made free;
//! 3. **recursion compression** (§3.3, Figure 5e) — Never/Adaptive/Always,
//!    measured by mean ccStack depth on the recursion-heavy analogs;
//! 4. **indirect hash threshold** (§3.2, Figure 4) — sweep of
//!    `indirect_inline_max` on the many-target `x264` analog;
//! 5. **tail-call handling** (§5.2, Figure 7) — off reproduces the
//!    encoding corruption of Figure 7a, visible as validation mismatches.
//!
//! ```text
//! cargo run -p dacce-bench --release --bin ablation [-- --scale 1.0]
//! ```

use dacce::{CompressionMode, DacceConfig};
use dacce_bench::Options;
use dacce_metrics::{percent, Table};
use dacce_workloads::{all_benchmarks, run_dacce_only, BenchSpec, DriverConfig};

fn spec_named(name: &str) -> BenchSpec {
    all_benchmarks()
        .into_iter()
        .find(|s| s.name == name)
        .expect("benchmark exists")
}

fn run(spec: &BenchSpec, scale: f64, dacce: DacceConfig) -> (f64, f64, u64, u64, f64, u64) {
    let cfg = DriverConfig {
        scale,
        dacce,
        ..DriverConfig::default()
    };
    let (report, stats) = run_dacce_only(spec, &cfg);
    (
        report.warm_overhead(),
        stats.mean_cc_depth(),
        stats.reencodes,
        stats.ccstack_ops,
        report.mismatches as f64 + report.unsupported as f64,
        stats.unbalanced_resets,
    )
}

fn main() {
    let opts = Options::from_args();
    let mut csv = Table::new([
        "study",
        "benchmark",
        "variant",
        "overhead",
        "cc_depth",
        "gTS",
    ]);

    // 1 & 2: re-encoding and heat ordering.
    println!("\nAblation 1/2: adaptive re-encoding and hot-edge ordering");
    let mut t = Table::new([
        "benchmark",
        "variant",
        "overhead",
        "mean ccStack depth",
        "gTS",
    ]);
    for name in ["400.perlbench", "458.sjeng", "471.omnetpp"] {
        let spec = spec_named(name);
        for (variant, cfg) in [
            ("full", DacceConfig::default()),
            (
                "no-heat-ordering",
                DacceConfig {
                    heat_ordering: false,
                    ..DacceConfig::default()
                },
            ),
            ("no-reencoding", DacceConfig::no_reencoding()),
        ] {
            let (oh, depth, gts, _, _, _) = run(&spec, opts.scale, cfg);
            t.row([
                name.to_string(),
                variant.to_string(),
                percent(oh),
                format!("{depth:.2}"),
                gts.to_string(),
            ]);
            csv.row([
                "adaptivity".to_string(),
                name.to_string(),
                variant.to_string(),
                format!("{oh:.4}"),
                format!("{depth:.2}"),
                gts.to_string(),
            ]);
        }
    }
    println!("{}", t.render());

    // 3: recursion compression.
    println!("Ablation 3: recursion compression (§3.3)");
    let mut t = Table::new(["benchmark", "compression", "overhead", "mean ccStack depth"]);
    for name in ["483.xalancbmk", "445.gobmk"] {
        let spec = spec_named(name);
        for (variant, mode) in [
            ("never", CompressionMode::Never),
            ("adaptive", CompressionMode::Adaptive),
            ("always", CompressionMode::Always),
        ] {
            let cfg = DacceConfig {
                compression: mode,
                ..DacceConfig::default()
            };
            let (oh, depth, gts, _, _, _) = run(&spec, opts.scale, cfg);
            t.row([
                name.to_string(),
                variant.to_string(),
                percent(oh),
                format!("{depth:.2}"),
            ]);
            csv.row([
                "compression".to_string(),
                name.to_string(),
                variant.to_string(),
                format!("{oh:.4}"),
                format!("{depth:.2}"),
                gts.to_string(),
            ]);
        }
    }
    println!("{}", t.render());

    // 4: indirect inline/hash threshold.
    println!("Ablation 4: indirect-dispatch inline threshold (§3.2, Figure 4)");
    let mut t = Table::new(["benchmark", "inline_max", "overhead"]);
    for inline_max in [1usize, 4, 16, 64] {
        let spec = spec_named("x264");
        let cfg = DacceConfig {
            indirect_inline_max: inline_max,
            ..DacceConfig::default()
        };
        let (oh, _, gts, _, _, _) = run(&spec, opts.scale, cfg);
        t.row(["x264".to_string(), inline_max.to_string(), percent(oh)]);
        csv.row([
            "inline_max".to_string(),
            "x264".to_string(),
            inline_max.to_string(),
            format!("{oh:.4}"),
            String::from("-"),
            gts.to_string(),
        ]);
    }
    println!("{}", t.render());

    // 5: tail-call handling.
    println!("Ablation 5: tail-call handling (§5.2, Figure 7)");
    let mut t = Table::new(["benchmark", "variant", "bad samples + dirty resets"]);
    for name in ["400.perlbench", "445.gobmk"] {
        let spec = spec_named(name);
        for (variant, cfg) in [
            ("tcstack", DacceConfig::default()),
            ("broken (Fig 7a)", DacceConfig::broken_tail_calls()),
        ] {
            let (_, _, gts, _, bad, dirty) = run(&spec, opts.scale, cfg);
            t.row([
                name.to_string(),
                variant.to_string(),
                format!("{}", bad as u64 + dirty),
            ]);
            csv.row([
                "tail_calls".to_string(),
                name.to_string(),
                variant.to_string(),
                format!("{}", bad as u64 + dirty),
                String::from("-"),
                gts.to_string(),
            ]);
        }
    }
    println!("{}", t.render());

    let path = opts.write_csv("ablation.csv", &csv.to_csv());
    println!("CSV written to {}", path.display());
}
