//! `dacce-top` — live introspection of a DACCE run.
//!
//! Runs one workload from the suite under the DACCE runtime with the event
//! journal enabled and renders a periodically refreshing health view:
//! event rates per kind, trap-latency / ccStack-depth / re-encode-cost
//! histogram sketches, the per-generation dictionary table, id headroom,
//! and — once the run completes — the hottest calling contexts
//! reconstructed from the sample log.
//!
//! ```text
//! cargo run -p dacce-bench --release --bin dacce-top -- --bench 401.bzip2
//! cargo run -p dacce-bench --release --bin dacce-top -- \
//!     --bench 400.perlbench --json --require-reencodes > top.json
//! ```
//!
//! `--json` skips the live view and emits a single machine-readable
//! document on stdout (the CI `observe` job consumes this);
//! `--require-reencodes` makes the process exit non-zero when the journal
//! recorded no re-encode events — a canary for adaptivity being wired off.
//! In JSON mode `--prom-out`/`--export-out` additionally write the final
//! Prometheus metrics export and `dacce-export v1` engine state, the input
//! pair for `dacce-lint --metrics`; `--flame` writes the continuous
//! profiler's samples as a collapsed-stack flame file (`dacce-flame`
//! merges them fleet-wide), `--journal-out` dumps the run's journal
//! events as JSON (decodable offline by `dacce-flame --export`), and
//! `--postmortem-out` forces a flight-recorder dump and writes it (the
//! input for `dacce-lint --postmortem`).
//!
//! `--decode-stats` switches to the offline-decode report: the selected
//! workload (a suite benchmark or one of the production families from
//! `dacce_workloads::families`) is recorded into an effect journal with
//! seam seeds, then decoded serially and fragment-parallel
//! ([`dacce::decode_parallel`] at `--workers N`, default 4); the report
//! covers journal size, fragment/seam accounting and the two decode
//! costs. `--json` emits it as one machine-readable document, and
//! `--journal-out` in this mode writes the recorded `dacce-journal v1`
//! text — the input for `dacce-lint --fragments`. Exits non-zero if the
//! parallel decode diverges from the serial reference.
//!
//! ```text
//! cargo run -p dacce-bench --release --bin dacce-top -- \
//!     --bench server-rr --decode-stats --workers 4
//! ```
//!
//! `--fleet N` switches to the multi-tenant view: N tenants of one shared
//! program run under a [`dacce_fleet::Fleet`], their journals and metrics
//! merged through a [`dacce_obs::FleetPump`] into one labeled surface
//! (per-tenant `tenant="…"` rows, `dacce_fleet_` aggregates):
//!
//! ```text
//! cargo run -p dacce-bench --release --bin dacce-top -- --fleet 8
//! cargo run -p dacce-bench --release --bin dacce-top -- \
//!     --fleet 8 --json --prom-out fleet.prom > fleet.json
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use dacce::{DacceConfig, DacceRuntime, HotContextProfile, Tracker};
use dacce_fleet::{DefEdge, Fleet, ProgramDef, TenantId};
use dacce_obs::{
    events_to_json, merge_by_lineage, EventKind, EventRecord, FlameGraph, FleetPump,
    JournalAggregates, MetricsSnapshot,
};
use dacce_program::{ContextPath, Interpreter, Program, RunReport};
use dacce_workloads::{all_benchmarks, interp_config, program_of, BenchSpec, DriverConfig};

struct TopOptions {
    bench: String,
    scale: f64,
    json: bool,
    interval_ms: u64,
    require_reencodes: bool,
    top: usize,
    /// Run the multi-tenant fleet view with this many tenants.
    fleet: Option<usize>,
    /// Write the final Prometheus metrics export here (JSON mode only).
    prom_out: Option<String>,
    /// Write the final `dacce-export v1` engine state here (JSON mode
    /// only). Together with `--prom-out` this feeds `dacce-lint --metrics`.
    export_out: Option<String>,
    /// Write the profiler's flame graph (collapsed-stack text) here.
    /// JSON mode, plus fleet mode where tenants merge by lineage.
    flame_out: Option<String>,
    /// Write the run's journal events as JSON here (JSON mode only).
    journal_out: Option<String>,
    /// Force a flight-recorder dump after the run and write it here
    /// (JSON mode only). If the run already tripped the recorder (e.g.
    /// under `--chaos`), that earlier dump is written instead — first
    /// capture wins.
    postmortem_out: Option<String>,
    /// Run under a named [`dacce::FaultPlan`] preset, so degradation
    /// paths (and the flight recorder) fire deterministically.
    chaos: Option<String>,
    /// Record the workload into a decode journal and report offline
    /// serial vs fragment-parallel decode statistics instead of the
    /// live health view.
    decode_stats: bool,
    /// Worker count for the `--decode-stats` parallel decode.
    workers: usize,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions {
            bench: "401.bzip2".to_string(),
            scale: 0.05,
            json: false,
            interval_ms: 500,
            require_reencodes: false,
            top: 10,
            fleet: None,
            prom_out: None,
            export_out: None,
            flame_out: None,
            journal_out: None,
            postmortem_out: None,
            chaos: None,
            decode_stats: false,
            workers: 4,
        }
    }
}

impl TopOptions {
    fn from_args() -> TopOptions {
        let mut o = TopOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" => o.bench = args.next().expect("--bench needs a name"),
                "--scale" => {
                    o.scale = args
                        .next()
                        .expect("--scale needs a value")
                        .parse()
                        .expect("--scale needs a number");
                }
                "--interval-ms" => {
                    o.interval_ms = args
                        .next()
                        .expect("--interval-ms needs a value")
                        .parse()
                        .expect("--interval-ms needs an integer");
                }
                "--top" => {
                    o.top = args
                        .next()
                        .expect("--top needs a value")
                        .parse()
                        .expect("--top needs an integer");
                }
                "--fleet" => {
                    o.fleet = Some(
                        args.next()
                            .expect("--fleet needs a tenant count")
                            .parse()
                            .expect("--fleet needs an integer"),
                    );
                }
                "--json" => o.json = true,
                "--require-reencodes" => o.require_reencodes = true,
                "--prom-out" => o.prom_out = Some(args.next().expect("--prom-out needs a path")),
                "--export-out" => {
                    o.export_out = Some(args.next().expect("--export-out needs a path"));
                }
                "--flame" => o.flame_out = Some(args.next().expect("--flame needs a path")),
                "--journal-out" => {
                    o.journal_out = Some(args.next().expect("--journal-out needs a path"));
                }
                "--postmortem-out" => {
                    o.postmortem_out = Some(args.next().expect("--postmortem-out needs a path"));
                }
                "--chaos" => o.chaos = Some(args.next().expect("--chaos needs a preset name")),
                "--decode-stats" => o.decode_stats = true,
                "--workers" => {
                    o.workers = args
                        .next()
                        .expect("--workers needs a value")
                        .parse()
                        .expect("--workers needs an integer");
                }
                other => panic!(
                    "unknown argument {other}; use \
                     --bench/--scale/--fleet/--json/--interval-ms/--top\
                     /--require-reencodes/--prom-out/--export-out\
                     /--flame/--journal-out/--postmortem-out/--chaos\
                     /--decode-stats/--workers"
                ),
            }
        }
        o
    }
}

fn main() {
    let opts = TopOptions::from_args();
    if opts.decode_stats {
        let ok = run_decode_stats(&opts);
        std::process::exit(i32::from(!ok));
    }
    if let Some(tenants) = opts.fleet {
        let ok = run_fleet(&opts, tenants.max(1));
        std::process::exit(i32::from(!ok));
    }
    let spec = all_benchmarks()
        .into_iter()
        .find(|s| s.name.contains(&opts.bench))
        .unwrap_or_else(|| panic!("no suite benchmark matches {:?}", opts.bench));

    let fault = match &opts.chaos {
        None => dacce::FaultPlan::default(),
        Some(name) => dacce::FaultPlan::preset(name)
            .unwrap_or_else(|| panic!("no fault-plan preset named {name:?}")),
    };
    let cfg = DriverConfig {
        scale: opts.scale,
        keep_sample_log: true,
        dacce: DacceConfig {
            journal_ring_capacity: 1 << 16,
            keep_sample_log: true,
            fault,
            ..DacceConfig::default()
        },
        ..DriverConfig::default()
    };
    let program = program_of(&spec);
    let icfg = interp_config(&spec, &cfg);
    let mut rt = DacceRuntime::new(cfg.dacce.clone(), cfg.cost.clone());
    let obs = rt.observability().clone();
    obs.set_journaling(true);

    if opts.json {
        let report = Interpreter::new(&program, icfg).run(&mut rt);
        // Capture the postmortem before draining: the flight recorder
        // peeks the ring, so the dump carries the events the drain is
        // about to consume. A dump the run already tripped (degraded
        // entry, re-encode abort) wins over the forced one.
        if opts.postmortem_out.is_some() && rt.engine().postmortem().is_none() {
            rt.engine_mut().force_postmortem("operator-requested");
        }
        let batch = obs.drain_journal();
        let by_kind = count_by_kind(&batch.events);
        let ok = finish_json(
            &opts,
            &spec,
            &program,
            &report,
            &rt,
            &batch.events,
            &by_kind,
        );
        if let Some(path) = &opts.prom_out {
            write_creating_dirs(path, &rt.observe().to_prometheus());
        }
        if let Some(path) = &opts.export_out {
            write_creating_dirs(path, &dacce::export_state(rt.engine()));
        }
        if let Some(path) = &opts.flame_out {
            let graph = flame_of_engine(rt.engine(), |f| program.name(f).to_string());
            write_creating_dirs(path, &graph.to_collapsed());
        }
        if let Some(path) = &opts.journal_out {
            write_creating_dirs(path, &events_to_json(&batch.events));
        }
        if let Some(path) = &opts.postmortem_out {
            match rt.engine().postmortem() {
                Some(dump) => write_creating_dirs(path, dump),
                None => {
                    eprintln!("dacce-top: --postmortem-out: no dump (obs feature off?)");
                    std::process::exit(1);
                }
            }
        }
        std::process::exit(i32::from(!ok));
    }

    // Live mode: the workload runs on a worker thread; the main thread
    // renders from the shared observability handle.
    let (tx, rx) = mpsc::channel::<(RunReport, DacceRuntime)>();
    let worker = std::thread::spawn(move || {
        let report = Interpreter::new(&program, icfg).run(&mut rt);
        tx.send((report, rt)).expect("main thread alive");
    });

    let started = Instant::now();
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut events_total = 0u64;
    let (report, rt) = loop {
        match rx.recv_timeout(Duration::from_millis(opts.interval_ms)) {
            Ok(done) => break done,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => panic!("workload thread died"),
        }
        let batch = obs.drain_journal();
        let fresh = count_by_kind(&batch.events);
        for (k, v) in &fresh {
            *totals.entry(k).or_insert(0) += v;
        }
        events_total += batch.events.len() as u64;
        let screen = render_live(
            &spec,
            started.elapsed(),
            &obs.snapshot(),
            &fresh,
            &totals,
            events_total,
            opts.interval_ms,
        );
        // Clear + home, then the frame.
        print!("\x1b[2J\x1b[H{screen}");
    };
    worker.join().expect("workload thread joins");

    // Final drain + summary (plain, no ANSI — it should survive in logs).
    let batch = obs.drain_journal();
    let fresh = count_by_kind(&batch.events);
    for (k, v) in &fresh {
        *totals.entry(k).or_insert(0) += v;
    }
    events_total += batch.events.len() as u64;
    let snap = obs.snapshot();
    println!("\x1b[2J\x1b[H");
    println!(
        "dacce-top — {} finished in {:.2}s ({} calls, overhead {:.3})",
        spec.name,
        started.elapsed().as_secs_f64(),
        report.calls,
        report.overhead()
    );
    println!(
        "journal: {events_total} events ({} dropped)",
        snap.journal_dropped
    );
    for (kind, n) in &totals {
        println!("  {kind:<16} {n}");
    }
    print!("{}", render_health(&snap));
    // The program was moved into the worker; regenerate it (deterministic
    // from the spec) to resolve function names for the context tree.
    let program = program_of(&spec);
    print!(
        "{}",
        render_hottest(rt.engine(), opts.top, |f| program.name(f).to_string())
    );
}

fn write_creating_dirs(path: &str, contents: &str) {
    let path = std::path::Path::new(path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

fn count_by_kind(events: &[EventRecord]) -> BTreeMap<&'static str, u64> {
    let mut map = BTreeMap::new();
    for ev in events {
        *map.entry(ev.kind.name()).or_insert(0) += 1;
    }
    map
}

fn render_live(
    spec: &BenchSpec,
    elapsed: Duration,
    snap: &MetricsSnapshot,
    fresh: &BTreeMap<&'static str, u64>,
    totals: &BTreeMap<&'static str, u64>,
    events_total: u64,
    interval_ms: u64,
) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "dacce-top — {}  [{:.1}s]  journal {} events ({} dropped)",
        spec.name,
        elapsed.as_secs_f64(),
        events_total,
        snap.journal_dropped
    );
    let _ = writeln!(s, "\nevent rates (last {interval_ms} ms):");
    let _ = writeln!(
        s,
        "  {:<16} {:>10} {:>12} {:>10}",
        "kind", "rate/s", "tick", "total"
    );
    let secs = (interval_ms as f64 / 1000.0).max(1e-9);
    for name in EventKind::all_names() {
        let tick = fresh.get(name).copied().unwrap_or(0);
        let total = totals.get(name).copied().unwrap_or(0);
        if total == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "  {name:<16} {:>10.1} {tick:>12} {total:>10}",
            tick as f64 / secs
        );
    }
    s.push_str(&render_health(snap));
    s
}

/// The histogram / dictionary-table / headroom section shared by the live
/// frame and the final summary.
fn render_health(snap: &MetricsSnapshot) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "\ncounters: traps {} · edges {} · reencodes {} ({} aborted) · \
         migrations {} · samples {} · ccStack overflows {}",
        snap.traps,
        snap.edges_discovered,
        snap.reencodes,
        snap.reencode_aborts,
        snap.migrations,
        snap.samples,
        snap.cc_overflows
    );
    if snap.profiler_samples > 0 {
        let _ = writeln!(
            s,
            "profiler: {} samples (weight {})",
            snap.profiler_samples, snap.profiler_sample_weight
        );
    }
    let ic_total = snap.icache_hits + snap.icache_misses;
    let _ = writeln!(
        s,
        "dispatch: {} slots over span {} ({:.1}% dense) · inline cache {} ({} hit / {} miss)",
        snap.dispatch_slots,
        snap.dispatch_span,
        percent(snap.dispatch_slots, snap.dispatch_span),
        if ic_total == 0 {
            "idle".to_string()
        } else {
            format!("{:.1}% hit", percent(snap.icache_hits, ic_total))
        },
        snap.icache_hits,
        snap.icache_misses
    );
    let so_probes = snap.superop_hits + snap.superop_misses;
    if snap.superop_compiled + snap.superop_candidates + so_probes + snap.superop_invalidations > 0
    {
        let _ = writeln!(
            s,
            "superops: {}/{} candidates compiled ({:.1}% occupancy) · probes {} · \
             {} hit / {} miss ({:.1}% hit) · invalidations {} over {} republishes \
             ({:.2}/republish)",
            snap.superop_compiled,
            snap.superop_candidates,
            percent(snap.superop_compiled, snap.superop_candidates),
            so_probes,
            snap.superop_hits,
            snap.superop_misses,
            percent(snap.superop_hits, so_probes),
            snap.superop_invalidations,
            snap.superop_republishes,
            ratio(snap.superop_invalidations, snap.superop_republishes)
        );
    }
    let degraded_any = snap.degraded_traps
        + snap.reencode_retries
        + snap.cc_spills
        + snap.lock_poisonings
        + snap.slot_failures
        > 0;
    if degraded_any {
        let _ = writeln!(
            s,
            "degraded: traps {} · reencode retries {} · ccStack spills {} · \
             lock poisonings {} · slot failures {}",
            snap.degraded_traps,
            snap.reencode_retries,
            snap.cc_spills,
            snap.lock_poisonings,
            snap.slot_failures
        );
    }
    for (label, h) in [
        ("trap latency ns", &snap.trap_ns),
        ("reencode cost", &snap.reencode_cost),
        ("ccStack depth", &snap.cc_depth),
        ("sampled ids", &snap.sampled_ids),
    ] {
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "{label:<16} [{}] n={} mean={:.1} p50={} p95={} p99={} max={}",
            h.sketch(),
            h.count,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.95),
            h.quantile(0.99),
            h.max
        );
    }
    let _ = writeln!(
        s,
        "\ndictionaries ({} generations):",
        snap.generations.len()
    );
    let _ = writeln!(
        s,
        "  {:>4} {:>8} {:>8} {:>14} {:>10}",
        "gen", "nodes", "edges", "maxID", "cost"
    );
    // The table can grow long on eager configs; show the newest entries.
    for g in snap.generations.iter().rev().take(12).rev() {
        let _ = writeln!(
            s,
            "  {:>4} {:>8} {:>8} {:>14} {:>10}",
            g.generation, g.nodes, g.edges, g.max_id, g.cost
        );
    }
    let _ = writeln!(
        s,
        "id headroom: maxID {} uses {}/64 bits ({} spare)",
        snap.id_headroom.max_id, snap.id_headroom.bits_used, snap.id_headroom.bits_spare
    );
    s
}

/// `part / whole`; 0 when `whole` is 0.
fn ratio(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// `part` as a percentage of `whole`; 0 when `whole` is 0.
fn percent(part: u64, whole: u64) -> f64 {
    100.0 * ratio(part, whole)
}

/// Decodes the continuous profiler's weighted samples into a flame graph
/// (collapsed-stack folds, root-first frames).
fn flame_of_engine(
    engine: &dacce::DacceEngine,
    mut name: impl FnMut(dacce_callgraph::FunctionId) -> String,
) -> FlameGraph {
    let mut graph = FlameGraph::new(0);
    for (ctx, weight) in engine.profiler_samples() {
        if let Ok(path) = engine.decode(ctx) {
            let frames: Vec<String> = path.0.iter().map(|st| name(st.func)).collect();
            graph.add(&frames, *weight);
        }
    }
    graph
}

/// Renders a tenant's profiler profile as a flame graph tagged with the
/// fleet lineage hash, so fleet-wide merges group by encoding history.
fn flame_of_profile(
    profile: &HotContextProfile,
    lineage: u64,
    mut name: impl FnMut(dacce_callgraph::FunctionId) -> String,
) -> FlameGraph {
    let mut graph = FlameGraph::new(lineage);
    for (path, weight) in profile.top(profile.distinct()) {
        let frames: Vec<String> = path.0.iter().map(|st| name(st.func)).collect();
        graph.add(&frames, weight);
    }
    graph
}

/// Decodes the retained sample log into a hot-context profile and renders
/// the top of it.
fn render_hottest(
    engine: &dacce::DacceEngine,
    top: usize,
    mut name: impl FnMut(dacce_callgraph::FunctionId) -> String,
) -> String {
    let mut profile = HotContextProfile::new();
    for ctx in engine.sample_log() {
        if let Ok(path) = engine.decode(ctx) {
            profile.record(&path);
        }
    }
    let mut s = String::new();
    let _ = writeln!(
        s,
        "\nhottest contexts ({} samples, {} distinct):",
        profile.total(),
        profile.distinct()
    );
    for (path, weight) in profile.top(top) {
        let _ = writeln!(s, "  {weight:>8}  {}", format_path(&path, &mut name));
    }
    s
}

fn format_path(
    path: &ContextPath,
    name: &mut impl FnMut(dacce_callgraph::FunctionId) -> String,
) -> String {
    path.0
        .iter()
        .map(|st| name(st.func))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Emits the one-shot JSON document and returns whether the health checks
/// passed.
fn finish_json(
    opts: &TopOptions,
    spec: &BenchSpec,
    program: &Program,
    report: &RunReport,
    rt: &DacceRuntime,
    events: &[EventRecord],
    by_kind: &BTreeMap<&'static str, u64>,
) -> bool {
    let snap = rt.observe();
    let agg = JournalAggregates::replay(events);
    let stats = rt.stats();

    let mut profile = HotContextProfile::new();
    for ctx in rt.engine().sample_log() {
        if let Ok(path) = rt.engine().decode(ctx) {
            profile.record(&path);
        }
    }
    let mut hottest = String::from("[");
    for (i, (path, weight)) in profile.top(opts.top).iter().enumerate() {
        if i > 0 {
            hottest.push(',');
        }
        let rendered = path
            .0
            .iter()
            .map(|st| program.name(st.func).to_string())
            .collect::<Vec<_>>()
            .join(" -> ");
        let _ = write!(hottest, "{{\"weight\":{weight},\"path\":\"{rendered}\"}}");
    }
    hottest.push(']');

    let mut kinds = String::from("{");
    for (i, (k, v)) in by_kind.iter().enumerate() {
        if i > 0 {
            kinds.push(',');
        }
        let _ = write!(kinds, "\"{k}\":{v}");
    }
    kinds.push('}');

    println!(
        "{{\"workload\":\"{}\",\"scale\":{},\"calls\":{},\"overhead\":{:.6},\
         \"stats\":{{\"traps\":{},\"reencodes\":{},\"reencode_cost\":{},\
         \"overflow_aborts\":{},\"samples\":{},\"decode_errors\":{},\
         \"profiler_samples\":{},\"profiler_sample_weight\":{}}},\
         \"journal\":{{\"events\":{},\"dropped\":{},\"by_kind\":{}}},\
         \"replay\":{{\"traps\":{},\"reencodes\":{},\"migrations\":{}}},\
         \"dispatch\":{{\"slots\":{},\"span\":{},\"occupancy\":{:.4},\
         \"icache_hits\":{},\"icache_misses\":{},\"icache_hit_rate\":{:.4}}},\
         \"superops\":{{\"compiled\":{},\"candidates\":{},\"occupancy\":{:.4},\
         \"hits\":{},\"misses\":{},\"hit_rate\":{:.4},\"invalidations\":{},\
         \"republishes\":{},\"invalidations_per_republish\":{:.4}}},\
         \"degraded\":{{\"active\":{},\"trap_nodes\":{},\"traps\":{},\
         \"reencode_retries\":{},\"cc_spill_events\":{},\"cc_spilled_peak\":{},\
         \"lock_poisonings\":{},\"slot_failures\":{},\"batch_errors\":{}}},\
         \"metrics\":{},\"hottest\":{}}}",
        spec.name,
        opts.scale,
        report.calls,
        report.overhead(),
        stats.traps,
        stats.reencodes,
        stats.reencode_cost,
        stats.overflow_aborts,
        stats.samples,
        stats.decode_errors,
        stats.profiler_samples,
        stats.profiler_sample_weight,
        events.len(),
        snap.journal_dropped,
        kinds,
        agg.traps,
        agg.reencodes,
        agg.migrations,
        snap.dispatch_slots,
        snap.dispatch_span,
        ratio(snap.dispatch_slots, snap.dispatch_span),
        snap.icache_hits,
        snap.icache_misses,
        ratio(snap.icache_hits, snap.icache_hits + snap.icache_misses),
        snap.superop_compiled,
        snap.superop_candidates,
        ratio(snap.superop_compiled, snap.superop_candidates),
        snap.superop_hits,
        snap.superop_misses,
        ratio(snap.superop_hits, snap.superop_hits + snap.superop_misses),
        snap.superop_invalidations,
        snap.superop_republishes,
        ratio(snap.superop_invalidations, snap.superop_republishes),
        stats.degraded.active,
        stats.degraded.trap_nodes.len(),
        stats.degraded.degraded_traps,
        stats.degraded.reencode_retries,
        stats.degraded.cc_spill_events,
        stats.degraded.cc_spilled_peak,
        stats.degraded.lock_poisonings,
        stats.degraded.slot_failures,
        stats.degraded.batch_errors,
        snap.to_json(),
        hottest
    );

    if opts.require_reencodes && agg.reencodes == 0 {
        eprintln!(
            "dacce-top: --require-reencodes: journal recorded no re-encode \
             events on {}",
            spec.name
        );
        return false;
    }
    true
}

// ---------------------------------------------------------------------------
// Offline decode statistics (`--decode-stats`)
// ---------------------------------------------------------------------------

/// Records the selected workload into an effect journal, decodes it both
/// serially and fragment-parallel, and reports the comparison. Returns
/// whether the parallel decode matched the serial reference byte for
/// byte.
fn run_decode_stats(opts: &TopOptions) -> bool {
    use dacce::{decode_parallel, decode_serial};
    use dacce_workloads::chaos::chaos_trace;
    use dacce_workloads::{family_trace, record_journal};

    let fault = match &opts.chaos {
        None => dacce::FaultPlan::default(),
        Some(name) => dacce::FaultPlan::preset(name)
            .unwrap_or_else(|| panic!("no fault-plan preset named {name:?}")),
    };
    // Production families resolve by exact name; anything else matches a
    // suite benchmark, same as the live view.
    let (name, trace) = match family_trace(&opts.bench, 41, opts.scale) {
        Some(trace) => (opts.bench.clone(), trace),
        None => {
            let spec = all_benchmarks()
                .into_iter()
                .find(|s| s.name.contains(&opts.bench))
                .unwrap_or_else(|| {
                    panic!(
                        "no suite benchmark or workload family matches {:?}",
                        opts.bench
                    )
                });
            let cfg = DriverConfig {
                scale: opts.scale,
                ..DriverConfig::default()
            };
            (spec.name.to_string(), chaos_trace(&spec, &cfg))
        }
    };

    let config = DacceConfig {
        edge_threshold: 4,
        min_events_between_reencodes: 256,
        fault,
        ..DacceConfig::default()
    };
    let run = record_journal(&trace, config, 512);
    let ops = run.journal.ops().max(1) as f64;
    let dec = dacce::import(&run.export).expect("journal export parses");
    if let Some(path) = &opts.journal_out {
        write_creating_dirs(path, &run.journal.to_text());
    }

    let workers = opts.workers.max(1);
    let mut serial_ns = f64::INFINITY;
    let mut serial = None;
    let mut parallel_ns = f64::INFINITY;
    let mut parallel = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let out = decode_serial(&run.journal, &dec).expect("journal replays");
        serial_ns = serial_ns.min(t0.elapsed().as_nanos() as f64 / ops);
        serial = Some(out);
        let t0 = Instant::now();
        let got = decode_parallel(&run.journal, &dec, workers).expect("journal replays");
        parallel_ns = parallel_ns.min(t0.elapsed().as_nanos() as f64 / ops);
        parallel = Some(got);
    }
    let serial = serial.expect("serial decode ran");
    let (parallel, report) = parallel.expect("parallel decode ran");
    let identical = parallel == serial;

    if opts.json {
        println!(
            "{{\"workload\":\"{name}\",\"scale\":{},\"decode\":{{\
             \"ops\":{},\"decode_points\":{},\"resyncs\":{},\
             \"fragments\":{},\"seams_verified\":{},\"seam_failures\":{},\
             \"fallback_fragments\":{},\"workers\":{},\
             \"serial_ns_per_op\":{serial_ns:.2},\
             \"parallel_ns_per_op\":{parallel_ns:.2},\
             \"speedup\":{:.4},\"identical\":{identical}}}}}",
            opts.scale,
            run.journal.ops(),
            run.journal.samples(),
            run.resyncs,
            report.fragments,
            report.seams_verified,
            report.seam_failures,
            report.fallback_fragments,
            report.workers,
            serial_ns / parallel_ns.max(f64::MIN_POSITIVE),
        );
    } else {
        println!("dacce-top --decode-stats — {name} (scale {})", opts.scale);
        println!(
            "journal: {} ops · {} decode points · {} resyncs while recording",
            run.journal.ops(),
            run.journal.samples(),
            run.resyncs
        );
        println!(
            "fragments: {} ({} seams verified, {} failures, {} serial fallbacks)",
            report.fragments,
            report.seams_verified,
            report.seam_failures,
            report.fallback_fragments
        );
        println!(
            "decode: serial {serial_ns:.2} ns/op · {} workers {parallel_ns:.2} ns/op · \
             speedup {:.2}x",
            report.workers,
            serial_ns / parallel_ns.max(f64::MIN_POSITIVE)
        );
        println!(
            "output: {} lines, parallel {} serial",
            serial.lines.len(),
            if identical {
                "identical to"
            } else {
                "DIVERGED from"
            }
        );
    }
    if !identical {
        eprintln!("dacce-top: --decode-stats: parallel decode diverged from serial on {name}");
    }
    identical
}

// ---------------------------------------------------------------------------
// Fleet mode (`--fleet N`)
// ---------------------------------------------------------------------------

/// Middle-layer width of the synthetic fleet program.
const FLEET_MID: usize = 4;
/// Leaf-layer width of the synthetic fleet program.
const FLEET_LEAF: usize = 4;

/// The shared program every fleet tenant registers: `main` calls one of
/// [`FLEET_MID`] services, each service calls one of [`FLEET_LEAF`]
/// operations (odd services through indirect sites). One definition →
/// one content hash → one shared lineage across the whole fleet.
fn fleet_def() -> ProgramDef {
    let mut functions = vec!["main".to_string()];
    for m in 0..FLEET_MID {
        functions.push(format!("svc{m}"));
    }
    for l in 0..FLEET_LEAF {
        functions.push(format!("op{l}"));
    }
    let mut edges = Vec::new();
    let mut site = 0usize;
    for m in 0..FLEET_MID {
        edges.push(DefEdge {
            caller: 0,
            callee: 1 + m,
            site,
            indirect: false,
        });
        site += 1;
    }
    for m in 0..FLEET_MID {
        for l in 0..FLEET_LEAF {
            edges.push(DefEdge {
                caller: 1 + m,
                callee: 1 + FLEET_MID + l,
                site,
                indirect: m % 2 == 1,
            });
            site += 1;
        }
    }
    ProgramDef {
        functions,
        main: 0,
        call_sites: site,
        edges,
        tail_fns: vec![],
        extra_roots: vec![],
    }
}

/// Drives one tenant: deterministic main → svc → op walks with periodic
/// samples. Every fourth tenant grows a private indirect edge halfway
/// through — the copy-on-write divergence the fleet view should surface.
fn drive_tenant(tracker: &Tracker, def: &ProgramDef, index: usize, iterations: u64) {
    let thread = tracker.register_thread(def.main_fn());
    let diverge_at = (index % 4 == 3).then_some(iterations / 2);
    let mut private = None;
    for i in 0..iterations {
        if diverge_at == Some(i) {
            let pfn = tracker.define_function(&format!("wild{index}"));
            let psite = tracker.define_call_site();
            private = Some((psite, pfn));
        }
        let m = usize::try_from(i).unwrap_or(usize::MAX) % FLEET_MID;
        let l = usize::try_from(i / 3).unwrap_or(usize::MAX) % FLEET_LEAF;
        let g1 = thread.call(def.site(m), def.function(1 + m));
        let g2 = thread.call(
            def.site(FLEET_MID + m * FLEET_LEAF + l),
            def.function(1 + FLEET_MID + l),
        );
        if let Some((psite, pfn)) = private {
            if i % 16 == 0 {
                let _g3 = thread.call_indirect(psite, pfn);
            }
        }
        if i % 512 == 0 {
            let _ = thread.sample();
        }
        drop(g2);
        drop(g1);
    }
}

/// Drains every tenant's journal and metrics into the pump.
fn pump_tick(fleet: &Fleet, pump: &mut FleetPump) {
    for (_, label, tracker) in fleet.tenants() {
        let obs = tracker.observability();
        let batch = obs.drain_journal();
        pump.note_events(&label, batch.events.len() as u64);
        pump.record(&label, obs.snapshot());
    }
}

fn render_fleet(fleet: &Fleet, pump: &FleetPump, elapsed: Duration) -> String {
    let stats = fleet.fleet_stats();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "dacce-top --fleet — {} tenants sharing {} lineage(s)  [{:.1}s]",
        stats.tenants,
        stats.lineages,
        elapsed.as_secs_f64()
    );
    let _ = writeln!(
        s,
        "registry: founded {} · attached {} · diverged {} · adoptions {} · publishes {}",
        stats.founded, stats.attached, stats.diverged, stats.adoptions, stats.publishes
    );
    let _ = writeln!(
        s,
        "\n  {:<10} {:>8} {:>10} {:>8} {:>8} {:>6} {:>5} {:>10}",
        "tenant", "traps", "samples", "reenc", "migr", "adopt", "div", "events"
    );
    for (label, member) in pump.members() {
        let m = &member.snapshot;
        let _ = writeln!(
            s,
            "  {label:<10} {:>8} {:>10} {:>8} {:>8} {:>6} {:>5} {:>10}",
            m.traps,
            m.samples,
            m.reencodes,
            m.migrations,
            m.lineage_adoptions,
            m.lineage_divergences,
            member.events
        );
    }
    let agg = pump.aggregate();
    let _ = writeln!(
        s,
        "\nfleet: traps {} · edges {} · reencodes {} ({} aborted) · migrations {} · \
         samples {} · journal {} events ({} dropped)",
        agg.traps,
        agg.edges_discovered,
        agg.reencodes,
        agg.reencode_aborts,
        agg.migrations,
        agg.samples,
        pump.total_events(),
        agg.journal_dropped
    );
    s
}

/// Runs the multi-tenant fleet view and returns whether the health checks
/// passed.
fn run_fleet(opts: &TopOptions, tenants: usize) -> bool {
    let def = fleet_def();
    let fleet = Fleet::with_config(DacceConfig {
        journal_ring_capacity: 1 << 14,
        ..DacceConfig::default()
    });
    let ids: Vec<TenantId> = (0..tenants)
        .map(|i| fleet.register(&format!("svc-{i:03}"), &def))
        .collect();
    // Enable journaling before worker threads register: writers capture
    // the gate at registration.
    for id in &ids {
        let tracker = fleet.tracker(*id).expect("tenant just registered");
        tracker.observability().set_journaling(true);
    }

    let iterations = ((opts.scale * 200_000.0) as u64).max(1_024);
    let started = Instant::now();
    let done = AtomicUsize::new(0);
    let mut pump = FleetPump::new();
    std::thread::scope(|scope| {
        for (i, id) in ids.iter().enumerate() {
            let tracker = fleet.tracker(*id).expect("tenant just registered");
            let def = &def;
            let done = &done;
            scope.spawn(move || {
                drive_tenant(&tracker, def, i, iterations);
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Maintenance + render loop. The first tenant (the founder, which
        // never diverges) drives the shared re-encode; the sweep bounds
        // adoption staleness for its siblings.
        while done.load(Ordering::Relaxed) < ids.len() {
            std::thread::sleep(Duration::from_millis(opts.interval_ms));
            let _ = fleet.reencode(ids[0]);
            let _ = fleet.poll();
            pump_tick(&fleet, &mut pump);
            if !opts.json {
                print!(
                    "\x1b[2J\x1b[H{}",
                    render_fleet(&fleet, &pump, started.elapsed())
                );
            }
        }
    });
    // Final maintenance pass + drain, so laggard adoptions and the last
    // journal entries land in the summary.
    let _ = fleet.reencode(ids[0]);
    let _ = fleet.poll();
    pump_tick(&fleet, &mut pump);
    let stats = fleet.fleet_stats();

    if opts.json {
        println!(
            "{{\"fleet\":{},\"registry\":{{\"tenants\":{},\"lineages\":{},\
             \"founded\":{},\"attached\":{},\"diverged\":{},\"adoptions\":{},\
             \"publishes\":{}}},\"iterations\":{iterations}}}",
            pump.to_json(),
            stats.tenants,
            stats.lineages,
            stats.founded,
            stats.attached,
            stats.diverged,
            stats.adoptions,
            stats.publishes
        );
    } else {
        println!("\x1b[2J\x1b[H");
        print!("{}", render_fleet(&fleet, &pump, started.elapsed()));
    }
    if let Some(path) = &opts.prom_out {
        write_creating_dirs(path, &pump.to_prometheus());
    }
    if let Some(path) = &opts.export_out {
        let founder = fleet.tracker(ids[0]).expect("founder registered");
        write_creating_dirs(path, &dacce::export_tracker_state(&founder));
    }
    if let Some(path) = &opts.flame_out {
        // One graph per tenant, all tagged with the shared program's
        // content hash: the fleet-wide merge key. merge_by_lineage folds
        // them into one graph per distinct encoding lineage.
        let lineage = def.content_hash();
        let graphs: Vec<FlameGraph> = fleet
            .tenants()
            .into_iter()
            .map(|(_, _, tracker)| {
                let profile = tracker.profiler_profile();
                flame_of_profile(&profile, lineage, |f| {
                    tracker.function_name(f).unwrap_or_else(|| f.to_string())
                })
            })
            .collect();
        let merged = merge_by_lineage(graphs);
        let text: String = merged.iter().map(FlameGraph::to_collapsed).collect();
        write_creating_dirs(path, &text);
    }

    let agg = pump.aggregate();
    if opts.require_reencodes && agg.reencodes == 0 {
        eprintln!("dacce-top: --require-reencodes: fleet recorded no re-encodes");
        return false;
    }
    if stats.lineages != 1 {
        eprintln!(
            "dacce-top: fleet of one program split into {} lineages",
            stats.lineages
        );
        return false;
    }
    true
}
