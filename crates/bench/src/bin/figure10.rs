//! Regenerates **Figure 10** of the paper: cumulative distributions of the
//! call-stack depth and the ccStack depth at sample points, for four
//! representative benchmarks.
//!
//! The paper's observations to reproduce: for most programs
//! (`459.GemsFDTD` is the exemplar) the ccStack is essentially always
//! empty while the call stack has moderate depth; `445.gobmk` has
//! non-trivial ccStack depth from frequent recursion; `483.xalancbmk` has
//! very deep call stacks (thousands of frames; ~7200 to cover 90% in the
//! paper) while compressed recursion keeps the ccStack orders of magnitude
//! shallower.
//!
//! ```text
//! cargo run -p dacce-bench --release --bin figure10 [-- --scale 1.0]
//! ```

use dacce_bench::Options;
use dacce_metrics::{Cdf, Table};
use dacce_workloads::{all_benchmarks, run_benchmark, DriverConfig};

const SELECTED: [&str; 4] = ["x264", "445.gobmk", "459.GemsFDTD", "483.xalancbmk"];

fn main() {
    let opts = Options::from_args();
    let cfg = DriverConfig {
        scale: opts.scale,
        ..DriverConfig::default()
    };

    let mut csv = Table::new(["benchmark", "kind", "depth", "cumulative"]);
    for name in SELECTED {
        let spec = all_benchmarks()
            .into_iter()
            .find(|s| s.name == name)
            .expect("selected benchmark exists");
        let out = run_benchmark(&spec, &cfg);

        let call_stack = Cdf::new(out.dacce_report.sample_depths.clone());
        let cc_stack = Cdf::new(out.dacce_stats.cc_depths.clone());

        println!("\nFigure 10 — {name}: cumulative stack-depth distributions");
        println!(
            "call stack: max {}, 50% at {}, 90% at {}, 99% at {}",
            call_stack.max(),
            call_stack.depth_covering(0.5),
            call_stack.depth_covering(0.9),
            call_stack.depth_covering(0.99),
        );
        println!(
            "ccStack (adaptive encoding): max {}, 50% at {}, 90% at {}, 99% at {}",
            cc_stack.max(),
            cc_stack.depth_covering(0.5),
            cc_stack.depth_covering(0.9),
            cc_stack.depth_covering(0.99),
        );

        let mut t = Table::new(["depth", "call stack", "ccStack"]);
        for (d, frac) in call_stack.series(12) {
            t.row([
                d.to_string(),
                format!("{:.1}%", frac * 100.0),
                format!("{:.1}%", cc_stack.at(d) * 100.0),
            ]);
        }
        println!("{}", t.render());

        for (kind, cdf) in [("call_stack", &call_stack), ("ccstack", &cc_stack)] {
            for (d, frac) in cdf.series(24) {
                csv.row([
                    name.to_string(),
                    kind.to_string(),
                    d.to_string(),
                    format!("{frac:.4}"),
                ]);
            }
        }
    }

    let path = opts.write_csv("figure10.csv", &csv.to_csv());
    println!("\nCSV written to {}", path.display());
}
