//! Automated paper-vs-measured verdicts: runs the full suite and checks
//! every qualitative claim of the paper's evaluation that this
//! reproduction targets (see `EXPERIMENTS.md`). Exits non-zero if any
//! claim fails, so it can serve as a reproduction CI gate.
//!
//! ```text
//! cargo run -p dacce-bench --release --bin claims [-- --scale 1.0]
//! ```

use dacce_bench::Options;
use dacce_metrics::{geomean, Table};
use dacce_workloads::{all_benchmarks, run_benchmark, BenchOutcome, DriverConfig};

struct Claims {
    table: Table,
    failures: usize,
}

impl Claims {
    fn new() -> Self {
        Claims {
            table: Table::new(["claim", "paper", "measured", "verdict"]),
            failures: 0,
        }
    }

    fn check(&mut self, claim: &str, paper: &str, measured: String, ok: bool) {
        if !ok {
            self.failures += 1;
        }
        self.table.row([
            claim.to_string(),
            paper.to_string(),
            measured,
            if ok { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
}

fn find<'a>(outs: &'a [BenchOutcome], name: &str) -> &'a BenchOutcome {
    outs.iter().find(|o| o.name == name).expect("benchmark ran")
}

fn main() {
    let opts = Options::from_args();
    let cfg = DriverConfig {
        scale: opts.scale,
        ..DriverConfig::default()
    };

    let mut outs = Vec::new();
    for spec in opts.select(all_benchmarks()) {
        eprintln!("running {}", spec.name);
        outs.push(run_benchmark(&spec, &cfg));
    }
    assert_eq!(
        outs.len(),
        41,
        "claims need the full suite (no --bench filter)"
    );

    let mut c = Claims::new();

    // --- correctness -----------------------------------------------------
    let invalid: Vec<&str> = outs
        .iter()
        .filter(|o| !o.fully_validated())
        .map(|o| o.name)
        .collect();
    c.check(
        "every sampled context decodes to the true context (§6.1 cross-validation)",
        "all benchmarks",
        if invalid.is_empty() {
            "all 41 validated".into()
        } else {
            format!("failed: {invalid:?}")
        },
        invalid.is_empty(),
    );

    // --- Table 1 ----------------------------------------------------------
    let overflowed: Vec<&str> = outs
        .iter()
        .filter(|o| o.pcce_stats.overflowed)
        .map(|o| o.name)
        .collect();
    c.check(
        "PCCE 64-bit encoding overflow",
        "400.perlbench, 403.gcc",
        format!("{overflowed:?}"),
        overflowed == ["400.perlbench", "403.gcc"],
    );

    let graph_smaller = outs
        .iter()
        .all(|o| o.dacce_graph.0 < o.pcce_stats.nodes && o.dacce_graph.1 < o.pcce_stats.edges);
    c.check(
        "DACCE graph (nodes, edges) smaller than PCCE's static graph",
        "all benchmarks",
        format!(
            "holds for {}/41",
            outs.iter()
                .filter(|o| o.dacce_graph.0 < o.pcce_stats.nodes
                    && o.dacce_graph.1 < o.pcce_stats.edges)
                .count()
        ),
        graph_smaller,
    );

    let maxid_smaller = outs
        .iter()
        .all(|o| u128::from(o.dacce_stats.max_max_id) < o.pcce_stats.max_num_cc.max(1));
    c.check(
        "DACCE needs less encoding space (maxID) than PCCE",
        "all benchmarks",
        format!(
            "holds for {}/41",
            outs.iter()
                .filter(|o| u128::from(o.dacce_stats.max_max_id) < o.pcce_stats.max_num_cc.max(1))
                .count()
        ),
        maxid_smaller,
    );

    for name in ["400.perlbench", "483.xalancbmk"] {
        let o = find(&outs, name);
        let (p, d) = o.ccstack_density();
        c.check(
            &format!("{name}: PCCE ccStack traffic exceeds DACCE's (false back edges)"),
            "PCCE > DACCE",
            format!("PCCE {p:.0}/M vs DACCE {d:.0}/M"),
            p > d,
        );
    }

    let dacce_reencodes = outs.iter().map(|o| o.dacce_stats.reencodes).sum::<u64>();
    c.check(
        "adaptive re-encoding fires on every benchmark (gTS >= 1)",
        "gTS 2..110 per benchmark",
        format!(
            "total {dacce_reencodes}, min {}",
            outs.iter()
                .map(|o| o.dacce_stats.reencodes)
                .min()
                .unwrap_or(0)
        ),
        outs.iter().all(|o| o.dacce_stats.reencodes >= 1),
    );

    // --- Figure 8 ----------------------------------------------------------
    let pcce_g = geomean(&outs.iter().map(|o| o.pcce_overhead()).collect::<Vec<_>>());
    let dacce_g = geomean(&outs.iter().map(|o| o.dacce_overhead()).collect::<Vec<_>>());
    // The cost model compresses the paper's 2.0%-vs-2.5% gap into a
    // near-tie, and the exact tie point depends on the workload stream of
    // the vendored RNG — a strict <= here flips on stream jitter rather
    // than real regressions. 5% relative tolerance keeps the claim's
    // teeth (DACCE must not be materially above PCCE).
    c.check(
        "geomean overhead: DACCE at or below PCCE (5% rel. tol.)",
        "2.0% vs 2.5%",
        format!("{:.2}% vs {:.2}%", dacce_g * 100.0, pcce_g * 100.0),
        dacce_g <= pcce_g * 1.05 + 1e-9,
    );
    c.check(
        "overheads are a few percent, not tens",
        "~2% geomean",
        format!("DACCE {:.2}%", dacce_g * 100.0),
        dacce_g < 0.10,
    );

    for name in ["400.perlbench", "483.xalancbmk", "x264"] {
        let o = find(&outs, name);
        c.check(
            &format!("{name}: PCCE overhead exceeds DACCE's"),
            "PCCE > DACCE (§6.4)",
            format!(
                "PCCE {:.2}% vs DACCE {:.2}%",
                o.pcce_overhead() * 100.0,
                o.dacce_overhead() * 100.0
            ),
            o.pcce_overhead() > o.dacce_overhead(),
        );
    }
    for name in ["458.sjeng", "433.milc", "434.zeusmp"] {
        let o = find(&outs, name);
        c.check(
            &format!("{name}: DACCE at or slightly above PCCE (dynamic-profiling cost)"),
            "DACCE >= PCCE, small",
            format!(
                "PCCE {:.2}% vs DACCE {:.2}%",
                o.pcce_overhead() * 100.0,
                o.dacce_overhead() * 100.0
            ),
            o.dacce_overhead() >= o.pcce_overhead()
                && o.dacce_overhead() - o.pcce_overhead() < 0.02,
        );
    }

    // --- Figure 9 ----------------------------------------------------------
    for name in ["445.gobmk", "483.xalancbmk", "458.sjeng", "433.milc"] {
        let o = find(&outs, name);
        let p = &o.dacce_stats.progress;
        let ok = if p.len() >= 4 {
            let mid = p[p.len() / 2].calls;
            let early_gap = mid / (p.len() as u64 / 2).max(1);
            let late_gap = p[p.len() - 1].calls - p[p.len() - 2].calls;
            late_gap > early_gap
        } else {
            false
        };
        c.check(
            &format!("{name}: re-encoding frequent early, rare at steady state"),
            "early burst, then steady (Fig. 9)",
            format!("{} re-encodings", p.len().saturating_sub(1)),
            ok,
        );
    }

    // --- Figure 10 ---------------------------------------------------------
    let xalan = find(&outs, "483.xalancbmk");
    let deep = xalan
        .dacce_report
        .sample_depths
        .iter()
        .copied()
        .max()
        .unwrap_or(0);
    c.check(
        "483.xalancbmk: call stacks thousands of frames deep",
        "90% coverage at ~7200",
        format!("max sampled depth {deep}"),
        deep > 1_000,
    );
    c.check(
        "483.xalancbmk: ccStack orders of magnitude shallower than the call stack",
        "mean depth 6.01",
        format!(
            "mean ccStack depth {:.2}",
            xalan.dacce_stats.mean_cc_depth()
        ),
        xalan.dacce_stats.mean_cc_depth() * 20.0 < f64::from(deep),
    );
    let gems = find(&outs, "459.GemsFDTD");
    c.check(
        "459.GemsFDTD: ccStack essentially always empty",
        "depth 0.01",
        format!("mean ccStack depth {:.2}", gems.dacce_stats.mean_cc_depth()),
        gems.dacce_stats.mean_cc_depth() < 0.5,
    );

    println!("\nPaper-vs-measured claim verdicts\n");
    println!("{}", c.table.render());
    let path = opts.write_csv("claims.csv", &c.table.to_csv());
    println!("CSV written to {}", path.display());
    if c.failures > 0 {
        eprintln!("{} claim(s) FAILED", c.failures);
        std::process::exit(1);
    }
    println!("all claims PASS");
}
