//! Shared plumbing for the table/figure binaries.
//!
//! Every binary accepts `--scale <f64>` (default 1.0) to multiply the
//! benchmark call budgets, `--out <dir>` (default `results/`) for CSV
//! output, and `--bench <substring>` to restrict the benchmark set.

use std::path::{Path, PathBuf};

use dacce_workloads::BenchSpec;

/// Parsed command-line options common to all experiment binaries.
#[derive(Clone, Debug)]
pub struct Options {
    /// Budget multiplier.
    pub scale: f64,
    /// Output directory for CSV artifacts.
    pub out: PathBuf,
    /// Substring filters on benchmark names (empty = all).
    pub filters: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 1.0,
            out: PathBuf::from("results"),
            filters: Vec::new(),
        }
    }
}

impl Options {
    /// Parses `std::env::args`, panicking with usage on malformed input.
    pub fn from_args() -> Options {
        let mut opts = Options::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    opts.scale = v.parse().expect("--scale needs a number");
                }
                "--out" => {
                    opts.out = PathBuf::from(args.next().expect("--out needs a dir"));
                }
                "--bench" => {
                    opts.filters
                        .push(args.next().expect("--bench needs a name"));
                }
                other => panic!("unknown argument {other}; use --scale/--out/--bench"),
            }
        }
        opts
    }

    /// Applies the name filters to a benchmark list.
    pub fn select(&self, specs: Vec<BenchSpec>) -> Vec<BenchSpec> {
        if self.filters.is_empty() {
            return specs;
        }
        specs
            .into_iter()
            .filter(|s| self.filters.iter().any(|f| s.name.contains(f)))
            .collect()
    }

    /// Writes a CSV artifact under the output directory.
    pub fn write_csv(&self, name: &str, content: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out).expect("create output dir");
        let path = self.out.join(name);
        std::fs::write(&path, content).expect("write CSV");
        path
    }
}

/// Formats a path for user-facing logs.
pub fn display_path(p: &Path) -> String {
    p.display().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dacce_workloads::all_benchmarks;

    #[test]
    fn filters_select_by_substring() {
        let opts = Options {
            filters: vec!["perl".into(), "x264".into()],
            ..Options::default()
        };
        let selected = opts.select(all_benchmarks());
        let names: Vec<&str> = selected.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["400.perlbench", "x264"]);
    }

    #[test]
    fn no_filters_selects_all() {
        let opts = Options::default();
        assert_eq!(opts.select(all_benchmarks()).len(), 41);
    }
}
