//! Continuous-profiler overhead on the tracker fast path,
//! `tracker_scale`-style: N threads hammering already-encoded call/return
//! pairs with the sampler (a) disabled (`profiler_stride = 0`, one branch
//! on a zero stride per call) and (b) enabled at the shipping defaults
//! (stride 509, budget-bounded rate controller), every fired sample
//! pushed into the lock-free profiler ring.
//!
//! The acceptance bar for the continuous profiler is that sampling-on
//! stays within 3% of sampling-off on this shape. Times itself (a per-op
//! ratio, not a statistical distribution) and writes
//! `results/profiler_overhead.csv` so regressions are diffable in-repo.
//! `DACCE_BENCH_QUICK=1` shrinks the run for CI smoke jobs.
//!
//! ```text
//! cargo bench -p dacce-bench --bench profiler_overhead
//! ```

use std::time::Instant;

use dacce::tracker::ThreadHandle;
use dacce::{DacceConfig, Tracker};
use dacce_callgraph::{CallSiteId, FunctionId};

const DEPTH: usize = 4;

fn quick() -> bool {
    std::env::var("DACCE_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn rounds_per_iter() -> usize {
    if quick() {
        500
    } else {
        2_000
    }
}

fn iters() -> usize {
    if quick() {
        5
    } else {
        30
    }
}

struct Prepared {
    tracker: Tracker,
    handles: Vec<ThreadHandle>,
    sites: Vec<Vec<CallSiteId>>,
    depth_fns: Vec<FunctionId>,
}

/// Same shape as `tracker_scale`: per-thread chains, pre-warmed so the
/// measured loop never traps. `stride` selects the sampler state.
fn prepare(threads: usize, stride: u64) -> Prepared {
    let tracker = Tracker::with_config(DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        profiler_stride: stride,
        ..DacceConfig::default()
    });
    let f_main = tracker.define_function("main");
    let worker_fns: Vec<FunctionId> = (0..threads)
        .map(|i| tracker.define_function(&format!("worker{i}")))
        .collect();
    let depth_fns: Vec<FunctionId> = (0..DEPTH)
        .map(|i| tracker.define_function(&format!("level{i}")))
        .collect();
    let spawn_site = tracker.define_call_site();
    let sites: Vec<Vec<CallSiteId>> = (0..threads)
        .map(|_| (0..DEPTH).map(|_| tracker.define_call_site()).collect())
        .collect();

    let main_th = tracker.register_thread(f_main);
    let handles: Vec<ThreadHandle> = (0..threads)
        .map(|w| tracker.register_spawned_thread(worker_fns[w], &main_th, spawn_site))
        .collect();

    for (w, th) in handles.iter().enumerate() {
        for _ in 0..4 {
            let mut guards = Vec::new();
            for d in 0..DEPTH {
                guards.push(th.call(sites[w][d], depth_fns[d]));
            }
            while let Some(g) = guards.pop() {
                drop(g);
            }
        }
    }

    Prepared {
        tracker,
        handles,
        sites,
        depth_fns,
    }
}

fn run_threads(p: &Prepared, rounds: usize) {
    crossbeam::scope(|scope| {
        for (w, th) in p.handles.iter().enumerate() {
            let sites = &p.sites[w];
            let depth_fns = &p.depth_fns;
            scope.spawn(move |_| {
                for _ in 0..rounds {
                    let mut guards = Vec::new();
                    for d in 0..DEPTH {
                        guards.push(th.call(sites[d], depth_fns[d]));
                    }
                    while let Some(g) = guards.pop() {
                        drop(g);
                    }
                }
            });
        }
    })
    .expect("bench threads complete");
}

/// Best-of-`iters()` per-op nanoseconds (minimum is the standard noise
/// rejection for throughput micro-benchmarks).
fn measure(p: &Prepared, threads: usize) -> f64 {
    let rounds = rounds_per_iter();
    let ops = (threads * rounds * DEPTH) as f64;
    let mut best = f64::INFINITY;
    for _ in 0..iters() {
        let t0 = Instant::now();
        run_threads(p, rounds);
        let ns = t0.elapsed().as_nanos() as f64 / ops;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn main() {
    let mut csv = String::from("threads,sampling,per_op_ns\n");
    println!("continuous-profiler overhead on the encoded tracker fast path");
    println!(
        "{:>8} {:>14} {:>14} {:>9}",
        "threads", "off ns/op", "on ns/op", "ratio"
    );
    for &threads in &[1usize, 2, 4] {
        // Separate trackers: the stride is a construction-time config.
        let p_off = prepare(threads, 0);
        let off = measure(&p_off, threads);
        let p_on = prepare(threads, DacceConfig::default().profiler_stride);
        let on = measure(&p_on, threads);
        assert_eq!(p_off.tracker.stats().decode_errors, 0);
        assert_eq!(p_on.tracker.stats().decode_errors, 0);
        // The enabled run must actually have sampled something.
        assert!(p_on.tracker.stats().profiler_samples > 0);

        println!(
            "{threads:>8} {off:>14.2} {on:>14.2} {:>9.3}",
            on / off.max(f64::MIN_POSITIVE)
        );
        use std::fmt::Write as _;
        let _ = writeln!(csv, "{threads},off,{off:.2}");
        let _ = writeln!(csv, "{threads},on,{on:.2}");
    }
    // `cargo bench` runs with the package as CWD; anchor on the manifest so
    // the CSV lands in the workspace-root `results/` like every other
    // artifact.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("profiler_overhead.csv"), csv)
        .expect("write profiler_overhead.csv");
    println!("wrote results/profiler_overhead.csv");
}
