//! Multithreaded tracker throughput: N OS threads hammering one `Tracker`
//! with call/return pairs over already-encoded edges. This is the bench
//! that makes the concurrency architecture visible: a tracker that
//! serializes every event through a shared lock flatlines (or worse) as
//! threads are added, while per-thread fast paths should scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dacce::tracker::ThreadHandle;
use dacce::{DacceConfig, Tracker};
use dacce_callgraph::{CallSiteId, FunctionId};

/// Call/return pairs ticked per thread per measured iteration. Large
/// enough to amortize the scoped-thread spawn/join overhead.
const ROUNDS_PER_ITER: usize = 2_000;
/// Nesting depth of each round (frames entered then unwound).
const DEPTH: usize = 4;

struct Prepared {
    tracker: Tracker,
    handles: Vec<ThreadHandle>,
    /// Per-thread chain of call sites (distinct static locations).
    sites: Vec<Vec<CallSiteId>>,
    depth_fns: Vec<FunctionId>,
}

/// Build a tracker whose per-thread edges are already discovered and
/// encoded, so the measured loop exercises only the encoded fast path.
fn prepare(threads: usize) -> Prepared {
    let tracker = Tracker::with_config(DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        ..DacceConfig::default()
    });
    let f_main = tracker.define_function("main");
    let worker_fns: Vec<FunctionId> = (0..threads)
        .map(|i| tracker.define_function(&format!("worker{i}")))
        .collect();
    let depth_fns: Vec<FunctionId> = (0..DEPTH)
        .map(|i| tracker.define_function(&format!("level{i}")))
        .collect();
    let spawn_site = tracker.define_call_site();
    let sites: Vec<Vec<CallSiteId>> = (0..threads)
        .map(|_| (0..DEPTH).map(|_| tracker.define_call_site()).collect())
        .collect();

    let main_th = tracker.register_thread(f_main);
    let handles: Vec<ThreadHandle> = (0..threads)
        .map(|w| tracker.register_spawned_thread(worker_fns[w], &main_th, spawn_site))
        .collect();

    // Warm every edge so the re-encoder folds them into the encoding; the
    // measured loop then never traps.
    for (w, th) in handles.iter().enumerate() {
        for _ in 0..4 {
            let mut guards = Vec::new();
            for d in 0..DEPTH {
                guards.push(th.call(sites[w][d], depth_fns[d]));
            }
            while let Some(g) = guards.pop() {
                drop(g);
            }
        }
    }

    Prepared {
        tracker,
        handles,
        sites,
        depth_fns,
    }
}

fn run_threads(p: &Prepared) {
    crossbeam::scope(|scope| {
        for (w, th) in p.handles.iter().enumerate() {
            let sites = &p.sites[w];
            let depth_fns = &p.depth_fns;
            scope.spawn(move |_| {
                for _ in 0..ROUNDS_PER_ITER {
                    let mut guards = Vec::new();
                    for d in 0..DEPTH {
                        guards.push(th.call(sites[d], depth_fns[d]));
                    }
                    while let Some(g) = guards.pop() {
                        drop(g);
                    }
                }
            });
        }
    })
    .expect("bench threads complete");
}

fn bench_tracker_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracker/encoded_call_return");
    for &threads in &[1usize, 2, 4, 8] {
        let p = prepare(threads);
        // One element = one call+return pair.
        group.throughput(Throughput::Elements(
            (threads * ROUNDS_PER_ITER * DEPTH) as u64,
        ));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| run_threads(&p));
        });
        // Quietly verify the fast path stayed trap-free while measuring.
        let stats = p.tracker.stats();
        assert_eq!(stats.decode_errors, 0);
    }
    group.finish();
}

criterion_group!(benches, bench_tracker_scale);
criterion_main!(benches);
