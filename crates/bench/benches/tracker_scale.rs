//! Multithreaded tracker throughput: N OS threads hammering one `Tracker`
//! with call/return pairs over already-encoded edges, through both drive
//! APIs:
//!
//! * `guard` — one RAII [`dacce::tracker::CallGuard`] per call, the
//!   drop-in instrumentation shape. Every event pays the thread-slot
//!   lock, snapshot refresh and journal gate.
//! * `batch` — [`ThreadHandle::run_batch`] over pre-built
//!   [`BatchOp`] programs. Slot lock, snapshot load and journal gate are
//!   hoisted out of the per-op loop, which is what the flat dispatch
//!   table was built for.
//!
//! Times itself (the acceptance criterion is a per-op cost, not a
//! statistical distribution) and writes `results/tracker_scale.csv`;
//! compare against `results/tracker_scale_baseline.csv` (the hash-probed
//! pre-dispatch-table numbers). `DACCE_BENCH_QUICK=1` shrinks the run for
//! CI smoke jobs.
//!
//! ```text
//! cargo bench -p dacce-bench --bench tracker_scale
//! ```

use std::time::Instant;

use dacce::tracker::{BatchOp, ThreadHandle};
use dacce::{DacceConfig, Tracker};
use dacce_callgraph::{CallSiteId, FunctionId};

/// Nesting depth of each round (frames entered then unwound).
const DEPTH: usize = 4;
/// Rounds folded into one `run_batch` call (`2 * DEPTH` ops each).
const ROUNDS_PER_BATCH: usize = 16;

fn quick() -> bool {
    std::env::var("DACCE_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Call/return pairs ticked per thread per measured iteration. Large
/// enough to amortize the scoped-thread spawn/join overhead; a multiple
/// of [`ROUNDS_PER_BATCH`] so both variants do identical work.
fn rounds_per_iter() -> usize {
    if quick() {
        ROUNDS_PER_BATCH * 10
    } else {
        ROUNDS_PER_BATCH * 125
    }
}

fn iters() -> usize {
    if quick() {
        3
    } else {
        30
    }
}

struct Prepared {
    tracker: Tracker,
    handles: Vec<ThreadHandle>,
    /// Per-thread chain of call sites (distinct static locations).
    sites: Vec<Vec<CallSiteId>>,
    depth_fns: Vec<FunctionId>,
    /// Per-thread pre-built batch program: `ROUNDS_PER_BATCH` rounds of
    /// `DEPTH` calls then `DEPTH` returns.
    batches: Vec<Vec<BatchOp>>,
}

/// Build a tracker whose per-thread edges are already discovered and
/// encoded, so the measured loop exercises only the encoded fast path.
fn prepare(threads: usize) -> Prepared {
    let tracker = Tracker::with_config(DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        ..DacceConfig::default()
    });
    let f_main = tracker.define_function("main");
    let worker_fns: Vec<FunctionId> = (0..threads)
        .map(|i| tracker.define_function(&format!("worker{i}")))
        .collect();
    let depth_fns: Vec<FunctionId> = (0..DEPTH)
        .map(|i| tracker.define_function(&format!("level{i}")))
        .collect();
    let spawn_site = tracker.define_call_site();
    let sites: Vec<Vec<CallSiteId>> = (0..threads)
        .map(|_| (0..DEPTH).map(|_| tracker.define_call_site()).collect())
        .collect();

    let main_th = tracker.register_thread(f_main);
    let handles: Vec<ThreadHandle> = (0..threads)
        .map(|w| tracker.register_spawned_thread(worker_fns[w], &main_th, spawn_site))
        .collect();

    // Warm every edge so the re-encoder folds them into the encoding; the
    // measured loop then never traps.
    for (w, th) in handles.iter().enumerate() {
        for _ in 0..4 {
            let mut guards = Vec::new();
            for d in 0..DEPTH {
                guards.push(th.call(sites[w][d], depth_fns[d]));
            }
            while let Some(g) = guards.pop() {
                drop(g);
            }
        }
    }

    let batches: Vec<Vec<BatchOp>> = (0..threads)
        .map(|w| {
            let mut ops = Vec::with_capacity(ROUNDS_PER_BATCH * 2 * DEPTH);
            for _ in 0..ROUNDS_PER_BATCH {
                for d in 0..DEPTH {
                    ops.push(BatchOp::Call {
                        site: sites[w][d],
                        target: depth_fns[d],
                    });
                }
                for _ in 0..DEPTH {
                    ops.push(BatchOp::Ret);
                }
            }
            ops
        })
        .collect();

    Prepared {
        tracker,
        handles,
        sites,
        depth_fns,
        batches,
    }
}

fn run_threads_guard(p: &Prepared, rounds: usize) {
    crossbeam::scope(|scope| {
        for (w, th) in p.handles.iter().enumerate() {
            let sites = &p.sites[w];
            let depth_fns = &p.depth_fns;
            scope.spawn(move |_| {
                for _ in 0..rounds {
                    let mut guards = Vec::new();
                    for d in 0..DEPTH {
                        guards.push(th.call(sites[d], depth_fns[d]));
                    }
                    while let Some(g) = guards.pop() {
                        drop(g);
                    }
                }
            });
        }
    })
    .expect("bench threads complete");
}

fn run_threads_batch(p: &Prepared, rounds: usize) {
    let calls = rounds / ROUNDS_PER_BATCH;
    crossbeam::scope(|scope| {
        for (w, th) in p.handles.iter().enumerate() {
            let ops = &p.batches[w];
            scope.spawn(move |_| {
                for _ in 0..calls {
                    th.run_batch(ops).expect("balanced batch");
                }
            });
        }
    })
    .expect("bench threads complete");
}

/// Best-of-`iters()` per-op nanoseconds (minimum is the standard noise
/// rejection for throughput micro-benchmarks). One op = one call+return
/// pair.
fn measure(p: &Prepared, threads: usize, run: impl Fn(&Prepared, usize)) -> f64 {
    let rounds = rounds_per_iter();
    let ops = (threads * rounds * DEPTH) as f64;
    let mut best = f64::INFINITY;
    for _ in 0..iters() {
        let t0 = Instant::now();
        run(p, rounds);
        let ns = t0.elapsed().as_nanos() as f64 / ops;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn main() {
    let mut csv = String::from("threads,variant,per_op_ns\n");
    println!("tracker encoded call/return per-op cost (guard vs batch drive)");
    println!(
        "{:>8} {:>14} {:>14} {:>9}",
        "threads", "guard ns/op", "batch ns/op", "speedup"
    );
    for &threads in &[1usize, 2, 4, 8] {
        let p = prepare(threads);
        let guard = measure(&p, threads, run_threads_guard);
        let batch = measure(&p, threads, run_threads_batch);
        // Quietly verify the fast path stayed trap-free while measuring.
        let stats = p.tracker.stats();
        assert_eq!(stats.decode_errors, 0);

        println!(
            "{threads:>8} {guard:>14.2} {batch:>14.2} {:>8.2}x",
            guard / batch.max(f64::MIN_POSITIVE)
        );
        use std::fmt::Write as _;
        let _ = writeln!(csv, "{threads},guard,{guard:.2}");
        let _ = writeln!(csv, "{threads},batch,{batch:.2}");
    }
    // `cargo bench` runs with the package as CWD; anchor on the manifest so
    // the CSV lands in the workspace-root `results/` like every other
    // artifact.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("tracker_scale.csv"), csv).expect("write tracker_scale.csv");
    println!("wrote results/tracker_scale.csv");
}
