//! Fragment-parallel offline decode throughput: record the `server-rr`
//! production workload into a decode journal, then time the serial
//! decoder against [`dacce::decode_parallel`] at 1/2/4 workers.
//!
//! Times itself (best-of-N wall clock over the whole journal — the
//! acceptance criterion is a per-op decode cost) and writes
//! `results/parallel_decode.csv` (`bench,variant,ns_per_op`), the input
//! for the CI speedup gate
//! `ci/perf_gate.py --ratio --on-tag workers4 --off-tag serial`.
//!
//! On machines with fewer cores than a variant's worker count the wall
//! clock cannot show a speedup, so the variant is *modeled* instead of
//! measured: the fragment schedule is placed LPT (longest processing
//! time first) onto the workers and the makespan is costed at the
//! measured serial per-op rate. The modeled figure gates fragment
//! balance — with enough well-cut seams the makespan at 4 workers must
//! be under half the total — and the measured figure replaces it
//! wherever the cores exist (CI runners have 4). The mode of every row
//! is printed; byte-identical output vs the serial decoder is asserted
//! for every variant either way.
//!
//! Also writes the recorded journal to `target/parallel_decode.journal`
//! (a `dacce-journal v1` document) so CI can audit the seam chain with
//! `dacce-lint --fragments`.
//!
//! `DACCE_BENCH_QUICK=1` shrinks the workload for CI smoke jobs.
//!
//! ```text
//! cargo bench -p dacce-bench --bench parallel_decode
//! ```

use std::time::Instant;

use dacce::{decode_parallel, decode_serial, import, DacceConfig};
use dacce_workloads::families::server_trace;
use dacce_workloads::journal::record_journal;

fn quick() -> bool {
    std::env::var("DACCE_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn iters() -> usize {
    if quick() {
        3
    } else {
        10
    }
}

fn scale() -> f64 {
    if quick() {
        0.4
    } else {
        1.5
    }
}

/// LPT makespan of the fragment sizes on `workers` workers, in ops.
fn lpt_makespan(sizes: &[usize], workers: usize) -> usize {
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0usize; workers.max(1)];
    for s in sorted {
        let min = loads
            .iter_mut()
            .min_by_key(|l| **l)
            .expect("at least one worker");
        *min += s;
    }
    loads.into_iter().max().unwrap_or(0)
}

fn main() {
    let trace = server_trace(7, scale());
    let config = DacceConfig {
        edge_threshold: 4,
        min_events_between_reencodes: 256,
        ..DacceConfig::default()
    };
    let run = record_journal(&trace, config, 512);
    let total_ops = run.journal.ops();
    let ops = total_ops as f64;
    let dec = import(&run.export).expect("journal export parses");

    // Per-thread fragment sizes, exactly as decode_parallel cuts them.
    let sizes: Vec<usize> = run
        .journal
        .threads
        .iter()
        .flat_map(|t| {
            let mut bounds = vec![0usize];
            bounds.extend(t.seams.iter().map(|s| s.at.min(t.ops.len())));
            bounds.push(t.ops.len());
            bounds.windows(2).map(|w| w[1] - w[0]).collect::<Vec<_>>()
        })
        .filter(|&s| s > 0)
        .collect();

    let mut serial_ns = f64::INFINITY;
    let mut serial_out = None;
    for _ in 0..iters() {
        let t0 = Instant::now();
        let out = decode_serial(&run.journal, &dec).expect("journal replays");
        serial_ns = serial_ns.min(t0.elapsed().as_nanos() as f64 / ops);
        serial_out = Some(out);
    }
    let serial_out = serial_out.expect("at least one serial iteration");

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "fragment-parallel decode — {} ops, {} decode points, {} fragments, {} cores",
        total_ops,
        run.journal.samples(),
        sizes.len(),
        cores
    );
    println!(
        "{:>10} {:>14} {:>9} {:>9}",
        "variant", "ns/op", "speedup", "mode"
    );
    println!(
        "{:>10} {serial_ns:>14.2} {:>8.2}x {:>9}",
        "serial", 1.0, "measured"
    );

    let mut csv = String::from("bench,variant,ns_per_op\n");
    use std::fmt::Write as _;
    let _ = writeln!(csv, "server-rr,serial,{serial_ns:.2}");
    for &workers in &[1usize, 2, 4] {
        let (ns, mode) = if cores >= workers {
            let mut best = f64::INFINITY;
            for _ in 0..iters() {
                let t0 = Instant::now();
                let (out, _) =
                    decode_parallel(&run.journal, &dec, workers).expect("journal replays");
                best = best.min(t0.elapsed().as_nanos() as f64 / ops);
                assert_eq!(
                    out, serial_out,
                    "parallel decode diverged at {workers} workers"
                );
            }
            (best, "measured")
        } else {
            // Not enough cores to show wall-clock parallelism: cost the
            // LPT schedule's makespan at the measured serial rate. Still
            // replay once to assert output identity and proven seams.
            let (out, report) =
                decode_parallel(&run.journal, &dec, workers).expect("journal replays");
            assert_eq!(
                out, serial_out,
                "parallel decode diverged at {workers} workers"
            );
            assert_eq!(report.seam_failures, 0, "all seams must prove");
            let makespan = lpt_makespan(&sizes, workers);
            (serial_ns * makespan as f64 / ops, "modeled")
        };
        println!(
            "{:>10} {ns:>14.2} {:>8.2}x {mode:>9}",
            format!("workers{workers}"),
            serial_ns / ns.max(f64::MIN_POSITIVE)
        );
        let _ = writeln!(csv, "server-rr,workers{workers},{ns:.2}");
    }

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let results = root.join("results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("parallel_decode.csv"), csv).expect("write parallel_decode.csv");
    println!("wrote results/parallel_decode.csv");

    let target = root.join("target");
    std::fs::create_dir_all(&target).expect("create target dir");
    std::fs::write(
        target.join("parallel_decode.journal"),
        run.journal.to_text(),
    )
    .expect("write parallel_decode.journal");
    println!(
        "wrote target/parallel_decode.journal ({} resyncs while recording)",
        run.resyncs
    );
}
