//! End-to-end wall-clock benchmark: the interpreter running one workload
//! under the null runtime, DACCE and PCCE. This is the real-time
//! counterpart of the cost-model overheads in `figure8` — the *relative*
//! times here cross-check the model's orderings.

use criterion::{criterion_group, criterion_main, Criterion};

use dacce::DacceRuntime;
use dacce_pcce::{PcceRuntime, ProfilingRuntime};
use dacce_program::runtime::NullRuntime;
use dacce_program::{CostModel, Interpreter};
use dacce_workloads::{driver, BenchSpec, DriverConfig};

fn spec() -> BenchSpec {
    BenchSpec {
        budget_calls: 30_000,
        ..BenchSpec::tiny("bench-overhead", 77)
    }
}

fn bench_null(c: &mut Criterion) {
    let spec = spec();
    let program = driver::program_of(&spec);
    let cfg = driver::interp_config(&spec, &DriverConfig::default());
    c.bench_function("endtoend/null", |b| {
        b.iter(|| Interpreter::new(&program, cfg.clone()).run(&mut NullRuntime::default()));
    });
}

fn bench_dacce(c: &mut Criterion) {
    let spec = spec();
    let program = driver::program_of(&spec);
    let cfg = driver::interp_config(&spec, &DriverConfig::default());
    c.bench_function("endtoend/dacce", |b| {
        b.iter(|| {
            let mut rt = DacceRuntime::with_defaults();
            Interpreter::new(&program, cfg.clone()).run(&mut rt)
        });
    });
}

fn bench_pcce(c: &mut Criterion) {
    let spec = spec();
    let program = driver::program_of(&spec);
    let cfg = driver::interp_config(&spec, &DriverConfig::default());
    let mut profiler = ProfilingRuntime::new();
    let _ = Interpreter::new(&program, cfg.clone()).run(&mut profiler);
    let profile = profiler.into_data();
    c.bench_function("endtoend/pcce", |b| {
        b.iter(|| {
            let mut rt = PcceRuntime::new(profile.clone(), CostModel::default());
            Interpreter::new(&program, cfg.clone()).run(&mut rt)
        });
    });
}

criterion_group!(benches, bench_null, bench_dacce, bench_pcce);
criterion_main!(benches);
