//! Superop throughput: the batch drive of `tracker_scale` with the hot
//! round compiled into a single superop, off vs on at 1/2/4/8 threads.
//!
//! Same program shape as `tracker_scale`'s `batch` variant — N OS threads
//! each replaying `ROUNDS_PER_BATCH` rounds of `DEPTH` calls then `DEPTH`
//! returns per `run_batch` call over already-encoded edges — so the `off`
//! rows are directly comparable to `results/tracker_scale.csv`. The `on`
//! rows install superops mined from the exact batch programs the threads
//! replay, so every round executes as one table probe plus a memoized net
//! effect instead of `2 * DEPTH` per-event iterations.
//!
//! Times itself (the acceptance criterion is a per-op cost) and writes
//! `results/superops.csv` with a trailing informational hit-rate column;
//! the CI perf-smoke job gates `on` against `off` with
//! `perf_gate.py --ratio --key-cols 2` so path memoization may never
//! regress the plain batch drive by more than 3%.
//! `DACCE_BENCH_QUICK=1` shrinks the run for CI smoke jobs.
//!
//! ```text
//! cargo bench -p dacce-bench --bench superops
//! ```

use std::time::Instant;

use dacce::tracker::{BatchOp, ThreadHandle};
use dacce::{DacceConfig, Tracker};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_workloads::mine_windows;

/// Nesting depth of each round (frames entered then unwound).
const DEPTH: usize = 4;
/// Rounds folded into one `run_batch` call (`2 * DEPTH` ops each).
const ROUNDS_PER_BATCH: usize = 16;

fn quick() -> bool {
    std::env::var("DACCE_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Call/return pairs ticked per thread per measured iteration; a multiple
/// of [`ROUNDS_PER_BATCH`] so both variants do identical work.
fn rounds_per_iter() -> usize {
    if quick() {
        ROUNDS_PER_BATCH * 10
    } else {
        ROUNDS_PER_BATCH * 125
    }
}

fn iters() -> usize {
    if quick() {
        3
    } else {
        30
    }
}

struct Prepared {
    tracker: Tracker,
    handles: Vec<ThreadHandle>,
    /// Per-thread pre-built batch program: `ROUNDS_PER_BATCH` rounds of
    /// `DEPTH` calls then `DEPTH` returns.
    batches: Vec<Vec<BatchOp>>,
}

/// Builds a tracker whose per-thread edges are already discovered and
/// encoded; with `superops` on, the hot rounds are mined from the batch
/// programs themselves and compiled into the published table.
fn prepare(threads: usize, superops: bool) -> Prepared {
    let config = DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        superops_enabled: superops,
        ..DacceConfig::default()
    };
    let max_window = config.superop_max_window;
    let max_table = config.superop_max_table;
    let tracker = Tracker::with_config(config);
    let f_main = tracker.define_function("main");
    let worker_fns: Vec<FunctionId> = (0..threads)
        .map(|i| tracker.define_function(&format!("worker{i}")))
        .collect();
    let depth_fns: Vec<FunctionId> = (0..DEPTH)
        .map(|i| tracker.define_function(&format!("level{i}")))
        .collect();
    let spawn_site = tracker.define_call_site();
    let sites: Vec<Vec<CallSiteId>> = (0..threads)
        .map(|_| (0..DEPTH).map(|_| tracker.define_call_site()).collect())
        .collect();

    let main_th = tracker.register_thread(f_main);
    let handles: Vec<ThreadHandle> = (0..threads)
        .map(|w| tracker.register_spawned_thread(worker_fns[w], &main_th, spawn_site))
        .collect();

    // Warm every edge so the re-encoder folds them into the encoding; the
    // measured loop then never traps.
    for (w, th) in handles.iter().enumerate() {
        for _ in 0..4 {
            let mut guards = Vec::new();
            for d in 0..DEPTH {
                guards.push(th.call(sites[w][d], depth_fns[d]));
            }
            while let Some(g) = guards.pop() {
                drop(g);
            }
        }
    }

    let batches: Vec<Vec<BatchOp>> = (0..threads)
        .map(|w| {
            let mut ops = Vec::with_capacity(ROUNDS_PER_BATCH * 2 * DEPTH);
            for _ in 0..ROUNDS_PER_BATCH {
                for d in 0..DEPTH {
                    ops.push(BatchOp::Call {
                        site: sites[w][d],
                        target: depth_fns[d],
                    });
                }
                for _ in 0..DEPTH {
                    ops.push(BatchOp::Ret);
                }
            }
            ops
        })
        .collect();

    if superops {
        let refs: Vec<&[BatchOp]> = batches.iter().map(Vec::as_slice).collect();
        let candidates = mine_windows(&refs, max_window, max_table, |_| 0);
        let installed = tracker.install_superops(&candidates);
        assert!(installed > 0, "hot rounds must compile");
    }

    Prepared {
        tracker,
        handles,
        batches,
    }
}

fn run_threads(p: &Prepared, rounds: usize) {
    let calls = rounds / ROUNDS_PER_BATCH;
    crossbeam::scope(|scope| {
        for (w, th) in p.handles.iter().enumerate() {
            let ops = &p.batches[w];
            scope.spawn(move |_| {
                for _ in 0..calls {
                    th.run_batch(ops).expect("balanced batch");
                }
            });
        }
    })
    .expect("bench threads complete");
}

/// Best-of-`iters()` per-op nanoseconds; one op = one call+return pair
/// (the same unit as `tracker_scale.csv`).
fn measure(p: &Prepared, threads: usize) -> f64 {
    let rounds = rounds_per_iter();
    let ops = (threads * rounds * DEPTH) as f64;
    let mut best = f64::INFINITY;
    for _ in 0..iters() {
        let t0 = Instant::now();
        run_threads(p, rounds);
        let ns = t0.elapsed().as_nanos() as f64 / ops;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn main() {
    let mut csv = String::from("threads,variant,per_op_ns,hit_rate\n");
    println!("tracker batch drive per-op cost (superops off vs on)");
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>9}",
        "threads", "off ns/op", "on ns/op", "speedup", "hit rate"
    );
    for &threads in &[1usize, 2, 4, 8] {
        let mut rates = [0.0f64; 2];
        let mut times = [0.0f64; 2];
        for (i, superops) in [false, true].into_iter().enumerate() {
            let p = prepare(threads, superops);
            times[i] = measure(&p, threads);
            let stats = p.tracker.stats();
            assert_eq!(stats.decode_errors, 0);
            let probes = stats.superop_hits + stats.superop_misses;
            rates[i] = if probes == 0 {
                0.0
            } else {
                stats.superop_hits as f64 / probes as f64
            };
            if superops {
                assert!(stats.superop_hits > 0, "measured loop must hit");
            }
        }
        let [off, on] = times;
        println!(
            "{threads:>8} {off:>12.2} {on:>12.2} {:>8.2}x {:>9.2}",
            off / on.max(f64::MIN_POSITIVE),
            rates[1]
        );
        use std::fmt::Write as _;
        let _ = writeln!(csv, "{threads},off,{off:.2},{:.4}", rates[0]);
        let _ = writeln!(csv, "{threads},on,{on:.2},{:.4}", rates[1]);
    }
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("superops.csv"), csv).expect("write superops.csv");
    println!("wrote results/superops.csv");
}
