//! Journaling overhead on the tracker fast path, `tracker_scale`-style:
//! N threads hammering already-encoded call/return pairs with the event
//! journal (a) compiled in but disabled — the default shipping state, one
//! relaxed load on ccStack paths and nothing at all on encoded arithmetic
//! paths — and (b) enabled, every ccStack push/pop journaled.
//!
//! Times itself (the acceptance criterion is a per-op ratio, not a
//! statistical distribution) and appends the numbers to
//! `results/obs_overhead.csv` so regressions are diffable in-repo:
//!
//! ```text
//! cargo bench -p dacce-bench --bench obs_overhead
//! ```

use std::time::Instant;

use dacce::tracker::ThreadHandle;
use dacce::{DacceConfig, Tracker};
use dacce_callgraph::{CallSiteId, FunctionId};

const ROUNDS_PER_ITER: usize = 2_000;
const DEPTH: usize = 4;
const ITERS: usize = 30;

struct Prepared {
    tracker: Tracker,
    handles: Vec<ThreadHandle>,
    sites: Vec<Vec<CallSiteId>>,
    depth_fns: Vec<FunctionId>,
}

/// Same shape as `tracker_scale`: per-thread chains, pre-warmed so the
/// measured loop never traps.
fn prepare(threads: usize) -> Prepared {
    let tracker = Tracker::with_config(DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        // Big enough that an enabled journal never hits the overwrite
        // path mid-measurement (ring cost, not drop accounting).
        journal_ring_capacity: 1 << 16,
        ..DacceConfig::default()
    });
    let f_main = tracker.define_function("main");
    let worker_fns: Vec<FunctionId> = (0..threads)
        .map(|i| tracker.define_function(&format!("worker{i}")))
        .collect();
    let depth_fns: Vec<FunctionId> = (0..DEPTH)
        .map(|i| tracker.define_function(&format!("level{i}")))
        .collect();
    let spawn_site = tracker.define_call_site();
    let sites: Vec<Vec<CallSiteId>> = (0..threads)
        .map(|_| (0..DEPTH).map(|_| tracker.define_call_site()).collect())
        .collect();

    let main_th = tracker.register_thread(f_main);
    let handles: Vec<ThreadHandle> = (0..threads)
        .map(|w| tracker.register_spawned_thread(worker_fns[w], &main_th, spawn_site))
        .collect();

    for (w, th) in handles.iter().enumerate() {
        for _ in 0..4 {
            let mut guards = Vec::new();
            for d in 0..DEPTH {
                guards.push(th.call(sites[w][d], depth_fns[d]));
            }
            while let Some(g) = guards.pop() {
                drop(g);
            }
        }
    }

    Prepared {
        tracker,
        handles,
        sites,
        depth_fns,
    }
}

fn run_threads(p: &Prepared) {
    crossbeam::scope(|scope| {
        for (w, th) in p.handles.iter().enumerate() {
            let sites = &p.sites[w];
            let depth_fns = &p.depth_fns;
            scope.spawn(move |_| {
                for _ in 0..ROUNDS_PER_ITER {
                    let mut guards = Vec::new();
                    for d in 0..DEPTH {
                        guards.push(th.call(sites[d], depth_fns[d]));
                    }
                    while let Some(g) = guards.pop() {
                        drop(g);
                    }
                }
            });
        }
    })
    .expect("bench threads complete");
}

/// Best-of-`ITERS` per-op nanoseconds (minimum is the standard noise
/// rejection for throughput micro-benchmarks).
fn measure(p: &Prepared, threads: usize) -> f64 {
    let ops = (threads * ROUNDS_PER_ITER * DEPTH) as f64;
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        run_threads(p);
        let ns = t0.elapsed().as_nanos() as f64 / ops;
        if ns < best {
            best = ns;
        }
        // Keep an enabled journal from accumulating unboundedly.
        let _ = p.tracker.observability().drain_journal();
    }
    best
}

fn main() {
    let mut csv = String::from("threads,journal,per_op_ns\n");
    println!("journaling overhead on the encoded tracker fast path");
    println!(
        "{:>8} {:>14} {:>14} {:>9}",
        "threads", "off ns/op", "on ns/op", "ratio"
    );
    for &threads in &[1usize, 2, 4] {
        let p = prepare(threads);
        // Journal compiled in, runtime-disabled (the shipping default).
        p.tracker.observability().set_journaling(false);
        let off = measure(&p, threads);
        // Runtime-enabled: every ccStack push/pop journaled.
        p.tracker.observability().set_journaling(true);
        let on = measure(&p, threads);
        p.tracker.observability().set_journaling(false);
        assert_eq!(p.tracker.stats().decode_errors, 0);

        println!(
            "{threads:>8} {off:>14.2} {on:>14.2} {:>9.3}",
            on / off.max(f64::MIN_POSITIVE)
        );
        use std::fmt::Write as _;
        let _ = writeln!(csv, "{threads},off,{off:.2}");
        let _ = writeln!(csv, "{threads},on,{on:.2}");
    }
    // `cargo bench` runs with the package as CWD; anchor on the manifest so
    // the CSV lands in the workspace-root `results/` like every other
    // artifact.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("obs_overhead.csv"), csv).expect("write obs_overhead.csv");
    println!("wrote results/obs_overhead.csv");
}
