//! Criterion benchmarks of Algorithm 1: decoding encoded contexts of
//! varying shapes back into calling contexts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dacce::{DacceConfig, DacceEngine};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::CallDispatch;
use dacce_program::{CostModel, ThreadId};

fn f(i: u32) -> FunctionId {
    FunctionId::new(i)
}
fn s(i: u32) -> CallSiteId {
    CallSiteId::new(i)
}

/// Builds an engine holding a live chain context of the given depth, all
/// encoded (one re-encode), and returns it with the snapshot.
fn chain_engine(depth: u32) -> (DacceEngine, dacce::EncodedContext) {
    let cfg = DacceConfig {
        edge_threshold: 4,
        min_events_between_reencodes: 1,
        ..DacceConfig::default()
    };
    let mut e = DacceEngine::new(cfg, CostModel::default());
    e.attach_main(f(0));
    e.thread_start(ThreadId::MAIN, f(0), None);
    for i in 0..depth {
        e.call(
            ThreadId::MAIN,
            s(i),
            f(i),
            f(i + 1),
            CallDispatch::Direct,
            false,
        );
    }
    let snap = e.snapshot(ThreadId::MAIN);
    (e, snap)
}

/// Deep self-recursion with compression: constant-size ccStack no matter
/// the logical depth.
fn compressed_engine(depth: u32) -> (DacceEngine, dacce::EncodedContext) {
    let cfg = DacceConfig {
        edge_threshold: 2,
        min_events_between_reencodes: 1,
        compression_min_heat: 1,
        ..DacceConfig::default()
    };
    let mut e = DacceEngine::new(cfg, CostModel::default());
    e.attach_main(f(0));
    e.thread_start(ThreadId::MAIN, f(0), None);
    e.call(
        ThreadId::MAIN,
        s(0),
        f(0),
        f(1),
        CallDispatch::Direct,
        false,
    );
    for _ in 0..depth {
        e.call(
            ThreadId::MAIN,
            s(1),
            f(1),
            f(1),
            CallDispatch::Direct,
            false,
        );
    }
    let snap = e.snapshot(ThreadId::MAIN);
    (e, snap)
}

fn bench_decode_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/encoded_chain");
    for depth in [8u32, 64, 512] {
        let (e, snap) = chain_engine(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| e.decode(&snap).expect("decodes"));
        });
    }
    group.finish();
}

fn bench_decode_compressed_recursion(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode/compressed_recursion");
    for depth in [64u32, 1024, 8192] {
        let (e, snap) = compressed_engine(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| e.decode(&snap).expect("decodes"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_chain,
    bench_decode_compressed_recursion
);
criterion_main!(benches);
