//! Multi-tenant fleet cost: per-op overhead of running a tracker inside a
//! [`dacce_fleet::Fleet`] of N tenants sharing one content-addressed
//! encoding lineage, versus the same workload on a standalone tracker.
//!
//! Three things are measured/checked:
//!
//! * **Cold-start traps for the Nth tenant** — a tenant attaching to an
//!   existing lineage adopts the founder's warm encoding wholesale, so a
//!   full walk over the defined edges must trap zero times. Recorded as
//!   the `cold_traps` row (and asserted); the perf gate then pins it to
//!   zero (any baseline-zero variant that comes back non-zero fails).
//! * **Per-op cost at fleet scale** — batched encoded call/return pairs
//!   driven on the last-registered tenant while the whole fleet is
//!   resident. The acceptance bar is within 10% of the standalone twin
//!   (compare with the `batch` rows of `results/tracker_scale.csv`).
//! * **Shared-state footprint** — attached tenants hold `Arc`s to the
//!   lineage's dictionaries/graph/owner table rather than copies; the
//!   bench prints the lineage count (always 1) as the witness.
//!
//! Times itself (best-of-K per-op nanoseconds, same protocol as
//! `tracker_scale`) and writes `results/tracker_fleet.csv`.
//! `DACCE_BENCH_QUICK=1` shrinks iteration counts for CI smoke jobs; the
//! tenant ladder stays identical so the perf-gate variant keys match.
//!
//! ```text
//! cargo bench -p dacce-bench --bench tracker_fleet
//! ```

use std::time::Instant;

use dacce::tracker::BatchOp;
use dacce::{DacceConfig, Tracker};
use dacce_fleet::{DefEdge, Fleet, ProgramDef};

/// Nesting depth of each round (frames entered then unwound).
const DEPTH: usize = 4;
/// Rounds folded into one `run_batch` call (`2 * DEPTH` ops each).
const ROUNDS_PER_BATCH: usize = 16;
/// Tenant-count ladder; identical in quick mode so gate keys line up.
const LADDER: [usize; 4] = [1, 8, 64, 1000];

fn quick() -> bool {
    std::env::var("DACCE_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn rounds_per_iter() -> usize {
    if quick() {
        ROUNDS_PER_BATCH * 50
    } else {
        ROUNDS_PER_BATCH * 125
    }
}

fn iters() -> usize {
    if quick() {
        20
    } else {
        200
    }
}

/// The shared program: a `main -> level0 -> … -> level{DEPTH-1}` chain of
/// direct calls — the same shape `tracker_scale` drives, so the
/// standalone/fleet per-op numbers are directly comparable.
fn chain_def() -> ProgramDef {
    let mut functions = vec!["main".to_string()];
    for d in 0..DEPTH {
        functions.push(format!("level{d}"));
    }
    let edges = (0..DEPTH)
        .map(|d| DefEdge {
            caller: d,
            callee: d + 1,
            site: d,
            indirect: false,
        })
        .collect();
    ProgramDef {
        functions,
        main: 0,
        call_sites: DEPTH,
        edges,
        tail_fns: vec![],
        extra_roots: vec![],
    }
}

fn config() -> DacceConfig {
    DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        ..DacceConfig::default()
    }
}

/// One batch program: `ROUNDS_PER_BATCH` rounds of `DEPTH` calls then
/// `DEPTH` returns over the chain.
fn batch_ops(def: &ProgramDef) -> Vec<BatchOp> {
    let mut ops = Vec::with_capacity(ROUNDS_PER_BATCH * 2 * DEPTH);
    for _ in 0..ROUNDS_PER_BATCH {
        for d in 0..DEPTH {
            ops.push(BatchOp::Call {
                site: def.site(d),
                target: def.function(d + 1),
            });
        }
        for _ in 0..DEPTH {
            ops.push(BatchOp::Ret);
        }
    }
    ops
}

/// Best-of-`iters()` per-op nanoseconds of the batched drive on `tracker`.
fn measure(tracker: &Tracker, def: &ProgramDef) -> f64 {
    let thread = tracker.register_thread(def.main_fn());
    let ops = batch_ops(def);
    let rounds = rounds_per_iter();
    let calls = rounds / ROUNDS_PER_BATCH;
    let total_ops = (rounds * DEPTH) as f64;
    let mut best = f64::INFINITY;
    for _ in 0..iters() {
        let t0 = Instant::now();
        for _ in 0..calls {
            thread.run_batch(&ops).expect("balanced batch");
        }
        let ns = t0.elapsed().as_nanos() as f64 / total_ops;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// The standalone twin: the same declaration and warm seed as a fleet
/// founder, with no lineage attached.
fn standalone(def: &ProgramDef) -> Tracker {
    let tracker = Tracker::with_config(config());
    for name in &def.functions {
        let _ = tracker.define_function(name);
    }
    for _ in 0..def.call_sites {
        let _ = tracker.define_call_site();
    }
    let _ = tracker.warm_start(def.main_fn(), &def.seed());
    tracker
}

fn main() {
    let def = chain_def();
    let mut csv = String::from("scenario,variant,per_op_ns\n");
    use std::fmt::Write as _;

    println!("fleet tenant per-op cost (batched encoded call/return pairs)");
    println!("{:>14} {:>14} {:>10}", "scenario", "batch ns/op", "vs solo");

    let solo = measure(&standalone(&def), &def);
    println!("{:>14} {solo:>14.2} {:>9.2}x", "standalone", 1.0);
    let _ = writeln!(csv, "standalone,batch,{solo:.2}");

    for &tenants in &LADDER {
        let fleet = Fleet::with_config(config());
        let mut last = None;
        let t0 = Instant::now();
        for i in 0..tenants {
            last = Some(fleet.register(&format!("svc-{i}"), &def));
        }
        let attach_total = t0.elapsed();
        let nth = fleet
            .tracker(last.expect("ladder counts are non-zero"))
            .expect("registered");

        // Cold-start check on the Nth tenant: a full walk over the defined
        // chain must not trap — the adopted lineage already encodes it.
        {
            let thread = nth.register_thread(def.main_fn());
            let mut guards = Vec::new();
            for d in 0..DEPTH {
                guards.push(thread.call(def.site(d), def.function(d + 1)));
            }
            while let Some(g) = guards.pop() {
                drop(g);
            }
        }
        let cold_traps = nth.stats().traps;
        assert_eq!(
            cold_traps, 0,
            "tenant {tenants} of a shared lineage must attach with zero cold-start traps"
        );

        let per_op = measure(&nth, &def);
        let stats = fleet.fleet_stats();
        assert_eq!(stats.lineages, 1, "one program definition, one lineage");
        println!(
            "{:>14} {per_op:>14.2} {:>9.2}x   ({} tenants, {} lineage, registered in {:.1} ms)",
            format!("fleet-{tenants}"),
            per_op / solo.max(f64::MIN_POSITIVE),
            stats.tenants,
            stats.lineages,
            attach_total.as_secs_f64() * 1e3
        );
        let _ = writeln!(csv, "fleet-{tenants},batch,{per_op:.2}");
        if tenants == *LADDER.last().expect("ladder is non-empty") {
            let _ = writeln!(csv, "fleet-{tenants},cold_traps,{cold_traps}.00");
        }
    }

    // `cargo bench` runs with the package as CWD; anchor on the manifest so
    // the CSV lands in the workspace-root `results/` like every other
    // artifact.
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("tracker_fleet.csv"), csv).expect("write tracker_fleet.csv");
    println!("wrote results/tracker_fleet.csv");
}
