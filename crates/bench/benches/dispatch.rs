//! Per-op cost of the four site-dispatch outcomes on the tracker fast
//! path, single-threaded so nothing but the dispatch shape varies:
//!
//! * `mono` — direct site, one known target: the compiled record *is* the
//!   resolution (one bounds-checked array index, no compare).
//! * `poly_hit` — indirect site with two known targets, always called
//!   with the same one: after the first probe the per-thread inline cache
//!   answers every call.
//! * `poly_miss` — the same site called with alternating targets: the
//!   direct-mapped cache entry is thrashed every call, falling back to
//!   the compare chain and refilling.
//! * `trap` — first execution of a fresh site: full runtime-handler cost
//!   (graph insert, patch, dispatch-table sync, republish).
//!
//! Times itself and writes `results/dispatch.csv`; `DACCE_BENCH_QUICK=1`
//! shrinks the run for CI smoke jobs.
//!
//! ```text
//! cargo bench -p dacce-bench --bench dispatch
//! ```

use std::time::Instant;

use dacce::tracker::ThreadHandle;
use dacce::{DacceConfig, Tracker};
use dacce_callgraph::FunctionId;

fn quick() -> bool {
    std::env::var("DACCE_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn rounds() -> usize {
    if quick() {
        2_000
    } else {
        20_000
    }
}

fn iters() -> usize {
    if quick() {
        3
    } else {
        30
    }
}

/// Tracker whose edges re-encode eagerly, so the measured sites carry
/// `Encoded` actions rather than ccStack pushes.
fn eager_tracker() -> Tracker {
    Tracker::with_config(DacceConfig {
        edge_threshold: 1,
        min_events_between_reencodes: 1,
        ..DacceConfig::default()
    })
}

fn register(tracker: &Tracker) -> (ThreadHandle, FunctionId, FunctionId) {
    let f_main = tracker.define_function("main");
    let a = tracker.define_function("target_a");
    let b = tracker.define_function("target_b");
    (tracker.register_thread(f_main), a, b)
}

/// Best-of-`iters()` nanoseconds per call+return pair.
fn best(mut one_iter: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters() {
        let ns = one_iter();
        if ns < best {
            best = ns;
        }
    }
    best
}

fn bench_mono() -> f64 {
    let tracker = eager_tracker();
    let (th, a, _) = register(&tracker);
    let site = tracker.define_call_site();
    for _ in 0..4 {
        drop(th.call(site, a));
    }
    let n = rounds();
    best(|| {
        let t0 = Instant::now();
        for _ in 0..n {
            drop(th.call(site, a));
        }
        t0.elapsed().as_nanos() as f64 / n as f64
    })
}

/// `alternate = false` measures steady-state inline-cache hits;
/// `alternate = true` flips the callee every round so the direct-mapped
/// entry misses every probe.
fn bench_poly(alternate: bool) -> f64 {
    let tracker = eager_tracker();
    let (th, a, b) = register(&tracker);
    let site = tracker.define_call_site();
    // Two targets through one site make it polymorphic.
    for _ in 0..4 {
        drop(th.call_indirect(site, a));
        drop(th.call_indirect(site, b));
    }
    let n = rounds();
    let ns = best(|| {
        let t0 = Instant::now();
        for i in 0..n {
            let target = if alternate && i % 2 == 1 { b } else { a };
            drop(th.call_indirect(site, target));
        }
        t0.elapsed().as_nanos() as f64 / n as f64
    });
    // The cache must actually behave as the scenario intends.
    let stats = tracker.stats();
    if alternate {
        assert!(
            stats.icache_misses > (n / 2) as u64,
            "alternating targets must thrash the inline cache"
        );
    } else {
        assert!(
            stats.icache_hits > (n / 2) as u64,
            "steady target must hit the inline cache"
        );
    }
    ns
}

fn bench_trap() -> f64 {
    // Each measured call is the first execution of its site, so every
    // iteration needs a fresh tracker. Default config: no eager re-encode
    // storm in the middle of the handler measurements.
    let n = rounds().min(4_000);
    best(|| {
        let tracker = Tracker::with_config(DacceConfig::default());
        let (th, a, _) = register(&tracker);
        let sites: Vec<_> = (0..n).map(|_| tracker.define_call_site()).collect();
        let t0 = Instant::now();
        for &site in &sites {
            drop(th.call(site, a));
        }
        t0.elapsed().as_nanos() as f64 / n as f64
    })
}

fn main() {
    println!("site-dispatch per-op cost (call+return, single thread)");
    let mut csv = String::from("variant,per_op_ns\n");
    for (variant, ns) in [
        ("mono", bench_mono()),
        ("poly_hit", bench_poly(false)),
        ("poly_miss", bench_poly(true)),
        ("trap", bench_trap()),
    ] {
        println!("{variant:>10} {ns:>12.2} ns/op");
        use std::fmt::Write as _;
        let _ = writeln!(csv, "{variant},{ns:.2}");
    }
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("dispatch.csv"), csv).expect("write dispatch.csv");
    println!("wrote results/dispatch.csv");
}
