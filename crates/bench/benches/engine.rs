//! Criterion microbenchmarks of the DACCE engine's hot paths: the
//! per-call instrumentation work a real deployment would inline.

use criterion::{criterion_group, criterion_main, Criterion};

use dacce::{DacceConfig, DacceEngine};
use dacce_callgraph::{CallSiteId, FunctionId};
use dacce_program::runtime::CallDispatch;
use dacce_program::{CostModel, ThreadId};

fn f(i: u32) -> FunctionId {
    FunctionId::new(i)
}
fn s(i: u32) -> CallSiteId {
    CallSiteId::new(i)
}

/// Engine with a small encoded graph (one re-encode already done).
fn encoded_engine() -> DacceEngine {
    let cfg = DacceConfig {
        edge_threshold: 2,
        min_events_between_reencodes: 1,
        ..DacceConfig::default()
    };
    let mut e = DacceEngine::new(cfg, CostModel::default());
    e.attach_main(f(0));
    e.thread_start(ThreadId::MAIN, f(0), None);
    // Discover two edges; the second discovery triggers a re-encode, after
    // which both are encoded.
    e.call(
        ThreadId::MAIN,
        s(0),
        f(0),
        f(1),
        CallDispatch::Direct,
        false,
    );
    e.call(
        ThreadId::MAIN,
        s(1),
        f(1),
        f(2),
        CallDispatch::Direct,
        false,
    );
    e.ret(ThreadId::MAIN, s(1), f(1), f(2));
    e.ret(ThreadId::MAIN, s(0), f(0), f(1));
    e
}

fn bench_encoded_roundtrip(c: &mut Criterion) {
    let mut e = encoded_engine();
    c.bench_function("engine/encoded_call_return", |b| {
        b.iter(|| {
            e.call(
                ThreadId::MAIN,
                s(0),
                f(0),
                f(1),
                CallDispatch::Direct,
                false,
            );
            e.ret(ThreadId::MAIN, s(0), f(0), f(1));
        });
    });
}

fn bench_recursive_compressed(c: &mut Criterion) {
    let cfg = DacceConfig {
        edge_threshold: 2,
        min_events_between_reencodes: 1,
        compression_min_heat: 1,
        ..DacceConfig::default()
    };
    let mut e = DacceEngine::new(cfg, CostModel::default());
    e.attach_main(f(0));
    e.thread_start(ThreadId::MAIN, f(0), None);
    e.call(
        ThreadId::MAIN,
        s(0),
        f(0),
        f(1),
        CallDispatch::Direct,
        false,
    );
    // Make the self edge hot enough to be compressed after re-encoding.
    for _ in 0..128 {
        e.call(
            ThreadId::MAIN,
            s(1),
            f(1),
            f(1),
            CallDispatch::Direct,
            false,
        );
        e.ret(ThreadId::MAIN, s(1), f(1), f(1));
    }
    c.bench_function("engine/compressed_recursion_call_return", |b| {
        b.iter(|| {
            e.call(
                ThreadId::MAIN,
                s(1),
                f(1),
                f(1),
                CallDispatch::Direct,
                false,
            );
            e.ret(ThreadId::MAIN, s(1), f(1), f(1));
        });
    });
}

fn bench_indirect_hash(c: &mut Criterion) {
    let cfg = DacceConfig {
        indirect_inline_max: 2,
        ..DacceConfig::default()
    };
    let mut e = DacceEngine::new(cfg, CostModel::default());
    e.attach_main(f(0));
    e.thread_start(ThreadId::MAIN, f(0), None);
    for t in 1..=8u32 {
        e.call(
            ThreadId::MAIN,
            s(0),
            f(0),
            f(t),
            CallDispatch::Indirect,
            false,
        );
        e.ret(ThreadId::MAIN, s(0), f(0), f(t));
    }
    c.bench_function("engine/indirect_hash_dispatch", |b| {
        b.iter(|| {
            e.call(
                ThreadId::MAIN,
                s(0),
                f(0),
                f(5),
                CallDispatch::Indirect,
                false,
            );
            e.ret(ThreadId::MAIN, s(0), f(0), f(5));
        });
    });
}

fn bench_sample(c: &mut Criterion) {
    let mut e = encoded_engine();
    e.call(
        ThreadId::MAIN,
        s(0),
        f(0),
        f(1),
        CallDispatch::Direct,
        false,
    );
    e.call(
        ThreadId::MAIN,
        s(1),
        f(1),
        f(2),
        CallDispatch::Direct,
        false,
    );
    c.bench_function("engine/sample_snapshot", |b| {
        b.iter(|| e.sample(ThreadId::MAIN));
    });
}

criterion_group!(
    benches,
    bench_encoded_roundtrip,
    bench_recursive_compressed,
    bench_indirect_hash,
    bench_sample
);
criterion_main!(benches);
